//! A tiny metrics registry with Prometheus text-format export.
//!
//! Counters and histograms are lock-free atomics on the hot path;
//! registration takes a lock but happens once per metric (handles are
//! cheap `Arc` clones meant to be held, not re-looked-up). [`MetricsHub::render`]
//! produces the `text/plain; version=0.0.4` exposition format that the
//! `bda-served` protocol serves for a `Metrics` request and the HTTP
//! `GET /metrics` endpoint exposes to a stock Prometheus scraper.
//!
//! Series names carry their labels inline (`family{k="v"}`). Label
//! values are escaped per the exposition format (`\\`, `\"`, `\n`) —
//! both by the [`series`] builder and defensively at registration time
//! ([`sanitize_series`]), so a hostile dataset name can never smuggle a
//! newline into the scrape output and corrupt neighbouring series.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Histogram bucket upper bounds, in seconds (requests range from
/// sub-millisecond catalog calls to multi-second pushes).
const BUCKET_BOUNDS_S: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// A latency histogram over fixed buckets ([`BUCKET_BOUNDS_S`]) plus a
/// terminal overflow bucket, fed in nanoseconds. Cloning shares the
/// underlying cells.
#[derive(Clone)]
pub struct Histogram {
    /// One cell per finite bound, plus a final overflow cell for
    /// observations beyond the last finite bound (rendered as the gap
    /// between the last finite `_bucket` and `+Inf`).
    buckets: Arc<Vec<AtomicU64>>,
    count: Arc<AtomicU64>,
    sum_ns: Arc<AtomicU64>,
}

impl Histogram {
    /// A free-standing histogram (not registered in any hub). Used for
    /// internal estimates like per-query fragment wall times.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Arc::new(
                (0..BUCKET_BOUNDS_S.len() + 1)
                    .map(|_| AtomicU64::new(0))
                    .collect(),
            ),
            count: Arc::new(AtomicU64::new(0)),
            sum_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Record one observation, in nanoseconds. Observations beyond the
    /// last finite bound land in the terminal overflow bucket, so every
    /// observation is attributed to exactly one bucket — consistent with
    /// the [`Histogram::quantile`] clamp contract.
    pub fn observe_ns(&self, ns: u64) {
        let s = ns as f64 / 1e9;
        let idx = BUCKET_BOUNDS_S
            .iter()
            .position(|bound| s <= *bound)
            .unwrap_or(BUCKET_BOUNDS_S.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record one observation, in seconds.
    pub fn observe_s(&self, s: f64) {
        self.observe_ns((s.max(0.0) * 1e9) as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`), in seconds, by linear
    /// interpolation inside the containing bucket's bounds (the usual
    /// Prometheus `histogram_quantile` estimate). `None` when the
    /// histogram is empty or `q` is out of range. Observations beyond
    /// the last finite bucket clamp to its bound — the estimator never
    /// extrapolates past what the buckets can resolve.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = q * total as f64;
        let mut cumulative = 0u64;
        let mut lower = 0.0f64;
        for (i, bound) in BUCKET_BOUNDS_S.iter().enumerate() {
            let n = self.buckets[i].load(Ordering::Relaxed);
            cumulative += n;
            if n > 0 && cumulative as f64 >= target {
                let within = (target - (cumulative - n) as f64) / n as f64;
                return Some(lower + (bound - lower) * within.clamp(0.0, 1.0));
            }
            lower = *bound;
        }
        Some(*BUCKET_BOUNDS_S.last().expect("bounds are non-empty"))
    }

    /// Median latency in seconds ([`Histogram::quantile`] at 0.5).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 99th-percentile latency in seconds.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency in seconds — the serving-bench tail
    /// statistic: at a thousand in-flight requests, "one in a thousand"
    /// is every batch, so saturation reports track p999 alongside p99.
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A point-in-time value with set/add semantics (query-log depth,
/// CostBook entry counts — things that go down as well as up, which a
/// [`Counter`] mis-types). Stored as `f64` bits in an atomic; cloning
/// shares the cell.
#[derive(Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `d` (may be negative) to the gauge.
    pub fn add(&self, d: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Registered {
    /// Full series name including labels, e.g. `requests_total{kind="execute"}`.
    name: String,
    /// Family name (the part before `{`), for HELP/TYPE headers.
    family: String,
    help: String,
    metric: Metric,
}

/// A registry of named metrics with Prometheus text export. One hub per
/// server process; handles are registered once and cached by callers.
#[derive(Clone, Default)]
pub struct MetricsHub {
    metrics: Arc<Mutex<Vec<Registered>>>,
}

impl MetricsHub {
    /// A fresh, empty hub.
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    /// Get or register the counter with this exact series name (labels
    /// included, e.g. `requests_total{kind="execute"}`). Label values
    /// are normalized to exposition-format escaping on the way in.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let name = sanitize_series(name);
        let name = name.as_str();
        let mut metrics = self.metrics.lock().expect("metrics lock poisoned");
        for m in metrics.iter() {
            if m.name == name {
                if let Metric::Counter(c) = &m.metric {
                    return c.clone();
                }
            }
        }
        let c = Counter {
            value: Arc::new(AtomicU64::new(0)),
        };
        metrics.push(Registered {
            family: family_of(name),
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Counter(c.clone()),
        });
        c
    }

    /// Get or register the counter `family{labels…}`, escaping every
    /// label value.
    pub fn counter_labeled(&self, family: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        self.counter(&series(family, labels), help)
    }

    /// Get or register the gauge with this exact series name.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let name = sanitize_series(name);
        let name = name.as_str();
        let mut metrics = self.metrics.lock().expect("metrics lock poisoned");
        for m in metrics.iter() {
            if m.name == name {
                if let Metric::Gauge(g) = &m.metric {
                    return g.clone();
                }
            }
        }
        let g = Gauge::default();
        metrics.push(Registered {
            family: family_of(name),
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Gauge(g.clone()),
        });
        g
    }

    /// Get or register the gauge `family{labels…}`, escaping every
    /// label value.
    pub fn gauge_labeled(&self, family: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        self.gauge(&series(family, labels), help)
    }

    /// Get or register the histogram named `name` (unlabeled).
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let name = sanitize_series(name);
        let name = name.as_str();
        let mut metrics = self.metrics.lock().expect("metrics lock poisoned");
        for m in metrics.iter() {
            if m.name == name {
                if let Metric::Histogram(h) = &m.metric {
                    return h.clone();
                }
            }
        }
        let h = Histogram::new();
        metrics.push(Registered {
            family: family_of(name),
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Histogram(h.clone()),
        });
        h
    }

    /// Get or register the histogram `family{labels…}`, escaping every
    /// label value (mirrors [`MetricsHub::counter_labeled`]). The
    /// renderer folds `le` into the label block so the exposition stays
    /// well-formed.
    pub fn histogram_labeled(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Histogram {
        self.histogram(&series(family, labels), help)
    }

    /// Render every metric in Prometheus text exposition format, sorted
    /// by family then series name (HELP/TYPE emitted once per family).
    pub fn render(&self) -> String {
        let metrics = self.metrics.lock().expect("metrics lock poisoned");
        let mut order: Vec<usize> = (0..metrics.len()).collect();
        order.sort_by(|&a, &b| {
            (metrics[a].family.as_str(), metrics[a].name.as_str())
                .cmp(&(metrics[b].family.as_str(), metrics[b].name.as_str()))
        });
        let mut out = String::new();
        let mut last_family = "";
        for &i in &order {
            let m = &metrics[i];
            if m.family != last_family {
                out.push_str(&format!("# HELP {} {}\n", m.family, m.help));
                let kind = match m.metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {} {}\n", m.family, kind));
                last_family = &m.family;
            }
            match &m.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{} {}\n", m.name, c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{} {}\n", m.name, g.get()));
                }
                Metric::Histogram(h) => {
                    // Histogram suffixes attach to the family, with any
                    // labels carried over and `le` folded into the label
                    // block: `fam_bucket{k="v",le="0.1"}`.
                    let (labeled, plain) = suffixed_names(&m.name);
                    let mut cumulative = 0u64;
                    for (b, bound) in BUCKET_BOUNDS_S.iter().enumerate() {
                        cumulative += h.buckets[b].load(Ordering::Relaxed);
                        out.push_str(&format!("{} {}\n", labeled("bucket", bound), cumulative));
                    }
                    out.push_str(&format!("{} {}\n", labeled("bucket", &"+Inf"), h.count()));
                    out.push_str(&format!(
                        "{} {}\n",
                        plain("sum"),
                        h.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
                    ));
                    out.push_str(&format!("{} {}\n", plain("count"), h.count()));
                }
            }
        }
        out
    }
}

/// Suffix builders for histogram exposition lines: given the registered
/// series name (`fam` or `fam{labels}`), `labeled(suffix, le)` yields
/// `fam_suffix{labels,le="…"}` and `plain(suffix)` yields
/// `fam_suffix{labels}` — so labeled histograms keep the suffix on the
/// family where Prometheus expects it.
fn suffixed_names(
    name: &str,
) -> (
    impl Fn(&str, &dyn std::fmt::Display) -> String + '_,
    impl Fn(&str) -> String + '_,
) {
    let (family, labels) = match name.find('{') {
        Some(i) => {
            let block = name[i + 1..].strip_suffix('}').unwrap_or(&name[i + 1..]);
            (&name[..i], Some(block))
        }
        None => (name, None),
    };
    let labeled = move |suffix: &str, le: &dyn std::fmt::Display| match labels {
        Some(l) => format!("{family}_{suffix}{{{l},le=\"{le}\"}}"),
        None => format!("{family}_{suffix}{{le=\"{le}\"}}"),
    };
    let plain = move |suffix: &str| match labels {
        Some(l) => format!("{family}_{suffix}{{{l}}}"),
        None => format!("{family}_{suffix}"),
    };
    (labeled, plain)
}

/// The metric family: the series name up to the label block.
fn family_of(name: &str) -> String {
    match name.find('{') {
        Some(i) => name[..i].to_string(),
        None => name.to_string(),
    }
}

/// Merge several Prometheus text expositions — one per fleet instance —
/// into a single instance-labeled view (the `/cluster/metrics` body).
///
/// Every sample line gains `instance="<name>"` as its *first* label;
/// `# HELP`/`# TYPE` lines are emitted once per family across the whole
/// fleet, in first-seen order. Sections are merged in the order given
/// (the aggregating node lists itself first, then its providers in
/// registration order), so equal inputs merge byte-identically. Lines
/// that do not parse pass through unchanged — a fleet member speaking
/// slightly different exposition must never lose samples.
pub fn merge_instances(sections: &[(String, String)]) -> String {
    let mut out = String::new();
    let mut seen_meta: std::collections::HashSet<String> = std::collections::HashSet::new();
    for (instance, text) in sections {
        let inst = escape_label_value(instance);
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                // `# HELP <family> …` / `# TYPE <family> <kind>`: once
                // per (keyword, family) fleet-wide.
                let mut words = rest.split_whitespace();
                let keyword = words.next().unwrap_or("");
                let family = words.next().unwrap_or("");
                if seen_meta.insert(format!("{keyword} {family}")) {
                    out.push_str(line);
                    out.push('\n');
                }
                continue;
            }
            // Sample line: `name value` or `name{labels} value`. Label
            // values may contain spaces, but the value is a number, so
            // the last `}` on the line closes the label block.
            let split = match line.rfind('}') {
                Some(close) if line.find('{').is_some_and(|open| open < close) => Some(close + 1),
                _ => line.find(' '),
            };
            let Some(split) = split else {
                out.push_str(line);
                out.push('\n');
                continue;
            };
            let (name, value) = line.split_at(split);
            match name.find('{') {
                Some(open) if name.ends_with('}') => {
                    let family = &name[..open];
                    let body = &name[open + 1..name.len() - 1];
                    if body.is_empty() {
                        out.push_str(&format!("{family}{{instance=\"{inst}\"}}{value}\n"));
                    } else {
                        out.push_str(&format!("{family}{{instance=\"{inst}\",{body}}}{value}\n"));
                    }
                }
                _ => out.push_str(&format!("{name}{{instance=\"{inst}\"}}{value}\n")),
            }
        }
    }
    out
}

/// Escape a label value for the Prometheus text exposition format:
/// backslash, double quote and newline become `\\`, `\"`, `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Undo [`escape_label_value`] (scrape-side decoding; the round-trip
/// partner the tests exercise).
pub fn unescape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Build the series name `family{k="v",…}` with every label value
/// escaped. An empty label set yields the bare family name.
pub fn series(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{family}{{{}}}", body.join(","))
}

/// Normalize a series name so every label value is exposition-escaped,
/// whether the caller escaped it or not (idempotent: values are decoded
/// with [`unescape_label_value`] semantics, then re-escaped). A name the
/// parser cannot make sense of is returned unchanged — the renderer
/// must never lose a metric over a malformed name.
pub fn sanitize_series(name: &str) -> String {
    let Some(open) = name.find('{') else {
        return name.to_string();
    };
    if !name.ends_with('}') {
        return name.to_string();
    }
    let family = &name[..open];
    let block = &name[open + 1..name.len() - 1];
    let mut labels: Vec<(String, String)> = Vec::new();
    let chars: Vec<char> = block.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // key up to '='
        let key_start = i;
        while i < chars.len() && chars[i] != '=' {
            i += 1;
        }
        if i >= chars.len() {
            return name.to_string();
        }
        let key: String = chars[key_start..i].iter().collect();
        i += 1; // '='
        if i >= chars.len() || chars[i] != '"' {
            return name.to_string();
        }
        i += 1; // opening quote
        let mut value = String::new();
        loop {
            if i >= chars.len() {
                return name.to_string(); // unterminated value
            }
            match chars[i] {
                '\\' if i + 1 < chars.len() => {
                    // Already-escaped sequence: decode it (re-escaped below).
                    match chars[i + 1] {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        other => {
                            value.push('\\');
                            value.push(other);
                        }
                    }
                    i += 2;
                }
                '"' => {
                    // A quote ends the value only before a separator or
                    // the end of the block; otherwise it is a raw quote
                    // the caller failed to escape.
                    if i + 1 >= chars.len() || chars[i + 1] == ',' {
                        i += 1;
                        break;
                    }
                    value.push('"');
                    i += 1;
                }
                c => {
                    value.push(c);
                    i += 1;
                }
            }
        }
        labels.push((key.trim().to_string(), value));
        if i < chars.len() {
            if chars[i] != ',' {
                return name.to_string();
            }
            i += 1;
        }
    }
    let pairs: Vec<(&str, &str)> = labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    series(family, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let hub = MetricsHub::new();
        let a = hub.counter("requests_total{kind=\"execute\"}", "Requests served");
        let b = hub.counter("requests_total{kind=\"execute\"}", "Requests served");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same series shares one cell");
        let text = hub.render();
        assert!(text.contains("# HELP requests_total Requests served"));
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total{kind=\"execute\"} 3"));
    }

    #[test]
    fn help_and_type_emitted_once_per_family() {
        let hub = MetricsHub::new();
        hub.counter("requests_total{kind=\"a\"}", "Requests served")
            .inc();
        hub.counter("requests_total{kind=\"b\"}", "Requests served")
            .inc();
        let text = hub.render();
        assert_eq!(text.matches("# HELP requests_total").count(), 1);
        assert_eq!(text.matches("# TYPE requests_total").count(), 1);
        assert!(text.contains("requests_total{kind=\"a\"} 1"));
        assert!(text.contains("requests_total{kind=\"b\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let hub = MetricsHub::new();
        let h = hub.histogram("request_duration_seconds", "Request latency");
        h.observe_ns(50_000); // 50µs  -> first bucket (1e-4)
        h.observe_ns(2_000_000); // 2ms -> le 0.0025
        h.observe_ns(20_000_000_000); // 20s -> only +Inf
        let text = hub.render();
        assert!(text.contains("# TYPE request_duration_seconds histogram"));
        assert!(text.contains("request_duration_seconds_bucket{le=\"0.0001\"} 1"));
        assert!(text.contains("request_duration_seconds_bucket{le=\"0.0025\"} 2"));
        assert!(text.contains("request_duration_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("request_duration_seconds_count 3"));
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("request_duration_seconds_sum"))
            .unwrap();
        let sum: f64 = sum_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((sum - 20.00205).abs() < 1e-6, "{sum}");
    }

    #[test]
    fn label_values_escape_and_round_trip() {
        for raw in [
            "plain",
            "with \"quotes\"",
            "line\nbreak",
            "back\\slash",
            "\\\"\n",
        ] {
            let escaped = escape_label_value(raw);
            assert!(!escaped.contains('\n'), "escaped value has a raw newline");
            assert_eq!(unescape_label_value(&escaped), raw, "round trip of {raw:?}");
        }
        assert_eq!(
            series("requests_total", &[("kind", "a\"b\nc\\d")]),
            "requests_total{kind=\"a\\\"b\\nc\\\\d\"}"
        );
    }

    #[test]
    fn renderer_escapes_raw_label_values() {
        let hub = MetricsHub::new();
        // The caller formatted a raw, unescaped value into the series name.
        hub.counter("requests_total{kind=\"a\"b\nc\\d\"}", "Requests served")
            .inc();
        let text = hub.render();
        // No data line may contain a raw newline: every line is either a
        // comment or a well-formed `name{...} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(line.ends_with(" 1"), "malformed exposition line: {line:?}");
        }
        assert!(
            text.contains("requests_total{kind=\"a\\\"b\\nc\\\\d\"} 1"),
            "{text}"
        );
        // Registering the pre-escaped form finds the same series.
        let again = hub.counter(
            "requests_total{kind=\"a\\\"b\\nc\\\\d\"}",
            "Requests served",
        );
        again.inc();
        assert_eq!(again.get(), 2, "sanitization is idempotent");
    }

    #[test]
    fn counter_labeled_builds_escaped_series() {
        let hub = MetricsHub::new();
        hub.counter_labeled("errs_total", &[("msg", "bad\nthing")], "Errors")
            .inc();
        assert!(hub.render().contains("errs_total{msg=\"bad\\nthing\"} 1"));
    }

    #[test]
    fn sanitize_leaves_unlabeled_and_malformed_names_alone() {
        assert_eq!(sanitize_series("plain_total"), "plain_total");
        assert_eq!(sanitize_series("x{notalabel}"), "x{notalabel}");
        assert_eq!(
            sanitize_series("x{k=\"unterminated}"),
            "x{k=\"unterminated}"
        );
    }

    #[test]
    fn quantile_on_empty_histogram_is_none() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        h.observe_ns(1_000);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.5), None);
    }

    #[test]
    fn quantile_single_bucket_interpolates_within_its_bounds() {
        let h = Histogram::new();
        // All observations land in the (0.0001, 0.00025] bucket.
        for _ in 0..100 {
            h.observe_ns(200_000); // 200µs
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 > 0.0001 && p50 <= 0.00025, "{p50}");
        assert!(p99 > p50 && p99 <= 0.00025, "{p99}");
        // Mid-bucket linear interpolation: p50 sits halfway.
        let mid = 0.0001 + (0.00025 - 0.0001) * 0.5;
        assert!((p50 - mid).abs() < 1e-9, "{p50} vs {mid}");
    }

    #[test]
    fn quantile_interpolates_across_buckets() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe_ns(50_000); // 50µs -> first bucket (le 0.0001)
        }
        for _ in 0..10 {
            h.observe_ns(2_000_000_000); // 2s -> le 2.5 bucket
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 <= 0.0001, "median stays in the fast bucket: {p50}");
        let p95 = h.quantile(0.95).unwrap();
        assert!(
            p95 > 1.0 && p95 <= 2.5,
            "p95 lands in the slow bucket: {p95}"
        );
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= p95, "{p99} < {p95}");
    }

    #[test]
    fn quantile_clamps_beyond_the_last_bucket() {
        let h = Histogram::new();
        h.observe_ns(60_000_000_000); // 60s: beyond every finite bound
        assert_eq!(h.quantile(0.5), Some(10.0), "clamped to the last bound");
    }

    #[test]
    fn overflow_observations_land_in_the_terminal_bucket() {
        let h = Histogram::new();
        let last = *BUCKET_BOUNDS_S.last().unwrap();
        h.observe_ns((last * 1e9) as u64); // exactly the last finite bound
        h.observe_ns((last * 1e9) as u64 + 1_000); // just beyond it
        let overflow = h.buckets[BUCKET_BOUNDS_S.len()].load(Ordering::Relaxed);
        let last_finite = h.buckets[BUCKET_BOUNDS_S.len() - 1].load(Ordering::Relaxed);
        assert_eq!(last_finite, 1, "boundary observation stays finite");
        assert_eq!(overflow, 1, "past-the-bound observation is not dropped");
        let bucketed: u64 = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        assert_eq!(bucketed, h.count(), "every observation owns a bucket");
        // Consistent with the quantile clamp: the overflow observation
        // resolves to the last finite bound, never beyond it.
        assert_eq!(h.quantile(1.0), Some(last));
    }

    #[test]
    fn gauge_sets_adds_and_renders_as_gauge_type() {
        let hub = MetricsHub::new();
        let g = hub.gauge("query_log_depth", "Profiles retained");
        g.set(4.0);
        g.add(2.5);
        g.add(-1.5);
        assert!((g.get() - 5.0).abs() < 1e-12);
        let again = hub.gauge("query_log_depth", "Profiles retained");
        assert!((again.get() - 5.0).abs() < 1e-12, "same series, same cell");
        let text = hub.render();
        assert!(text.contains("# TYPE query_log_depth gauge"), "{text}");
        assert!(text.contains("query_log_depth 5\n"), "{text}");
        hub.gauge_labeled("costbook_entries", &[("kind", "ns\nrow")], "Entries")
            .set(3.0);
        assert!(
            hub.render()
                .contains("costbook_entries{kind=\"ns\\nrow\"} 3"),
            "labeled gauge escapes like counters do"
        );
    }

    #[test]
    fn histogram_labeled_folds_le_into_the_label_block() {
        let hub = MetricsHub::new();
        let h = hub.histogram_labeled("op_seconds", &[("class", "join\nx")], "Per-op latency");
        h.observe_ns(50_000);
        let text = hub.render();
        assert!(
            text.contains("op_seconds_bucket{class=\"join\\nx\",le=\"0.0001\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("op_seconds_bucket{class=\"join\\nx\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("op_seconds_sum{class=\"join\\nx\"} 0.00005"),
            "{text}"
        );
        assert!(
            text.contains("op_seconds_count{class=\"join\\nx\"} 1"),
            "{text}"
        );
        // Same family+labels resolves to the same cells.
        let again = hub.histogram_labeled("op_seconds", &[("class", "join\nx")], "Per-op latency");
        again.observe_ns(50_000);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn golden_exposition_render() {
        let hub = MetricsHub::new();
        hub.counter_labeled("requests_total", &[("kind", "z")], "Requests served")
            .add(2);
        hub.counter_labeled("requests_total", &[("kind", "a\nb")], "Requests served")
            .inc();
        hub.gauge("query_log_depth", "Profiles retained").set(3.0);
        let h = hub.histogram("request_duration_seconds", "Request latency");
        h.observe_ns(50_000); // le 0.0001
        h.observe_ns(2_000_000); // le 0.0025
        let expected = "\
# HELP query_log_depth Profiles retained
# TYPE query_log_depth gauge
query_log_depth 3
# HELP request_duration_seconds Request latency
# TYPE request_duration_seconds histogram
request_duration_seconds_bucket{le=\"0.0001\"} 1
request_duration_seconds_bucket{le=\"0.00025\"} 1
request_duration_seconds_bucket{le=\"0.0005\"} 1
request_duration_seconds_bucket{le=\"0.001\"} 1
request_duration_seconds_bucket{le=\"0.0025\"} 2
request_duration_seconds_bucket{le=\"0.005\"} 2
request_duration_seconds_bucket{le=\"0.01\"} 2
request_duration_seconds_bucket{le=\"0.025\"} 2
request_duration_seconds_bucket{le=\"0.05\"} 2
request_duration_seconds_bucket{le=\"0.1\"} 2
request_duration_seconds_bucket{le=\"0.25\"} 2
request_duration_seconds_bucket{le=\"0.5\"} 2
request_duration_seconds_bucket{le=\"1\"} 2
request_duration_seconds_bucket{le=\"2.5\"} 2
request_duration_seconds_bucket{le=\"5\"} 2
request_duration_seconds_bucket{le=\"10\"} 2
request_duration_seconds_bucket{le=\"+Inf\"} 2
request_duration_seconds_sum 0.00205
request_duration_seconds_count 2
# HELP requests_total Requests served
# TYPE requests_total counter
requests_total{kind=\"a\\nb\"} 1
requests_total{kind=\"z\"} 2
";
        assert_eq!(hub.render(), expected);
    }

    #[test]
    fn merge_instances_labels_samples_and_dedups_metadata() {
        let app = MetricsHub::new();
        app.counter("bda_fleet_test_total", "shared family").inc();
        let node = MetricsHub::new();
        node.counter("bda_fleet_test_total", "shared family").add(3);
        node.counter_labeled(
            "bda_fleet_labeled_total",
            &[("kind", "exe cute")],
            "labeled family",
        )
        .inc();
        let merged = merge_instances(&[
            ("app".to_string(), app.render()),
            ("rel-1".to_string(), node.render()),
        ]);
        // Every sample carries its instance, first in the label block.
        assert!(
            merged.contains("bda_fleet_test_total{instance=\"app\"} 1"),
            "{merged}"
        );
        assert!(
            merged.contains("bda_fleet_test_total{instance=\"rel-1\"} 3"),
            "{merged}"
        );
        // Existing labels (spaces in values included) are preserved
        // after the injected instance.
        assert!(
            merged.contains("bda_fleet_labeled_total{instance=\"rel-1\",kind=\"exe cute\"} 1"),
            "{merged}"
        );
        // HELP/TYPE appear once per family across the fleet.
        assert_eq!(merged.matches("# HELP bda_fleet_test_total").count(), 1);
        assert_eq!(merged.matches("# TYPE bda_fleet_test_total").count(), 1);
        // Deterministic: merging the same sections twice is identical.
        let again = merge_instances(&[
            ("app".to_string(), app.render()),
            ("rel-1".to_string(), node.render()),
        ]);
        assert_eq!(merged, again);
    }

    #[test]
    fn merge_instances_passes_unparseable_lines_through() {
        let merged = merge_instances(&[(
            "odd".to_string(),
            "garbage-without-value\nname 1\n".to_string(),
        )]);
        assert!(merged.contains("garbage-without-value\n"), "{merged}");
        assert!(merged.contains("name{instance=\"odd\"} 1"), "{merged}");
    }

    #[test]
    fn tail_percentile_helpers_resolve_the_slow_outlier() {
        let h = Histogram::new();
        // 998 fast observations and two slow ones: p50/p99 sit in the
        // fast bucket, p999 lands in the outliers'.
        for _ in 0..998 {
            h.observe_ns(150_000); // 0.15ms
        }
        h.observe_ns(2_000_000_000); // 2s
        h.observe_ns(2_000_000_000);
        let p50 = h.p50().expect("non-empty");
        let p99 = h.p99().expect("non-empty");
        let p999 = h.p999().expect("non-empty");
        assert!(p50 <= 0.00025, "{p50}");
        assert!(p99 <= 0.00025, "{p99}");
        assert!(p999 > 1.0, "p999 must see the 2s outlier, got {p999}");
        assert!(p50 <= p99 && p99 <= p999);
    }
}
