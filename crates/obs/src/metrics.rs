//! A tiny metrics registry with Prometheus text-format export.
//!
//! Counters and histograms are lock-free atomics on the hot path;
//! registration takes a lock but happens once per metric (handles are
//! cheap `Arc` clones meant to be held, not re-looked-up). [`MetricsHub::render`]
//! produces the `text/plain; version=0.0.4` exposition format that the
//! `bda-served` protocol serves for a `Metrics` request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Histogram bucket upper bounds, in seconds (requests range from
/// sub-millisecond catalog calls to multi-second pushes).
const BUCKET_BOUNDS_S: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// A latency histogram over fixed buckets ([`BUCKET_BOUNDS_S`]), fed in
/// nanoseconds. Cloning shares the underlying cells.
#[derive(Clone)]
pub struct Histogram {
    buckets: Arc<Vec<AtomicU64>>,
    count: Arc<AtomicU64>,
    sum_ns: Arc<AtomicU64>,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: Arc::new(
                (0..BUCKET_BOUNDS_S.len())
                    .map(|_| AtomicU64::new(0))
                    .collect(),
            ),
            count: Arc::new(AtomicU64::new(0)),
            sum_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Record one observation, in nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let s = ns as f64 / 1e9;
        for (i, bound) in BUCKET_BOUNDS_S.iter().enumerate() {
            if s <= *bound {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Counter),
    Histogram(Histogram),
}

struct Registered {
    /// Full series name including labels, e.g. `requests_total{kind="execute"}`.
    name: String,
    /// Family name (the part before `{`), for HELP/TYPE headers.
    family: String,
    help: String,
    metric: Metric,
}

/// A registry of named metrics with Prometheus text export. One hub per
/// server process; handles are registered once and cached by callers.
#[derive(Clone, Default)]
pub struct MetricsHub {
    metrics: Arc<Mutex<Vec<Registered>>>,
}

impl MetricsHub {
    /// A fresh, empty hub.
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    /// Get or register the counter with this exact series name (labels
    /// included, e.g. `requests_total{kind="execute"}`).
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("metrics lock poisoned");
        for m in metrics.iter() {
            if m.name == name {
                if let Metric::Counter(c) = &m.metric {
                    return c.clone();
                }
            }
        }
        let c = Counter {
            value: Arc::new(AtomicU64::new(0)),
        };
        metrics.push(Registered {
            family: family_of(name),
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Counter(c.clone()),
        });
        c
    }

    /// Get or register the histogram named `name` (unlabeled).
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let mut metrics = self.metrics.lock().expect("metrics lock poisoned");
        for m in metrics.iter() {
            if m.name == name {
                if let Metric::Histogram(h) = &m.metric {
                    return h.clone();
                }
            }
        }
        let h = Histogram::new();
        metrics.push(Registered {
            family: family_of(name),
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Histogram(h.clone()),
        });
        h
    }

    /// Render every metric in Prometheus text exposition format, sorted
    /// by family then series name (HELP/TYPE emitted once per family).
    pub fn render(&self) -> String {
        let metrics = self.metrics.lock().expect("metrics lock poisoned");
        let mut order: Vec<usize> = (0..metrics.len()).collect();
        order.sort_by(|&a, &b| {
            (metrics[a].family.as_str(), metrics[a].name.as_str())
                .cmp(&(metrics[b].family.as_str(), metrics[b].name.as_str()))
        });
        let mut out = String::new();
        let mut last_family = "";
        for &i in &order {
            let m = &metrics[i];
            if m.family != last_family {
                out.push_str(&format!("# HELP {} {}\n", m.family, m.help));
                let kind = match m.metric {
                    Metric::Counter(_) => "counter",
                    Metric::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {} {}\n", m.family, kind));
                last_family = &m.family;
            }
            match &m.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{} {}\n", m.name, c.get()));
                }
                Metric::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (b, bound) in BUCKET_BOUNDS_S.iter().enumerate() {
                        cumulative += h.buckets[b].load(Ordering::Relaxed);
                        out.push_str(&format!(
                            "{}_bucket{{le=\"{}\"}} {}\n",
                            m.name, bound, cumulative
                        ));
                    }
                    out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", m.name, h.count()));
                    out.push_str(&format!(
                        "{}_sum {}\n",
                        m.name,
                        h.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
                    ));
                    out.push_str(&format!("{}_count {}\n", m.name, h.count()));
                }
            }
        }
        out
    }
}

/// The metric family: the series name up to the label block.
fn family_of(name: &str) -> String {
    match name.find('{') {
        Some(i) => name[..i].to_string(),
        None => name.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let hub = MetricsHub::new();
        let a = hub.counter("requests_total{kind=\"execute\"}", "Requests served");
        let b = hub.counter("requests_total{kind=\"execute\"}", "Requests served");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same series shares one cell");
        let text = hub.render();
        assert!(text.contains("# HELP requests_total Requests served"));
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total{kind=\"execute\"} 3"));
    }

    #[test]
    fn help_and_type_emitted_once_per_family() {
        let hub = MetricsHub::new();
        hub.counter("requests_total{kind=\"a\"}", "Requests served")
            .inc();
        hub.counter("requests_total{kind=\"b\"}", "Requests served")
            .inc();
        let text = hub.render();
        assert_eq!(text.matches("# HELP requests_total").count(), 1);
        assert_eq!(text.matches("# TYPE requests_total").count(), 1);
        assert!(text.contains("requests_total{kind=\"a\"} 1"));
        assert!(text.contains("requests_total{kind=\"b\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let hub = MetricsHub::new();
        let h = hub.histogram("request_duration_seconds", "Request latency");
        h.observe_ns(50_000); // 50µs  -> first bucket (1e-4)
        h.observe_ns(2_000_000); // 2ms -> le 0.0025
        h.observe_ns(20_000_000_000); // 20s -> only +Inf
        let text = hub.render();
        assert!(text.contains("# TYPE request_duration_seconds histogram"));
        assert!(text.contains("request_duration_seconds_bucket{le=\"0.0001\"} 1"));
        assert!(text.contains("request_duration_seconds_bucket{le=\"0.0025\"} 2"));
        assert!(text.contains("request_duration_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("request_duration_seconds_count 3"));
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("request_duration_seconds_sum"))
            .unwrap();
        let sum: f64 = sum_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((sum - 20.00205).abs() < 1e-6, "{sum}");
    }
}
