//! # `bda-bench`: the experiment harness
//!
//! Reproduces every table/figure defined in DESIGN.md. The paper (a CIDR
//! vision paper) has no evaluation section of its own; the experiment set
//! operationalizes each desideratum and each claimed LINQ property. See
//! EXPERIMENTS.md for recorded results.
//!
//! Every experiment is a plain function returning a printable
//! [`table::Table`], shared between the `experiments` binary (full sizes)
//! and the unit/criterion suites (reduced sizes).

pub mod experiments;
pub mod setup;
pub mod table;

pub use setup::{standard_federation, FederationSpec};
pub use table::Table;
