//! The experiment implementations (see DESIGN.md's experiment index).

use std::time::Instant;

use bda_core::lower::lower_all;
use bda_core::{col, lit, AggExpr, AggFunc, GraphOp, OpKind, Plan, Provider};
use bda_federation::{
    translatability, ExecOptions, Federation, NetConfig, OptimizerConfig, Registry, TransferMode,
    Translation,
};
use bda_lang::parse_query;
use bda_relational::RelationalEngine;
use bda_storage::Schema;
use bda_workloads::{random_matrix, star_schema, GraphSpec, StarSpec};

use crate::setup::{masked_registry, standard_federation, subset_registry, FederationSpec};
use crate::table::{fmt_secs, Table};

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

fn schema_source(reg: &Registry) -> impl Fn(&str) -> Option<Schema> + '_ {
    move |name: &str| reg.schema_of(name).ok()
}

// ---------------------------------------------------------------------------
// T1 / T2 — coverage & translatability
// ---------------------------------------------------------------------------

/// T1: the operator × provider coverage matrix (desideratum 1).
pub fn t1_coverage(fed: &Federation) -> Table {
    let reg = fed.registry();
    let providers: Vec<String> = reg
        .providers()
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    let mut headers = vec!["operator", "class"];
    let provider_headers: Vec<String> = providers.clone();
    for p in &provider_headers {
        headers.push(p);
    }
    headers.push("translation");
    let mut t = Table::new("T1 — operator coverage matrix", headers);
    for (op, translation) in translatability(reg) {
        let mut row = vec![
            op.name().to_string(),
            if op.is_intent() { "intent" } else { "base" }.to_string(),
        ];
        for p in reg.providers() {
            row.push(if p.capabilities().supports(op) {
                "native".to_string()
            } else {
                "-".to_string()
            });
        }
        row.push(match translation {
            Translation::Native(_) => "native".to_string(),
            Translation::ViaLowering(ops) => format!(
                "lowered -> {}",
                ops.iter().map(|k| k.name()).collect::<Vec<_>>().join("+")
            ),
            Translation::No => "UNTRANSLATABLE".to_string(),
        });
        t.row(row);
    }
    t
}

/// T2: the translatability summary — desideratum 2 demands zero
/// untranslatable operators.
pub fn t2_translatability(fed: &Federation) -> Table {
    let classified = translatability(fed.registry());
    let native = classified
        .iter()
        .filter(|(_, t)| matches!(t, Translation::Native(_)))
        .count();
    let lowered = classified
        .iter()
        .filter(|(_, t)| matches!(t, Translation::ViaLowering(_)))
        .count();
    let untranslatable: Vec<&str> = classified
        .iter()
        .filter(|(_, t)| matches!(t, Translation::No))
        .map(|(op, _)| op.name())
        .collect();
    let mut t = Table::new(
        "T2 — translatability (desideratum 2)",
        vec!["metric", "value"],
    );
    t.row(vec!["operators total".into(), classified.len().to_string()]);
    t.row(vec!["native somewhere".into(), native.to_string()]);
    t.row(vec!["reachable via lowering".into(), lowered.to_string()]);
    t.row(vec![
        "untranslatable".into(),
        if untranslatable.is_empty() {
            "0 (desideratum met)".to_string()
        } else {
            format!("{} ({})", untranslatable.len(), untranslatable.join(", "))
        },
    ]);
    t
}

// ---------------------------------------------------------------------------
// T3 — portability: same program text, swapped back ends
// ---------------------------------------------------------------------------

/// T3: one BDL program runs unchanged against different provider stacks
/// and returns identical results (the paper's portability goal).
pub fn t3_portability(spec: FederationSpec) -> Table {
    const PROGRAM: &str = "scan sales \
        | join (scan customers) on customer_id = customer_id \
        | where amount > 100.0 \
        | groupby region: sum(amount) as total, count(*) as n \
        | orderby region";

    // Stack A: the standard federation (relational engine holds the data).
    let fed_a = standard_federation(spec);
    // Stack B: the same data loaded into the all-capable reference
    // provider instead — the "swapped back end".
    let mut fed_b = Federation::new();
    let refp = bda_core::ReferenceProvider::new("ref");
    let (sales, customers, products, stores) = star_schema(spec.star);
    refp.store("sales", sales).unwrap();
    refp.store("customers", customers).unwrap();
    refp.store("products", products).unwrap();
    refp.store("stores", stores).unwrap();
    fed_b.register(std::sync::Arc::new(refp));
    // Stack C: a second relational engine instance under a different name.
    let mut fed_c = Federation::new();
    let rel2 = RelationalEngine::new("other_rel");
    let (sales, customers, products, stores) = star_schema(spec.star);
    rel2.store("sales", sales).unwrap();
    rel2.store("customers", customers).unwrap();
    rel2.store("products", products).unwrap();
    rel2.store("stores", stores).unwrap();
    fed_c.register(std::sync::Arc::new(rel2));

    let mut t = Table::new(
        "T3 — portability: identical program, swapped back ends",
        vec![
            "stack",
            "provider",
            "rows",
            "wall time",
            "result equal to A",
        ],
    );
    let mut first: Option<bda_storage::DataSet> = None;
    for (label, fed) in [("A", &fed_a), ("B", &fed_b), ("C", &fed_c)] {
        let plan = parse_query(PROGRAM, &schema_source(fed.registry()))
            .expect("program parses on every stack");
        let ((out, metrics), secs) = time(|| fed.run(&plan).expect("runs"));
        let provider = fed.registry().providers()[0].name().to_string();
        let equal = match &first {
            None => {
                first = Some(out.clone());
                "(baseline)".to_string()
            }
            Some(base) => base.same_bag(&out).unwrap().to_string(),
        };
        let _ = metrics;
        t.row(vec![
            label.to_string(),
            provider,
            out.num_rows().to_string(),
            fmt_secs(secs),
            equal,
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// T4 — dimension-awareness of the fused model
// ---------------------------------------------------------------------------

/// T4: the same question asked array-style (dimension-aware operators)
/// and table-style (untag + relational operators) returns the same bag;
/// the planner routes each to a different engine.
pub fn t4_dimension_awareness(spec: FederationSpec) -> Table {
    let fed = standard_federation(spec);
    let reg = fed.registry();
    let sensors_schema = reg.schema_of("sensors").unwrap();
    let ticks = sensors_schema.field("t").unwrap().extent().unwrap().1;
    let half = ticks / 2;

    // Array formulation: dice on the time dimension, reduce over t.
    let array_form = Plan::Dice {
        input: Plan::scan("sensors", sensors_schema.clone()).boxed(),
        ranges: vec![("t".into(), 0, half)],
    }
    .aggregate(
        vec!["sensor"],
        vec![AggExpr::new(AggFunc::Avg, col("reading"), "mean")],
    );
    // Table formulation: untag, filter, group.
    let table_form = Plan::UntagDims {
        input: Plan::scan("sensors", sensors_schema).boxed(),
    }
    .select(col("t").ge(lit(0i64)).and(col("t").lt(lit(half))))
    .aggregate(
        vec!["sensor"],
        vec![AggExpr::new(AggFunc::Avg, col("reading"), "mean")],
    );

    let mut t = Table::new(
        "T4 — fused model: array vs table formulation",
        vec!["formulation", "site", "rows", "wall time", "same result"],
    );
    let ((a_out, _), a_secs) = time(|| fed.run(&array_form).unwrap());
    let ((b_out, _), b_secs) = time(|| fed.run(&table_form).unwrap());
    // Array output keeps `sensor` dimension-tagged; the table form does
    // not. The *data* must agree; compare after untagging.
    let a_flat = bda_storage::DataSet::new(a_out.schema().untagged(), a_out.chunks().to_vec())
        .normalized_rows()
        .unwrap();
    let b_flat = b_out.normalized_rows().unwrap();
    let placement_a = bda_federation::Planner::new(reg)
        .place(&array_form)
        .unwrap();
    let placement_b = bda_federation::Planner::new(reg)
        .place(&table_form)
        .unwrap();
    let equal = a_flat.same_bag(&b_flat).unwrap();
    t.row(vec![
        "array (dice + dim-reduce)".into(),
        placement_a.root().site.clone(),
        a_out.num_rows().to_string(),
        fmt_secs(a_secs),
        equal.to_string(),
    ]);
    t.row(vec![
        "table (untag + where + groupby)".into(),
        placement_b.root().site.clone(),
        b_out.num_rows().to_string(),
        fmt_secs(b_secs),
        equal.to_string(),
    ]);
    t
}

// ---------------------------------------------------------------------------
// F1 — intent preservation (desideratum 3)
// ---------------------------------------------------------------------------

/// F1: n×n matmul under three plan shapes. The *same* logical job is
/// orders of magnitude cheaper when its intent survives to the
/// linear-algebra provider.
pub fn f1_intent(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "F1 — intent preservation: matmul plan shapes (desideratum 3)",
        vec![
            "n",
            "native intent (la)",
            "lowered+recognized (la)",
            "lowered, no recognition (rel)",
            "speedup native vs lowered",
        ],
    );
    for &n in sizes {
        let la = bda_linalg::LinAlgEngine::new("la");
        la.store("a", random_matrix(n, n, 7)).unwrap();
        la.store("b", random_matrix(n, n, 8)).unwrap();
        let rel = RelationalEngine::new("rel");
        rel.store("a", random_matrix(n, n, 7).normalized_rows().unwrap())
            .unwrap();
        rel.store("b", random_matrix(n, n, 8).normalized_rows().unwrap())
            .unwrap();
        let mut fed = Federation::new();
        // Registration order makes `la` hold the dense copies and `rel`
        // the row copies; both catalogs expose `a`/`b`.
        fed.register(std::sync::Arc::new(la));
        fed.register(std::sync::Arc::new(rel));
        let reg = fed.registry();
        let schema_a = reg.provider("la").unwrap().schema_of("a").unwrap();
        let schema_b = reg.provider("la").unwrap().schema_of("b").unwrap();
        let intent = Plan::scan("a", schema_a).matmul(Plan::scan("b", schema_b));
        let lowered = lower_all(&intent).unwrap();

        // Native: intent plan, standard options.
        let ((out_native, m_native), s_native) = time(|| fed.run(&intent).expect("native matmul"));
        assert_eq!(m_native.fragments, 1);
        // Lowered but recognized: optimizer restores the MatMul node.
        let ((out_rec, _), s_rec) = time(|| fed.run(&lowered).expect("recognized matmul"));
        // Lowered, recognition off: runs as join+aggregate.
        let opts = ExecOptions {
            optimizer: OptimizerConfig {
                recognize_intents: false,
                ..OptimizerConfig::default()
            },
            ..ExecOptions::default()
        };
        let ((out_low, _), s_low) = time(|| fed.run_with(&lowered, &opts).expect("lowered matmul"));

        // All three must agree (dense result vs sparse: same bag after
        // both exist — random matrices make zero cells measure-zero).
        assert!(out_native.same_bag_approx(&out_rec), "native vs recognized");
        assert!(out_native.same_bag_approx(&out_low), "native vs lowered");

        t.row(vec![
            n.to_string(),
            fmt_secs(s_native),
            fmt_secs(s_rec),
            fmt_secs(s_low),
            format!("{:.1}x", s_low / s_native.max(1e-9)),
        ]);
    }
    t
}

/// Approximate bag equality for float-valued matmul results.
trait ApproxBag {
    fn same_bag_approx(&self, other: &Self) -> bool;
}

impl ApproxBag for bda_storage::DataSet {
    fn same_bag_approx(&self, other: &Self) -> bool {
        let a = self.sorted_rows().unwrap();
        let b = other.sorted_rows().unwrap();
        if a.len() != b.len() {
            return false;
        }
        a.iter().zip(&b).all(|(x, y)| {
            x.0.iter().zip(&y.0).all(|(vx, vy)| match (vx, vy) {
                (bda_storage::Value::Float(fx), bda_storage::Value::Float(fy)) => {
                    (fx - fy).abs() <= 1e-6 * (1.0 + fx.abs())
                }
                _ => vx == vy,
            })
        })
    }
}

// ---------------------------------------------------------------------------
// F2 — server interoperation (desideratum 4)
// ---------------------------------------------------------------------------

/// F2: a two-server plan (rows on `rel`, matmul on `la`), direct vs
/// app-routed intermediate transfer, swept over matrix size.
pub fn f2_interop(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "F2 — server interoperation: direct vs app-routed (desideratum 4)",
        vec![
            "n",
            "intermediate bytes",
            "app-tier bytes (direct)",
            "app-tier bytes (routed)",
            "sim net time (direct)",
            "sim net time (routed)",
        ],
    );
    for &n in sizes {
        let rel = RelationalEngine::new("rel");
        rel.store("a_rows", random_matrix(n, n, 7).normalized_rows().unwrap())
            .unwrap();
        let la = bda_linalg::LinAlgEngine::new("la");
        la.store("b", random_matrix(n, n, 8)).unwrap();
        let mut fed = Federation::new();
        fed.register(std::sync::Arc::new(rel));
        fed.register(std::sync::Arc::new(la));
        let reg = fed.registry();
        let plan = Plan::scan("a_rows", reg.schema_of("a_rows").unwrap()).matmul(Plan::scan(
            "b",
            reg.provider("la").unwrap().schema_of("b").unwrap(),
        ));
        let (_, m_direct) = fed.run(&plan).unwrap();
        let opts = ExecOptions {
            transfer: TransferMode::AppRouted,
            ..ExecOptions::default()
        };
        let (_, m_routed) = fed.run_with(&plan, &opts).unwrap();
        // The final result transfer is excluded from "intermediate".
        let inter_bytes: usize = m_direct
            .transfers
            .iter()
            .filter(|tr| tr.to != "app")
            .map(|tr| tr.bytes)
            .sum();
        t.row(vec![
            n.to_string(),
            inter_bytes.to_string(),
            m_direct.app_tier_bytes().to_string(),
            m_routed.app_tier_bytes().to_string(),
            fmt_secs(m_direct.sim_network_s),
            fmt_secs(m_routed.sim_network_s),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// F3 — expression shipping vs per-operator calls
// ---------------------------------------------------------------------------

/// F3: a k-operator pipeline shipped as one tree vs k RPCs, swept over k
/// and per-message latency.
pub fn f3_shipping(ks: &[usize], latencies_s: &[f64]) -> Table {
    let mut t = Table::new(
        "F3 — expression-tree shipping vs per-operator calls",
        vec![
            "pipeline ops k",
            "latency",
            "round trips (tree)",
            "round trips (per-op)",
            "sim time (tree)",
            "sim time (per-op)",
        ],
    );
    let rel = RelationalEngine::new("rel");
    let (sales, ..) = star_schema(StarSpec {
        sales: 2_000,
        ..StarSpec::default()
    });
    rel.store("sales", sales.clone()).unwrap();
    let schema = sales.schema().clone();
    for &latency in latencies_s {
        let rel = RelationalEngine::new("rel");
        rel.store("sales", sales.clone()).unwrap();
        let cluster = bda_federation::Cluster::spawn(
            vec![std::sync::Arc::new(rel)],
            NetConfig {
                latency_s: latency,
                ..NetConfig::default()
            },
        )
        .expect("spawn cluster");
        for &k in ks {
            let mut plan = Plan::scan("sales", schema.clone());
            for i in 0..k.saturating_sub(1) {
                plan = plan.select(col("amount").gt(lit(-(i as f64))));
            }
            let (tree_out, tree_stats) = cluster.ship_tree("rel", &plan).unwrap();
            let (op_out, op_stats) = cluster.per_operator("rel", &plan).unwrap();
            assert!(tree_out.same_bag(&op_out).unwrap());
            t.row(vec![
                k.to_string(),
                fmt_secs(latency),
                tree_stats.round_trips.to_string(),
                op_stats.round_trips.to_string(),
                fmt_secs(tree_stats.sim_seconds),
                fmt_secs(op_stats.sim_seconds),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// F4 — control iteration: server-side vs client-driven
// ---------------------------------------------------------------------------

/// F4: PageRank three ways — native on the graph engine, lowered but
/// server-side on the relational engine, and client-driven (Iterate
/// masked off), swept over graph size.
pub fn f4_iteration(vertex_counts: &[usize]) -> Table {
    let mut t = Table::new(
        "F4 — control iteration: where does the loop run?",
        vec![
            "|V|",
            "mode",
            "client iterations",
            "messages",
            "plan bytes",
            "sim net time",
            "wall time",
        ],
    );
    for &v in vertex_counts {
        let spec = FederationSpec {
            graph: GraphSpec {
                vertices: v,
                edges: v * 4,
                seed: 42,
            },
            ..FederationSpec::tiny()
        };
        let fed = standard_federation(spec);
        let edges_schema = fed.registry().schema_of("edges").unwrap();
        let pagerank = Plan::Graph(GraphOp::PageRank {
            edges: Plan::scan("edges", edges_schema).boxed(),
            damping: 0.85,
            max_iters: 50,
            epsilon: 1e-8,
        });

        // Mode 1: native — the graph engine runs the loop inside.
        let ((out_native, m1), s1) = time(|| fed.run(&pagerank).unwrap());
        // Mode 2: relational only — pre-lowered, loop still server-side.
        let rel_only = subset_registry(&fed, &["rel"]);
        let opts = ExecOptions::default();
        let ((out_rel, m2), s2) =
            time(|| bda_federation::run_plan(&rel_only, &pagerank, &opts).unwrap());
        // Mode 3: relational without Iterate — the app drives the loop,
        // shipping the rank vector every iteration.
        let masked_fed = standard_federation(spec);
        let client = masked_registry(&masked_fed, "rel", vec![OpKind::Iterate]);
        let client = subset_only(client, "rel");
        let ((out_client, m3), s3) =
            time(|| bda_federation::run_plan(&client, &pagerank, &opts).unwrap());

        assert!(out_native.same_bag_approx(&out_rel), "native vs lowered");
        assert!(out_native.same_bag_approx(&out_client), "native vs client");

        for (mode, m, s) in [
            ("native (graph engine)", &m1, s1),
            ("lowered, server-side loop (rel)", &m2, s2),
            ("client-driven loop", &m3, s3),
        ] {
            t.row(vec![
                v.to_string(),
                mode.to_string(),
                m.client_driven_iterations.to_string(),
                m.messages.to_string(),
                m.plan_bytes.to_string(),
                fmt_secs(m.sim_network_s),
                fmt_secs(s),
            ]);
        }
    }
    t
}

/// Keep only the provider named `name` in a registry.
fn subset_only(reg: Registry, name: &str) -> Registry {
    let mut out = Registry::new();
    for p in reg.providers() {
        if p.name() == name {
            out.register(p.clone());
        }
    }
    out
}

// ---------------------------------------------------------------------------
// F5 — optimizer ablation: pushdown and data movement
// ---------------------------------------------------------------------------

/// F5: a selective cross-server join with the optimizer on/off, swept
/// over the filter's selectivity. Pushdown shrinks the shipped fragment.
pub fn f5_pushdown(selectivities: &[f64]) -> Table {
    let mut t = Table::new(
        "F5 — optimizer ablation: pushdown vs shipped bytes",
        vec![
            "selectivity",
            "shipped bytes (optimized)",
            "shipped bytes (naive)",
            "reduction",
            "wall (optimized)",
            "wall (naive)",
        ],
    );
    let spec = StarSpec {
        sales: 20_000,
        customers: 4_000,
        ..StarSpec::default()
    };
    let (sales, customers, ..) = star_schema(spec);
    for &sel in selectivities {
        let rel1 = RelationalEngine::new("rel1");
        rel1.store("sales", sales.clone()).unwrap();
        let rel2 = RelationalEngine::new("rel2");
        rel2.store("customers", customers.clone()).unwrap();
        let mut fed = Federation::new();
        fed.register(std::sync::Arc::new(rel1));
        fed.register(std::sync::Arc::new(rel2));
        let reg = fed.registry();
        // Predicate keeping ~`sel` of customers (ids are uniform).
        let cutoff = (spec.customers as f64 * sel) as i64;
        let plan = Plan::scan("sales", reg.schema_of("sales").unwrap())
            .join(
                Plan::scan("customers", reg.schema_of("customers").unwrap()),
                vec![("customer_id", "customer_id")],
            )
            .select(col("customer_id_r").lt(lit(cutoff)))
            .aggregate(
                vec!["region"],
                vec![AggExpr::new(AggFunc::Sum, col("amount"), "total")],
            );
        let ((out_opt, m_opt), s_opt) = time(|| fed.run(&plan).unwrap());
        let naive = ExecOptions {
            optimizer: OptimizerConfig::disabled(),
            ..ExecOptions::default()
        };
        let ((out_naive, m_naive), s_naive) = time(|| fed.run_with(&plan, &naive).unwrap());
        assert!(out_opt.same_bag(&out_naive).unwrap());
        let shipped = |m: &bda_federation::Metrics| -> usize {
            m.transfers
                .iter()
                .filter(|tr| tr.to != "app")
                .map(|tr| tr.bytes)
                .sum()
        };
        let (b_opt, b_naive) = (shipped(&m_opt), shipped(&m_naive));
        t.row(vec![
            format!("{sel:.2}"),
            b_opt.to_string(),
            b_naive.to_string(),
            format!("{:.1}x", b_naive as f64 / b_opt.max(1) as f64),
            fmt_secs(s_opt),
            fmt_secs(s_naive),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// F6 — fault recovery (robustness extension)
// ---------------------------------------------------------------------------

/// F6: the chaos run. A cross-server matmul+join executes while the
/// planner's first-choice linalg server is crashed outright (recovery
/// must fail over to a replica) and the relational server fails
/// transiently at p = 0.3 (recovery must retry). The answer is checked
/// against the reference evaluator; the same faults with recovery
/// disabled abort the plan. Seeded via `BDA_FAULT_SEED`.
pub fn f6_fault_recovery(sizes: &[usize]) -> Table {
    use bda_core::reference::evaluate;
    use bda_federation::{fault_seed_from_env, FaultConfig, FaultyProvider, RecoveryPolicy};
    use bda_storage::{Column, DataSet};

    let seed = fault_seed_from_env(0xBDA);
    let mut t = Table::new(
        "F6 — fault recovery: retry + failover under injected faults (seeded)",
        vec![
            "n",
            "seed",
            "retries",
            "failovers",
            "degraded",
            "breaker trips",
            "correct",
            "no-recovery",
        ],
    );
    for &n in sizes {
        let lookup = DataSet::from_columns(vec![
            ("row", Column::from((0..n as i64).collect::<Vec<i64>>())),
            (
                "weight",
                Column::from((0..n).map(|i| 1.0 + i as f64).collect::<Vec<f64>>()),
            ),
        ])
        .unwrap();
        let build = |recover: bool| {
            let la1 = bda_linalg::LinAlgEngine::new("la1");
            la1.store("a", random_matrix(n, n, 1)).unwrap();
            la1.store("b", random_matrix(n, n, 2)).unwrap();
            let la2 = bda_linalg::LinAlgEngine::new("la2");
            la2.store("a", random_matrix(n, n, 1)).unwrap();
            la2.store("b", random_matrix(n, n, 2)).unwrap();
            let rel = RelationalEngine::new("rel");
            rel.store("lookup", lookup.clone()).unwrap();
            let mut fed = Federation::new();
            fed.register(std::sync::Arc::new(FaultyProvider::new(
                std::sync::Arc::new(la1),
                FaultConfig::crash_after(0),
            )));
            fed.register(std::sync::Arc::new(la2));
            fed.register(std::sync::Arc::new(FaultyProvider::new(
                std::sync::Arc::new(rel),
                FaultConfig {
                    seed,
                    execute_error_rate: 0.3,
                    store_error_rate: 0.3,
                    fail_first: 1,
                    ..FaultConfig::default()
                },
            )));
            fed.options_mut().recovery = if recover {
                RecoveryPolicy {
                    max_attempts: 6,
                    backoff: std::time::Duration::from_millis(1),
                    ..RecoveryPolicy::default()
                }
            } else {
                RecoveryPolicy::disabled()
            };
            fed
        };
        let fed = build(true);
        let reg = fed.registry();
        let plan = bda_lang::Query::scan("a", reg.schema_of("a").unwrap())
            .matmul(bda_lang::Query::scan("b", reg.schema_of("b").unwrap()))
            .untag_dims()
            .join(
                bda_lang::Query::scan("lookup", reg.schema_of("lookup").unwrap()),
                vec![("row", "row")],
            )
            .plan()
            .clone();
        let (out, m) = fed.run(&plan).expect("recovery completes the plan");
        let mut src = std::collections::HashMap::new();
        src.insert("a".to_string(), random_matrix(n, n, 1));
        src.insert("b".to_string(), random_matrix(n, n, 2));
        src.insert("lookup".to_string(), lookup.clone());
        let correct = out.same_bag(&evaluate(&plan, &src).unwrap()).unwrap();
        let bare = build(false);
        let no_recovery = match bare.run(&plan) {
            Ok(_) => "completes".to_string(),
            Err(_) => "fails".to_string(),
        };
        t.row(vec![
            n.to_string(),
            seed.to_string(),
            m.retries.to_string(),
            m.failovers.to_string(),
            m.degraded_transfers.to_string(),
            m.breaker_trips.to_string(),
            correct.to_string(),
            no_recovery,
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// F7 — observability overhead & trace completeness
// ---------------------------------------------------------------------------

/// The cross-engine join⋈matmul federation used by the observability
/// measurements: matmul on `la`, join on `rel`, no faults.
pub fn observed_federation(n: usize) -> (Federation, Plan) {
    use bda_storage::{Column, DataSet};
    let la = bda_linalg::LinAlgEngine::new("la");
    la.store("a", random_matrix(n, n, 1)).unwrap();
    la.store("b", random_matrix(n, n, 2)).unwrap();
    let rel = RelationalEngine::new("rel");
    rel.store(
        "lookup",
        DataSet::from_columns(vec![
            ("row", Column::from((0..n as i64).collect::<Vec<i64>>())),
            (
                "weight",
                Column::from((0..n).map(|i| 1.0 + i as f64).collect::<Vec<f64>>()),
            ),
        ])
        .unwrap(),
    )
    .unwrap();
    let mut fed = Federation::new();
    fed.register(std::sync::Arc::new(la));
    fed.register(std::sync::Arc::new(rel));
    let reg = fed.registry();
    let plan = bda_lang::Query::scan("a", reg.schema_of("a").unwrap())
        .matmul(bda_lang::Query::scan("b", reg.schema_of("b").unwrap()))
        .untag_dims()
        .join(
            bda_lang::Query::scan("lookup", reg.schema_of("lookup").unwrap()),
            vec![("row", "row")],
        )
        .plan()
        .clone();
    (fed, plan)
}

/// Median wall time of `reps` runs of `f`.
pub fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut ts: Vec<f64> = (0..reps.max(1)).map(|_| time(&mut f).1).collect();
    ts.sort_by(f64::total_cmp);
    ts[ts.len() / 2]
}

/// F7: observability overhead & trace completeness. Each size runs the
/// cross-engine join⋈matmul plan three ways — the untraced entry point,
/// the traced entry point with a *disabled* tracer (the cost of the
/// hooks themselves, which must be near zero), and a live tracer — and
/// reports median wall times. The completeness column asserts that
/// every transfer counted in [`bda_federation::Metrics`] left a
/// matching `transfer:`/`reship:` span in the trace, with none dropped.
pub fn f7_observability(sizes: &[usize], reps: usize) -> Table {
    use bda_obs::Tracer;
    let mut t = Table::new(
        "F7 — observability: tracing overhead & trace completeness",
        vec![
            "n",
            "untraced",
            "hooks off",
            "hooks Δ",
            "traced",
            "traced Δ",
            "spans",
            "transfers",
            "complete",
        ],
    );
    let pct = |base: f64, x: f64| {
        if base > 0.0 {
            format!("{:+.1}%", (x - base) / base * 100.0)
        } else {
            "-".to_string()
        }
    };
    for &n in sizes {
        let (fed, plan) = observed_federation(n);
        let untraced = median_secs(reps, || {
            fed.run(&plan).unwrap();
        });
        let hooks_off = median_secs(reps, || {
            fed.run_traced(&plan, &Tracer::disabled()).unwrap();
        });
        let traced = median_secs(reps, || {
            fed.run_traced(&plan, &Tracer::new(7)).unwrap();
        });

        let tracer = Tracer::new(7);
        let (_, m) = fed.run_traced(&plan, &tracer).unwrap();
        let trace = tracer.finish();
        let moved = trace.spans_named("transfer:").len() + trace.spans_named("reship:").len();
        let complete = m.transfers.len() == moved && trace.dropped == 0;
        assert!(
            complete,
            "metrics recorded {} transfers but the trace holds {moved} \
             transfer/reship spans ({} dropped)",
            m.transfers.len(),
            trace.dropped
        );
        t.row(vec![
            n.to_string(),
            fmt_secs(untraced),
            fmt_secs(hooks_off),
            pct(untraced, hooks_off),
            fmt_secs(traced),
            pct(untraced, traced),
            trace.spans.len().to_string(),
            m.transfers.len().to_string(),
            complete.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// F8 — partition-parallel scaling
// ---------------------------------------------------------------------------

/// A provider wrapper that adds a fixed service delay to every
/// data-plane call, standing in for a remote engine whose requests cost
/// real round-trip time. Control-plane calls (catalog, capabilities)
/// stay free so planning is unaffected.
struct SlowProvider {
    inner: std::sync::Arc<dyn Provider>,
    delay: std::time::Duration,
}

impl Provider for SlowProvider {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn capabilities(&self) -> bda_core::CapabilitySet {
        self.inner.capabilities()
    }
    fn catalog(&self) -> Vec<(String, Schema)> {
        self.inner.catalog()
    }
    fn execute(&self, plan: &Plan) -> bda_core::Result<bda_storage::DataSet> {
        std::thread::sleep(self.delay);
        self.inner.execute(plan)
    }
    fn store(&self, name: &str, data: bda_storage::DataSet) -> bda_core::Result<()> {
        std::thread::sleep(self.delay);
        self.inner.store(name, data)
    }
    fn remove(&self, name: &str) {
        self.inner.remove(name)
    }
}

/// The F8 federation: four *independent* matmul branches, each pinned to
/// its own slow linalg site (`la1..la4` hold disjoint `a{i}`/`b{i}`
/// pairs), unioned and joined against a lookup on `rel`. Sequential
/// dispatch pays the four service delays back to back; the parallel
/// scheduler overlaps them.
fn f8_federation(n: usize, delay: std::time::Duration) -> (Federation, Plan) {
    use bda_storage::{Column, DataSet};
    let mut fed = Federation::new();
    for i in 1..=4usize {
        let la = bda_linalg::LinAlgEngine::new(format!("la{i}"));
        la.store(&format!("a{i}"), random_matrix(n, n, i as u64))
            .unwrap();
        la.store(&format!("b{i}"), random_matrix(n, n, 10 + i as u64))
            .unwrap();
        fed.register(std::sync::Arc::new(SlowProvider {
            inner: std::sync::Arc::new(la),
            delay,
        }));
    }
    let rel = RelationalEngine::new("rel");
    rel.store(
        "lookup",
        DataSet::from_columns(vec![
            ("row", Column::from((0..n as i64).collect::<Vec<i64>>())),
            (
                "weight",
                Column::from((0..n).map(|i| 1.0 + i as f64).collect::<Vec<f64>>()),
            ),
        ])
        .unwrap(),
    )
    .unwrap();
    fed.register(std::sync::Arc::new(rel));

    let reg = fed.registry();
    let branch = |i: usize| {
        let a = format!("a{i}");
        let b = format!("b{i}");
        Plan::UntagDims {
            input: Plan::scan(&a, reg.schema_of(&a).unwrap())
                .matmul(Plan::scan(&b, reg.schema_of(&b).unwrap()))
                .boxed(),
        }
    };
    let plan = branch(1)
        .union(branch(2))
        .union(branch(3))
        .union(branch(4))
        .join(
            Plan::scan("lookup", reg.schema_of("lookup").unwrap()),
            vec![("row", "row")],
        )
        .aggregate(
            vec![],
            vec![
                AggExpr::new(AggFunc::Sum, col("v"), "total"),
                AggExpr::count_star("cells"),
            ],
        );
    (fed, plan)
}

/// F8: partition-parallel scaling — the join+matmul workload's median
/// wall time versus `ExecOptions::workers`. The container CI runs on is
/// single-core, so the speedup measured here is fragment-dispatch
/// *overlap* of the four slow sites' service delays, not CPU scaling;
/// that overlap is exactly what the parallel scheduler exists to buy.
pub fn f8_scaling(worker_counts: &[usize], n: usize, reps: usize) -> Table {
    let delay = std::time::Duration::from_millis(15);
    let (fed, plan) = f8_federation(n, delay);
    let mut t = Table::new(
        "F8 — partition-parallel scaling: join+matmul vs worker count",
        vec!["workers", "median wall", "speedup vs 1", "rows"],
    );
    let expected = fed.run(&plan).expect("workload runs sequentially").0;
    let mut base = None::<f64>;
    for &workers in worker_counts {
        let opts = ExecOptions {
            workers,
            ..ExecOptions::default()
        };
        let (out, _) = fed.run_with(&plan, &opts).expect("workload runs");
        assert!(
            out.same_bag_approx(&expected),
            "workers={workers} changed the answer"
        );
        let median = median_secs(reps, || {
            fed.run_with(&plan, &opts).unwrap();
        });
        let base_s = *base.get_or_insert(median);
        t.row(vec![
            workers.to_string(),
            fmt_secs(median),
            format!("{:.1}x", base_s / median.max(1e-9)),
            out.num_rows().to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// tests (tiny sizes)
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_t2_cover_everything() {
        let fed = standard_federation(FederationSpec::tiny());
        let t1 = t1_coverage(&fed);
        assert_eq!(t1.len(), OpKind::ALL.len());
        assert!(!t1.to_string().contains("UNTRANSLATABLE"), "{t1}");
        let t2 = t2_translatability(&fed);
        assert!(t2.to_string().contains("desideratum met"), "{t2}");
    }

    #[test]
    fn t3_results_agree_across_stacks() {
        let t = t3_portability(FederationSpec::tiny());
        let s = t.to_string();
        assert!(!s.contains("false"), "{s}");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn t4_formulations_agree() {
        let t = t4_dimension_awareness(FederationSpec::tiny());
        let s = t.to_string();
        assert!(!s.contains("false"), "{s}");
        // Array form must land on the array engine, table form elsewhere.
        assert!(s.contains("arr"), "{s}");
    }

    #[test]
    fn f1_runs_and_native_wins() {
        let t = f1_intent(&[16]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn f2_direct_moves_nothing_through_app() {
        let t = f2_interop(&[8, 16]);
        for row in &t.rows {
            assert_eq!(row[2], "0", "direct app-tier bytes must be zero: {t}");
            let inter: usize = row[1].parse().unwrap();
            let routed: usize = row[3].parse().unwrap();
            assert_eq!(inter, routed, "routed sends all intermediates via app");
        }
    }

    #[test]
    fn f3_tree_always_one_round_trip() {
        let t = f3_shipping(&[1, 4], &[1e-3]);
        for row in &t.rows {
            assert_eq!(row[2], "1");
            // Per-op: one call per non-scan operator (k-1 filters) plus
            // the final fetch.
            let k: usize = row[0].parse().unwrap();
            let per_op: usize = row[3].parse().unwrap();
            assert_eq!(per_op, k);
        }
    }

    #[test]
    fn f4_modes_agree_and_client_pays() {
        let t = f4_iteration(&[30]);
        assert_eq!(t.len(), 3);
        let client_row = &t.rows[2];
        let iters: usize = client_row[2].parse().unwrap();
        assert!(iters > 0, "client mode must drive iterations: {t}");
        let native_row = &t.rows[0];
        assert_eq!(native_row[2], "0");
    }

    #[test]
    fn f5_pushdown_reduces_bytes() {
        let t = f5_pushdown(&[0.1]);
        let row = &t.rows[0];
        let opt: usize = row[1].parse().unwrap();
        let naive: usize = row[2].parse().unwrap();
        assert!(opt < naive, "pushdown must ship fewer bytes: {t}");
    }

    #[test]
    fn f6_recovers_verifies_and_contrasts() {
        let t = f6_fault_recovery(&[8]);
        let row = &t.rows[0];
        let retries: usize = row[2].parse().unwrap();
        let failovers: usize = row[3].parse().unwrap();
        assert!(retries > 0, "transients must force retries: {t}");
        assert!(failovers > 0, "the crash must force a failover: {t}");
        assert_eq!(row[6], "true", "recovered answer must verify: {t}");
        assert_eq!(row[7], "fails", "without recovery the plan aborts: {t}");
    }

    #[test]
    fn f8_four_workers_at_least_double_sequential() {
        // The acceptance bar: ≥ 2x at 4 workers over sequential dispatch
        // on the join+matmul workload. The 15 ms per-site service delay
        // dominates compute at this size, so the bar holds on any
        // machine, including a single-core CI container.
        let t = f8_scaling(&[1, 4], 16, 3);
        assert_eq!(t.len(), 2);
        let speedup: f64 = t.rows[1][2].trim_end_matches('x').parse().unwrap();
        assert!(
            speedup >= 2.0,
            "4 workers must at least halve the sequential wall time: {t}"
        );
        assert_eq!(t.rows[0][3], t.rows[1][3], "row counts must agree: {t}");
    }

    #[test]
    fn f7_trace_is_complete() {
        // The completeness assertion lives inside f7_observability; a
        // passing run at tiny size is the test.
        let t = f7_observability(&[8], 3);
        let row = &t.rows[0];
        assert_eq!(row[8], "true", "{t}");
        let spans: usize = row[6].parse().unwrap();
        assert!(spans > 0, "traced run must record spans: {t}");
    }
}
