//! Minimal ASCII table rendering for experiment output.

use std::fmt;

/// A printable table with a title, column headers and string cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (e.g. `"T1 — operator coverage"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; ragged rows are padded when rendered.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A new empty table.
    pub fn new(title: impl Into<String>, headers: Vec<&str>) -> Table {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                write!(f, "| {cell:w$} ", w = w)?;
            }
            writeln!(f, "|")
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a float compactly for table cells.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.001 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

/// Format a duration in adaptive units.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", vec!["a", "long_header"]);
        t.row(vec!["xx".into(), "1".into()]);
        t.row(vec!["y".into(), "22222222222222".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="), "{s}");
        assert!(s.lines().count() >= 5);
        // All data lines have the same width.
        let widths: Vec<usize> = s
            .lines()
            .filter(|l| l.starts_with('|'))
            .map(|l| l.len())
            .collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    fn float_formats() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1.5), "1.5000");
        assert!(fmt_f64(123456.0).contains('e'));
        assert!(fmt_secs(0.002).ends_with("ms"));
        assert!(fmt_secs(2.0).ends_with('s'));
        assert!(fmt_secs(2e-6).ends_with("us"));
    }
}
