//! Standard federation setups shared by experiments, benches and tests.

use std::sync::Arc;

use bda_array::ArrayEngine;
use bda_core::Provider;
use bda_federation::{Federation, MaskedProvider, Registry};
use bda_graph::GraphEngine;
use bda_linalg::LinAlgEngine;
use bda_relational::RelationalEngine;
use bda_workloads::{
    random_graph, random_matrix, sensor_array, star_schema, GraphSpec, SensorSpec, StarSpec,
};

/// Sizing knobs for the standard federation.
#[derive(Debug, Clone, Copy)]
pub struct FederationSpec {
    /// Star-schema sizing.
    pub star: StarSpec,
    /// Sensor-array sizing.
    pub sensors: SensorSpec,
    /// Random-graph sizing.
    pub graph: GraphSpec,
    /// Square matrix side for `a`/`b` on the linalg engine.
    pub matrix_n: usize,
}

impl Default for FederationSpec {
    fn default() -> Self {
        FederationSpec {
            star: StarSpec::default(),
            sensors: SensorSpec::default(),
            graph: GraphSpec::default(),
            matrix_n: 64,
        }
    }
}

impl FederationSpec {
    /// Small sizes for unit tests.
    pub fn tiny() -> FederationSpec {
        FederationSpec {
            star: StarSpec {
                sales: 200,
                customers: 20,
                products: 10,
                stores: 4,
                seed: 42,
            },
            sensors: SensorSpec {
                sensors: 4,
                ticks: 32,
                missing: 0.1,
                seed: 42,
            },
            graph: GraphSpec {
                vertices: 40,
                edges: 160,
                seed: 42,
            },
            matrix_n: 8,
        }
    }
}

/// Build the standard 4-engine federation:
///
/// * `rel` (relational): the star schema (`sales`, `customers`,
///   `products`, `stores`) and a row-form copy of matrix `a` (`a_rows`).
/// * `arr` (array): the sensor array (`sensors`).
/// * `la` (linear algebra): dense matrices `a` and `b`.
/// * `graph`: the random graph's `edges`.
pub fn standard_federation(spec: FederationSpec) -> Federation {
    let rel = RelationalEngine::new("rel");
    let (sales, customers, products, stores) = star_schema(spec.star);
    rel.store("sales", sales).unwrap();
    rel.store("customers", customers).unwrap();
    rel.store("products", products).unwrap();
    rel.store("stores", stores).unwrap();
    let a = random_matrix(spec.matrix_n, spec.matrix_n, 7);
    rel.store("a_rows", a.normalized_rows().unwrap()).unwrap();

    let arr = ArrayEngine::new("arr");
    arr.store("sensors", sensor_array(spec.sensors)).unwrap();

    let la = LinAlgEngine::new("la");
    la.store("a", a).unwrap();
    la.store("b", random_matrix(spec.matrix_n, spec.matrix_n, 8))
        .unwrap();

    let graph = GraphEngine::new("graph");
    let (_, edges) = random_graph(spec.graph);
    graph.store("edges", edges.clone()).unwrap();
    // The relational engine also keeps the edges so lowered graph queries
    // have a home (used by F4's ablations).
    rel.store("edges", edges).unwrap();

    let mut fed = Federation::new();
    fed.register(Arc::new(rel));
    fed.register(Arc::new(arr));
    fed.register(Arc::new(la));
    fed.register(Arc::new(graph));
    fed
}

/// A registry identical to `fed`'s but with capabilities masked off a
/// named provider (ablation helper).
pub fn masked_registry(
    fed: &Federation,
    provider: &str,
    removed: Vec<bda_core::OpKind>,
) -> Registry {
    let mut out = Registry::new();
    for p in fed.registry().providers() {
        if p.name() == provider {
            out.register(Arc::new(MaskedProvider::new(p.clone(), removed.clone())));
        } else {
            out.register(p.clone());
        }
    }
    out
}

/// A registry containing only the named providers of `fed`.
pub fn subset_registry(fed: &Federation, names: &[&str]) -> Registry {
    let mut out = Registry::new();
    for p in fed.registry().providers() {
        if names.contains(&p.name()) {
            out.register(p.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_federation_has_expected_catalogs() {
        let fed = standard_federation(FederationSpec::tiny());
        let r = fed.registry();
        assert_eq!(r.providers().len(), 4);
        assert_eq!(r.locations_of("sales"), vec!["rel"]);
        assert_eq!(r.locations_of("sensors"), vec!["arr"]);
        assert_eq!(r.locations_of("a"), vec!["la"]);
        assert_eq!(r.locations_of("edges"), vec!["rel", "graph"]);
    }

    #[test]
    fn subset_and_mask_helpers() {
        let fed = standard_federation(FederationSpec::tiny());
        let sub = subset_registry(&fed, &["rel"]);
        assert_eq!(sub.providers().len(), 1);
        let masked = masked_registry(&fed, "rel", vec![bda_core::OpKind::Iterate]);
        let rel = masked.provider("rel").unwrap();
        assert!(!rel.capabilities().supports(bda_core::OpKind::Iterate));
    }
}
