//! Serving-core saturation bench: a thousand concurrent connections
//! against the reactor, with the thread-per-connection server as the
//! baseline and a deliberate overload phase proving the shed-not-hang
//! contract.
//!
//! Four phases (all client-side measured with `bda_obs::Histogram`, so
//! the reported p50/p99/p999 use the same bucket math as the server):
//!
//! * `baseline_threads` — the classic `serve()` core, 64 connections.
//! * `reactor_1k` — `serve_reactor` with ~1k open connections, every
//!   round writing one request on *each* connection before reading any
//!   reply, so admission really sees ~1k in-flight requests. Must
//!   complete with **zero protocol errors and zero sheds**.
//! * `reactor_pipelined` — a few [`PipelinedClient`]s at depth 32: the
//!   single-connection pipelining throughput story.
//! * `reactor_overload` — the same flood into a deliberately tiny
//!   admission queue: every request must still get *an answer* (shed
//!   replies are transient errors, never silence), and the server must
//!   answer promptly once the flood stops.
//!
//! ```text
//! cargo run --release -p bda-bench --bin saturation -- --out BENCH_serving.json
//! cargo run --release -p bda-bench --bin saturation -- --addr 127.0.0.1:7341
//! ```
//!
//! With `--addr`, only the 1k-connection phase runs, against an already
//! running `bda-served --reactor` (the CI smoke job does this); the
//! process exits nonzero on any protocol error or hung request.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bda_core::{col, lit, Plan, Provider};
use bda_net::frame::{read_message, write_message, FrameError};
use bda_net::proto::{decode_response, encode_request};
use bda_net::{serve, PipelinedClient, RemoteProvider, Request, Response};
use bda_obs::Histogram;
use bda_reactor::{serve_reactor, AdmissionConfig, ReactorOptions};
use bda_relational::RelationalEngine;
use bda_storage::{Column, DataSet};

/// Per-phase tallies; everything the JSON report needs.
#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    shed: AtomicU64,
    app_errors: AtomicU64,
    protocol_errors: AtomicU64,
    hangs: AtomicU64,
}

struct PhaseReport {
    name: &'static str,
    connections: usize,
    requests: u64,
    ok: u64,
    shed: u64,
    app_errors: u64,
    protocol_errors: u64,
    hangs: u64,
    elapsed_s: f64,
    qps: f64,
    p50_s: f64,
    p99_s: f64,
    p999_s: f64,
}

impl PhaseReport {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"connections\": {}, \"requests\": {}, \"ok\": {}, ",
                "\"shed\": {}, \"app_errors\": {}, \"protocol_errors\": {}, ",
                "\"hangs\": {}, \"elapsed_s\": {:.3}, \"qps\": {:.0}, ",
                "\"p50_s\": {:.6}, \"p99_s\": {:.6}, \"p999_s\": {:.6}}}"
            ),
            self.connections,
            self.requests,
            self.ok,
            self.shed,
            self.app_errors,
            self.protocol_errors,
            self.hangs,
            self.elapsed_s,
            self.qps,
            self.p50_s,
            self.p99_s,
            self.p999_s,
        )
    }
}

/// The benchmark workload: a selective filter over a small table —
/// enough work to touch the engine, small enough that the serving core
/// dominates.
fn demo_table() -> DataSet {
    let n = 256i64;
    DataSet::from_columns(vec![
        ("k", Column::from((0..n).collect::<Vec<i64>>())),
        (
            "v",
            Column::from((0..n).map(|i| (i % 10) as f64).collect::<Vec<f64>>()),
        ),
    ])
    .unwrap()
}

fn classify(
    result: Result<(u8, Vec<u8>, u64), FrameError>,
    tally: &Tally,
    lat: &Histogram,
    s: f64,
) {
    match result {
        Ok((kind, payload, _)) => match decode_response(kind, &payload) {
            Ok(Response::DataSet(_)) | Ok(Response::Catalog(_)) | Ok(Response::Hello { .. }) => {
                tally.ok.fetch_add(1, Ordering::Relaxed);
                lat.observe_s(s);
            }
            Ok(Response::Error {
                transient: true, ..
            }) => {
                // The reactor's load shedding: a prompt transient error.
                tally.shed.fetch_add(1, Ordering::Relaxed);
                lat.observe_s(s);
            }
            Ok(_) => {
                tally.app_errors.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
        },
        Err(FrameError::Io(e))
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            tally.hangs.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Drive `conns` connections split over `threads` OS threads for
/// `rounds` rounds. Each round writes the request on every connection
/// the thread owns *before* reading any response, so in-flight load
/// approaches the full connection count.
fn closed_loop(
    name: &'static str,
    addr: &str,
    conns: usize,
    threads: usize,
    rounds: usize,
    plan: &Plan,
) -> PhaseReport {
    let (kind, payload) = encode_request(&Request::Execute { plan: plan.clone() });
    let mut wire = Vec::new();
    write_message(&mut wire, kind, &payload).unwrap();
    let wire = Arc::new(wire);
    let tally = Arc::new(Tally::default());
    let lat = Histogram::new();

    let per_thread = conns.div_ceil(threads);
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let addr = addr.to_string();
            let wire = Arc::clone(&wire);
            let tally = Arc::clone(&tally);
            let lat = lat.clone();
            let own = per_thread.min(conns - (t * per_thread).min(conns));
            std::thread::Builder::new()
                .name(format!("sat-client-{t}"))
                .spawn(move || {
                    let mut sockets = Vec::with_capacity(own);
                    for _ in 0..own {
                        let s = TcpStream::connect(&addr).expect("connect");
                        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                        s.set_nodelay(true).ok();
                        sockets.push(s);
                    }
                    for _ in 0..rounds {
                        let round_start = Instant::now();
                        for s in &mut sockets {
                            if s.write_all(&wire).is_err() {
                                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        for s in &mut sockets {
                            classify(
                                read_message(s),
                                &tally,
                                &lat,
                                round_start.elapsed().as_secs_f64(),
                            );
                        }
                    }
                })
                .unwrap()
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = started.elapsed().as_secs_f64();

    let requests = (conns * rounds) as u64;
    PhaseReport {
        name,
        connections: conns,
        requests,
        ok: tally.ok.load(Ordering::Relaxed),
        shed: tally.shed.load(Ordering::Relaxed),
        app_errors: tally.app_errors.load(Ordering::Relaxed),
        protocol_errors: tally.protocol_errors.load(Ordering::Relaxed),
        hangs: tally.hangs.load(Ordering::Relaxed),
        elapsed_s: elapsed,
        qps: requests as f64 / elapsed.max(1e-9),
        p50_s: lat.p50().unwrap_or(0.0),
        p99_s: lat.p99().unwrap_or(0.0),
        p999_s: lat.p999().unwrap_or(0.0),
    }
}

/// A few pipelined clients, each keeping `depth` requests in flight on
/// one connection — the single-socket throughput story.
fn pipelined_phase(
    addr: &str,
    clients: usize,
    depth: usize,
    rounds: usize,
    plan: &Plan,
) -> PhaseReport {
    let tally = Arc::new(Tally::default());
    let lat = Histogram::new();
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.to_string();
            let plan = plan.clone();
            let tally = Arc::clone(&tally);
            let lat = lat.clone();
            std::thread::spawn(move || {
                let client = PipelinedClient::connect(&addr).expect("pipelined connect");
                for _ in 0..rounds {
                    let batch_start = Instant::now();
                    let pending: Vec<_> = (0..depth)
                        .map(|_| {
                            client
                                .send(&Request::Execute { plan: plan.clone() })
                                .unwrap()
                        })
                        .collect();
                    for p in pending {
                        match p.wait(Duration::from_secs(60)) {
                            Ok(Response::DataSet(_)) => {
                                tally.ok.fetch_add(1, Ordering::Relaxed);
                                lat.observe_s(batch_start.elapsed().as_secs_f64());
                            }
                            Ok(Response::Error {
                                transient: true, ..
                            }) => {
                                tally.shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(_) => {
                                tally.app_errors.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                tally.hangs.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let requests = (clients * depth * rounds) as u64;
    PhaseReport {
        name: "reactor_pipelined",
        connections: clients,
        requests,
        ok: tally.ok.load(Ordering::Relaxed),
        shed: tally.shed.load(Ordering::Relaxed),
        app_errors: tally.app_errors.load(Ordering::Relaxed),
        protocol_errors: tally.protocol_errors.load(Ordering::Relaxed),
        hangs: tally.hangs.load(Ordering::Relaxed),
        elapsed_s: elapsed,
        qps: requests as f64 / elapsed.max(1e-9),
        p50_s: lat.p50().unwrap_or(0.0),
        p99_s: lat.p99().unwrap_or(0.0),
        p999_s: lat.p999().unwrap_or(0.0),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: saturation [--conns N] [--rounds N] [--out PATH] [--addr HOST:PORT]\n\
         \n\
         Without --addr: full in-process suite (baseline, reactor 1k,\n\
         pipelined, overload), report written to --out (default\n\
         BENCH_serving.json). With --addr: the 1k-connection phase only,\n\
         against a running `bda-served --reactor`; exits nonzero on any\n\
         protocol error or hang."
    );
    std::process::exit(2)
}

fn main() {
    let mut conns = 1024usize;
    let mut rounds = 8usize;
    let mut out = String::from("BENCH_serving.json");
    let mut addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--conns" => conns = val().parse().unwrap_or_else(|_| usage()),
            "--rounds" => rounds = val().parse().unwrap_or_else(|_| usage()),
            "--out" => out = val(),
            "--addr" => addr = Some(val()),
            _ => usage(),
        }
    }
    let threads = 32.min(conns.max(1));

    let mut phases: Vec<PhaseReport> = Vec::new();
    let mut post_flood_s = None;
    let mut failed_scrape = false;

    if let Some(addr) = addr {
        // External mode: the serving smoke against a live `--reactor`.
        let remote = RemoteProvider::connect(addr.clone()).expect("connect to bda-served");
        let schema = remote
            .schema_of("sales")
            .expect("bda-served --demo publishes `sales`");
        let plan = Plan::scan("sales", schema).select(col("v").gt(lit(15.0)));
        phases.push(closed_loop(
            "reactor_external",
            &addr,
            conns,
            threads,
            rounds,
            &plan,
        ));
    } else {
        let engine = Arc::new(RelationalEngine::new("bench"));
        engine.store("sales", demo_table()).unwrap();
        let plan = Plan::scan("sales", demo_table().schema().clone()).select(col("v").gt(lit(5.0)));

        // Baseline: the thread-per-connection core at a thread count it
        // can sustain (it spawns one OS thread per socket).
        let baseline = serve(Arc::clone(&engine) as Arc<dyn Provider>, "127.0.0.1:0").unwrap();
        phases.push(closed_loop(
            "baseline_threads",
            &baseline.addr().to_string(),
            64.min(conns),
            threads,
            rounds * 2,
            &plan,
        ));
        drop(baseline);

        // Reactor, provisioned for the full flood: nothing may shed.
        let roomy = ReactorOptions {
            admission: AdmissionConfig {
                queue_capacity: 4 * conns.max(256),
                per_tenant: 4 * conns.max(256),
                fair_share: false,
            },
            max_connections: 4 * conns.max(256),
            ..ReactorOptions::default()
        };
        let mut reactor = serve_reactor(
            Arc::clone(&engine) as Arc<dyn Provider>,
            "127.0.0.1:0",
            roomy,
        )
        .unwrap();
        phases.push(closed_loop(
            "reactor_1k",
            &reactor.addr().to_string(),
            conns,
            threads,
            rounds,
            &plan,
        ));
        phases.push(pipelined_phase(
            &reactor.addr().to_string(),
            8,
            32,
            rounds,
            &plan,
        ));
        reactor.shutdown();

        // Overload: a deliberately tiny queue under the same flood. The
        // contract is shed-not-hang: every request answers (ok or a
        // prompt transient error), and the server stays responsive.
        let tiny = ReactorOptions {
            admission: AdmissionConfig {
                queue_capacity: 16,
                per_tenant: 16,
                fair_share: false,
            },
            max_connections: 4 * conns.max(256),
            ..ReactorOptions::default()
        };
        let overload_server = serve_reactor(
            Arc::clone(&engine) as Arc<dyn Provider>,
            "127.0.0.1:0",
            tiny,
        )
        .unwrap();
        let overload = closed_loop(
            "reactor_overload",
            &overload_server.addr().to_string(),
            conns,
            threads,
            rounds.min(4),
            &plan,
        );
        // After the flood: one clean request must answer promptly.
        let t = Instant::now();
        let remote = RemoteProvider::connect(overload_server.addr().to_string()).unwrap();
        remote.execute(&plan).expect("post-flood request succeeds");
        post_flood_s = Some(t.elapsed().as_secs_f64());

        // Every shed the clients counted must also appear in the
        // reason/priority-labeled admission counter the operators see.
        if overload.shed > 0 {
            let scrape = overload_server.metrics().render();
            let labeled = scrape.contains("bda_admission_shed_total{reason=\"")
                && scrape.contains("priority=\"");
            if !labeled {
                eprintln!(
                    "FAIL reactor_overload: sheds happened but \
                     bda_admission_shed_total{{reason,priority}} is missing from /metrics"
                );
                failed_scrape = true;
            }
        }
        phases.push(overload);
    }

    // ---- verdicts ----
    let mut failed = failed_scrape;
    for p in &phases {
        println!(
            "{:>18}: {} conns, {} reqs in {:.2}s = {:.0} qps  p50 {:.1}us p99 {:.1}us p999 {:.1}us  (ok {}, shed {}, app-err {}, proto-err {}, hangs {})",
            p.name,
            p.connections,
            p.requests,
            p.elapsed_s,
            p.qps,
            p.p50_s * 1e6,
            p.p99_s * 1e6,
            p.p999_s * 1e6,
            p.ok,
            p.shed,
            p.app_errors,
            p.protocol_errors,
            p.hangs
        );
        if p.protocol_errors > 0 || p.hangs > 0 || p.app_errors > 0 {
            eprintln!(
                "FAIL {}: protocol errors / hangs / app errors under load",
                p.name
            );
            failed = true;
        }
        match p.name {
            "reactor_1k" if p.shed > 0 => {
                eprintln!(
                    "FAIL reactor_1k: shed {} requests with a roomy queue",
                    p.shed
                );
                failed = true;
            }
            "reactor_overload" => {
                if p.shed == 0 {
                    eprintln!(
                        "FAIL reactor_overload: tiny queue never shed — admission not engaged"
                    );
                    failed = true;
                }
                if p.ok == 0 {
                    eprintln!("FAIL reactor_overload: nothing succeeded under overload");
                    failed = true;
                }
            }
            _ => {}
        }
    }
    if let Some(s) = post_flood_s {
        println!("     post-flood request: {:.1}ms", s * 1e3);
        if s > 5.0 {
            eprintln!("FAIL: post-flood request took {s:.1}s — the server did not recover");
            failed = true;
        }
    }

    // ---- report ----
    let mut json = String::from("{\n  \"bench\": \"serving-saturation\",\n");
    json.push_str(&format!("  \"target_connections\": {conns},\n"));
    json.push_str(&format!("  \"client_threads\": {threads},\n"));
    json.push_str("  \"phases\": {\n");
    for (i, p) in phases.iter().enumerate() {
        json.push_str(&format!("    \"{}\": {}", p.name, p.json()));
        json.push_str(if i + 1 < phases.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }");
    if let Some(s) = post_flood_s {
        json.push_str(&format!(",\n  \"post_flood_request_s\": {s:.6}"));
    }
    json.push_str("\n}\n");
    std::fs::write(&out, &json).expect("write report");
    println!("wrote {out}");

    if failed {
        std::process::exit(1);
    }
}
