//! F10: measured-cost calibration pays for itself.
//!
//! Two relational replicas hold identical data; one (registered first,
//! so static placement prefers it on the row-count tie) answers every
//! request ~20 ms late — a stand-in for a saturated or distant site.
//! The run calibrates the cost book from a handful of traced queries,
//! then times the same query planned statically vs planned against the
//! book. Calibrated planning must come out at least 1.5x faster or the
//! binary exits 1. Results land in `BENCH_profiling.json`.
//!
//! ```text
//! cargo run --release -p bda-bench --bin profiling_bench
//! ```
//!
//! `--determinism SEED [--out FILE]` instead feeds a seeded stream of
//! synthetic profiles into a *fresh* [`CostBook`] and dumps the book
//! plus the calibration-off plan for the same federation. Two runs with
//! the same seed must produce byte-identical files — CI diffs them —
//! which pins down both the EWMA fold and the plans-unchanged-when-off
//! guarantee.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bda_core::{CapabilitySet, CoreError, Plan, Provider};
use bda_federation::{ExecOptions, Federation};
use bda_lang::parse_query;
use bda_obs::profile::{CostBook, OpProfile, QueryProfile, SiteProfile};
use bda_obs::{splitmix64, Tracer};
use bda_relational::RelationalEngine;
use bda_storage::{Column, DataSet, Schema};

const ROWS: usize = 4096;
const CAL_QUERIES: u64 = 3;
const REPS: usize = 9;
const SPEEDUP_FLOOR: f64 = 1.5;
const SLOW_DISPATCH: Duration = Duration::from_millis(20);

/// A provider that answers correctly but late: every execute sleeps
/// before delegating. Catalog, storage, and statistics pass straight
/// through, so the planner sees it as a full replica.
struct SlowProvider {
    inner: RelationalEngine,
    delay: Duration,
}

impl Provider for SlowProvider {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capabilities(&self) -> CapabilitySet {
        self.inner.capabilities()
    }

    fn catalog(&self) -> Vec<(String, Schema)> {
        self.inner.catalog()
    }

    fn execute(&self, plan: &Plan) -> Result<DataSet, CoreError> {
        std::thread::sleep(self.delay);
        self.inner.execute(plan)
    }

    fn store(&self, name: &str, data: DataSet) -> Result<(), CoreError> {
        self.inner.store(name, data)
    }

    fn remove(&self, name: &str) {
        self.inner.remove(name)
    }

    fn schema_of(&self, name: &str) -> Option<Schema> {
        self.inner.schema_of(name)
    }

    fn row_count_of(&self, name: &str) -> Option<usize> {
        self.inner.row_count_of(name)
    }

    fn execute_traced(
        &self,
        plan: &Plan,
        ctx: &bda_obs::TraceContext,
    ) -> Result<(DataSet, Vec<bda_obs::Span>), CoreError> {
        std::thread::sleep(self.delay);
        self.inner.execute_traced(plan, ctx)
    }
}

fn events(n: usize) -> DataSet {
    DataSet::from_columns(vec![
        ("k", Column::from((0..n as i64).collect::<Vec<i64>>())),
        (
            "v",
            Column::from(
                (0..n)
                    .map(|i| (i % 100) as f64 / 100.0)
                    .collect::<Vec<f64>>(),
            ),
        ),
    ])
    .expect("events table")
}

/// The F10 federation: `slow` (registered first — static placement's
/// choice) and `fast`, both holding `events`.
fn replicated_federation(delay: Duration) -> (Federation, Plan) {
    let slow = SlowProvider {
        inner: RelationalEngine::new("slow"),
        delay,
    };
    slow.store("events", events(ROWS)).expect("store slow");
    let fast = RelationalEngine::new("fast");
    fast.store("events", events(ROWS)).expect("store fast");
    let mut fed = Federation::new();
    fed.register(Arc::new(slow));
    fed.register(Arc::new(fast));
    let plan = parse_query("scan events | where v > 0.5", &|name: &str| {
        fed.registry().schema_of(name).ok()
    })
    .expect("query parses");
    (fed, plan)
}

fn median_of(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn run_f10(out: &str) {
    let (fed, plan) = replicated_federation(SLOW_DISPATCH);

    // Calibrate: traced queries run on the *static* plan (the slow
    // replica), so the book measures exactly what static placement
    // costs. The fast replica stays unmeasured — the planner's
    // optimistic-zero dispatch is what routes the first query there.
    for i in 0..CAL_QUERIES {
        fed.run_traced(&plan, &Tracer::new(0xF10 + i))
            .expect("calibration query");
    }

    let static_opts = ExecOptions {
        calibrate: false,
        ..ExecOptions::default()
    };
    let calibrated_opts = ExecOptions {
        calibrate: true,
        ..ExecOptions::default()
    };
    let mut t_static = Vec::with_capacity(REPS);
    let mut t_calibrated = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let s = Instant::now();
        fed.run_with(&plan, &static_opts).expect("static run");
        t_static.push(s.elapsed().as_secs_f64());
        let s = Instant::now();
        fed.run_with(&plan, &calibrated_opts)
            .expect("calibrated run");
        t_calibrated.push(s.elapsed().as_secs_f64());
    }
    let static_ms = median_of(t_static) * 1e3;
    let calibrated_ms = median_of(t_calibrated) * 1e3;
    let speedup = static_ms / calibrated_ms;

    println!("F10 profiling bench (rows={ROWS}, {REPS} reps, median):");
    println!("  static placement:      {static_ms:>10.3} ms");
    println!("  calibrated placement:  {calibrated_ms:>10.3} ms");
    println!("  speedup:               {speedup:>10.2}x (floor {SPEEDUP_FLOOR}x)");

    let json = format!(
        "{{\"experiment\":\"F10\",\"rows\":{ROWS},\"reps\":{REPS},\
         \"slow_dispatch_ms\":{},\"static_ms\":{static_ms:.3},\
         \"calibrated_ms\":{calibrated_ms:.3},\"speedup\":{speedup:.2},\
         \"floor\":{SPEEDUP_FLOOR}}}\n",
        SLOW_DISPATCH.as_millis(),
    );
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("profiling_bench: writing {out}: {e}");
        std::process::exit(1);
    }
    println!("  wrote {out}");

    if static_ms < SLOW_DISPATCH.as_secs_f64() * 1e3 {
        eprintln!(
            "FAIL: static placement dodged the slow replica ({static_ms:.3} ms) — \
             the experiment setup no longer exercises calibration"
        );
        std::process::exit(1);
    }
    if speedup < SPEEDUP_FLOOR {
        eprintln!("FAIL: calibrated planning only {speedup:.2}x faster (floor {SPEEDUP_FLOOR}x)");
        std::process::exit(1);
    }
}

/// A deterministic stream of synthetic profiles: every field is drawn
/// from a splitmix64 chain over the seed, so two runs with the same
/// seed fold the same observations in the same order.
fn synthetic_profiles(seed: u64, n: u64) -> Vec<QueryProfile> {
    let classes = ["select", "join", "groupby", "matmul"];
    let sites = ["slow", "fast", "rel", "la"];
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(1);
        splitmix64(state ^ seed.rotate_left(17))
    };
    (0..n)
        .map(|i| {
            let rows = 64 + next() % 4096;
            let class = classes[(next() % classes.len() as u64) as usize];
            let site = sites[(next() % sites.len() as u64) as usize];
            QueryProfile {
                trace_id: seed ^ i,
                tenant: String::new(),
                wall_ns: 1_000_000 + next() % 50_000_000,
                slow: false,
                ops: vec![OpProfile {
                    class: class.to_string(),
                    count: 1,
                    rows,
                    bytes: rows * 64,
                    wall_ns: rows * (500 + next() % 5_000),
                }],
                sites: vec![SiteProfile {
                    site: site.to_string(),
                    fragments: 1,
                    fragment_wall_ns: 100_000 + next() % 10_000_000,
                    transfer_bytes: next() % 1_000_000,
                    transfer_wall_ns: next() % 5_000_000,
                    retries: 0,
                    failovers: 0,
                }],
            }
        })
        .collect()
}

fn run_determinism(seed: u64, out: Option<&str>) {
    let book = CostBook::new(seed);
    for profile in synthetic_profiles(seed, 16) {
        book.observe(&profile);
    }
    let mut dump = book.render_json();
    // The plans-unchanged-when-off half of the guarantee: the explain
    // below never consults any cost book (calibrate is off), so its
    // text must also be byte-identical run to run.
    let (mut fed, plan) = replicated_federation(Duration::ZERO);
    fed.options_mut().calibrate = false;
    dump.push_str(&fed.explain(&plan).expect("explain"));
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &dump) {
                eprintln!("profiling_bench: writing {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote calibration dump ({} bytes) to {path}", dump.len());
        }
        None => print!("{dump}"),
    }
}

fn main() {
    let mut determinism: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--determinism" => {
                let raw = it.next().unwrap_or_default();
                match raw.parse() {
                    Ok(seed) => determinism = Some(seed),
                    Err(_) => {
                        eprintln!("profiling_bench: --determinism wants a seed, got `{raw}`");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => out = it.next(),
            other => {
                eprintln!(
                    "profiling_bench: unknown argument `{other}` \
                     (usage: profiling_bench [--determinism SEED] [--out FILE])"
                );
                std::process::exit(2);
            }
        }
    }
    match determinism {
        Some(seed) => run_determinism(seed, out.as_deref()),
        None => run_f10(out.as_deref().unwrap_or("BENCH_profiling.json")),
    }
}
