//! Export a Chrome-trace JSON file for the cross-engine join⋈matmul
//! plan: the CI observability job uploads it as an artifact so any PR's
//! execution timeline can be opened in `chrome://tracing` / Perfetto
//! without rerunning anything.
//!
//! ```text
//! cargo run -p bda-bench --bin trace_export -- out/trace.json
//! ```

use bda_bench::experiments::observed_federation;
use bda_obs::Tracer;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bda-trace.json".to_string());
    let (fed, plan) = observed_federation(64);
    let tracer = Tracer::new(bda_obs::trace_seed_from_env(0xBDA));
    let (_, metrics) = fed.run_traced(&plan, &tracer).expect("traced run");
    let trace = tracer.finish();
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out, trace.to_chrome_json()).expect("write trace file");
    println!(
        "trace {:#018x}: {} spans over {} sites -> {out}",
        trace.trace_id,
        trace.spans.len(),
        trace.sites().len()
    );
    println!("{metrics}");
}
