//! F11: statistics-driven skipping pays for itself on selective queries.
//!
//! One relational engine holds a ~1M-row table clustered into 256
//! chunks (chunk `c` holds keys `c*4096 .. (c+1)*4096`). A point query
//! on the key column runs three ways over identical data:
//!
//! - **off**: statistics disabled — every chunk is scanned.
//! - **zone**: zone maps on — chunks whose `[min, max]` cannot contain
//!   the key are skipped before any row is touched.
//! - **index**: zone maps plus a hash secondary index on the key —
//!   candidate rows come straight from the index.
//!
//! Zone-map skipping must come out at least 10x faster than stats-off
//! or the binary exits 1 (the CI gate for the ablation). Results land
//! in `BENCH_stats.json`.
//!
//! ```text
//! cargo run --release -p bda-bench --bin stats_bench
//! ```

use std::time::Instant;

use bda_core::{col, lit, Plan, Provider};
use bda_relational::RelationalEngine;
use bda_storage::{Column, DataSet, IndexKind};

const CHUNKS: usize = 256;
const CHUNK_ROWS: usize = 4096;
const REPS: usize = 9;
const SPEEDUP_FLOOR: f64 = 10.0;

fn median_of(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Build the clustered table: keys ascend chunk by chunk, so every
/// chunk's zone map covers a disjoint key range and a point predicate
/// can disprove all but one.
fn clustered_table() -> DataSet {
    let chunk = |c: usize| {
        let base = (c * CHUNK_ROWS) as i64;
        let keys: Vec<i64> = (0..CHUNK_ROWS as i64).map(|i| base + i).collect();
        let vals: Vec<f64> = keys.iter().map(|k| (*k % 97) as f64 * 0.5).collect();
        DataSet::from_columns(vec![("k", Column::from(keys)), ("v", Column::from(vals))]).unwrap()
    };
    let mut ds = chunk(0);
    for c in 1..CHUNKS {
        ds.push_chunk(chunk(c).chunks()[0].clone());
    }
    ds
}

fn timed(engine: &RelationalEngine, plan: &Plan) -> f64 {
    let mut times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let s = Instant::now();
        let out = engine.execute(plan).expect("selective query");
        times.push(s.elapsed().as_secs_f64());
        assert_eq!(out.num_rows(), 1, "point query must hit exactly one row");
    }
    median_of(times) * 1e3
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_stats.json".to_string());

    let engine = RelationalEngine::new("rel");
    let table = clustered_table();
    let rows = table.num_rows();
    engine.store("t", table).expect("store clustered table");

    // A key deep in the table: the stats-off scan pays for every chunk
    // before and after it.
    let target = ((CHUNKS / 2) * CHUNK_ROWS + 17) as i64;
    let plan = Plan::scan("t", engine.schema_of("t").unwrap()).select(col("k").eq(lit(target)));

    engine.set_stats_enabled(false);
    let off_ms = timed(&engine, &plan);

    engine.set_stats_enabled(true);
    let zone_ms = timed(&engine, &plan);

    engine
        .build_index("t", "k", IndexKind::Hash)
        .expect("build hash index");
    let index_ms = timed(&engine, &plan);

    let zone_speedup = off_ms / zone_ms;
    let index_speedup = off_ms / index_ms;

    println!("F11 stats bench (rows={rows}, chunks={CHUNKS}, {REPS} reps, median):");
    println!("  stats off:          {off_ms:>10.3} ms");
    println!("  zone maps:          {zone_ms:>10.3} ms  ({zone_speedup:.1}x)");
    println!("  zone + hash index:  {index_ms:>10.3} ms  ({index_speedup:.1}x)");
    println!("  floor:              {SPEEDUP_FLOOR}x");

    let json = format!(
        "{{\"experiment\":\"F11\",\"rows\":{rows},\"chunks\":{CHUNKS},\"reps\":{REPS},\
         \"off_ms\":{off_ms:.3},\"zone_ms\":{zone_ms:.3},\"index_ms\":{index_ms:.3},\
         \"zone_speedup\":{zone_speedup:.2},\"index_speedup\":{index_speedup:.2},\
         \"floor\":{SPEEDUP_FLOOR}}}\n"
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("stats_bench: writing {out}: {e}");
        std::process::exit(1);
    }
    println!("  wrote {out}");

    if zone_speedup < SPEEDUP_FLOOR {
        eprintln!(
            "FAIL: zone-map skipping speedup {zone_speedup:.2}x is under the \
             {SPEEDUP_FLOOR}x floor"
        );
        std::process::exit(1);
    }
    if index_speedup < zone_speedup * 0.5 {
        eprintln!(
            "FAIL: the index path ({index_ms:.3} ms) lost more than half the zone-map \
             win ({zone_ms:.3} ms) — index lowering has regressed"
        );
        std::process::exit(1);
    }
}
