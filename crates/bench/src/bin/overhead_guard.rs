//! The CI overhead guard: tracing must be off-by-default-cheap, and the
//! always-on flight recorder must ride inside the same budget.
//!
//! Runs the cross-engine join⋈matmul plan through six entry points —
//! the untraced `Federation::run` with the flight recorder silenced
//! (the true baseline), the same run with the recorder on (what every
//! production query pays for the crash flight recorder), the traced
//! path with a *disabled* tracer (the hook cost), a live tracer, the
//! untraced path with measured-cost calibration consulted by the
//! planner (the profiler feeding back into placement), and the
//! untraced path with tenant metering enabled (every query charging
//! the usage book) — interleaved round-robin so clock drift hits all
//! six equally, and compares medians.
//!
//! Exit 1 if the disabled-tracer path, the recorder-on path, the
//! calibrated-planning path, or the metering-on path exceeds the
//! recorder-off untraced baseline by more than `BDA_OBS_BUDGET_PCT`
//! percent (default 2) *and* the gap is above a small absolute noise
//! floor. The enabled-path overhead is reported for context but not
//! gated — recording spans is allowed to cost something; the hooks,
//! the recorder when nobody is looking, the planner's cost-book
//! lookups, and the meter's per-query charge are not.
//!
//! ```text
//! BDA_OBS_BUDGET_PCT=2 cargo run --release -p bda-bench --bin overhead_guard
//! ```

use bda_bench::experiments::observed_federation;
use bda_federation::ExecOptions;
use bda_obs::{flight, Tracer};
use std::time::Instant;

const N: usize = 128;
const WARMUP: usize = 3;
const REPS: usize = 21;
/// Gaps below this many seconds are indistinguishable from scheduler
/// noise at this workload size and never fail the guard.
const NOISE_FLOOR_S: f64 = 50e-6;

fn main() {
    let budget_pct: f64 = std::env::var("BDA_OBS_BUDGET_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);

    let (fed, plan) = observed_federation(N);
    let disabled = Tracer::disabled();
    // Metering is process-global too; hold it off except inside its own
    // variant so the baseline stays a true recorder-off, meter-off run.
    bda_obs::meter::set_enabled(false);
    // The recorder is a process-global; default it off so the baseline,
    // hook, and live-tracer variants measure *only* what they claim to,
    // and switch it on just for the recorder-on variant.
    flight::global().set_enabled(false);

    // The calibrated variant plans against the process-global cost
    // book; the traced warmup runs below seed it, so the lookups it
    // pays for are the real, populated-book ones.
    let calibrated = ExecOptions {
        calibrate: true,
        ..ExecOptions::default()
    };

    for _ in 0..WARMUP {
        fed.run(&plan).unwrap();
        fed.run_traced(&plan, &disabled).unwrap();
        fed.run_traced(&plan, &Tracer::new(7)).unwrap();
        fed.run_with(&plan, &calibrated).unwrap();
        bda_obs::meter::set_enabled(true);
        fed.run(&plan).unwrap();
        bda_obs::meter::set_enabled(false);
    }

    // Rotate which variant runs first each rep: allocator and cache
    // state left by the previous run otherwise bias whichever variant
    // holds a fixed slot in the round.
    let mut samples: [Vec<f64>; 6] = [
        Vec::with_capacity(REPS),
        Vec::with_capacity(REPS),
        Vec::with_capacity(REPS),
        Vec::with_capacity(REPS),
        Vec::with_capacity(REPS),
        Vec::with_capacity(REPS),
    ];
    for rep in 0..REPS {
        for k in 0..6 {
            let which = (rep + k) % 6;
            if which == 1 {
                flight::global().set_enabled(true);
            }
            if which == 5 {
                bda_obs::meter::set_enabled(true);
            }
            let s = Instant::now();
            match which {
                0 => drop(fed.run(&plan).unwrap()),
                1 => drop(fed.run(&plan).unwrap()),
                2 => drop(fed.run_traced(&plan, &disabled).unwrap()),
                3 => drop(fed.run_traced(&plan, &Tracer::new(7)).unwrap()),
                4 => drop(fed.run_with(&plan, &calibrated).unwrap()),
                _ => drop(fed.run(&plan).unwrap()),
            }
            samples[which].push(s.elapsed().as_secs_f64());
            if which == 1 {
                flight::global().set_enabled(false);
            }
            if which == 5 {
                bda_obs::meter::set_enabled(false);
            }
        }
    }
    let [mut t_untraced, mut t_recorder, mut t_hooks_off, mut t_traced, mut t_calibrated, mut t_metered] =
        samples;

    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let untraced = median(&mut t_untraced);
    let recorder = median(&mut t_recorder);
    let hooks_off = median(&mut t_hooks_off);
    let traced = median(&mut t_traced);
    let calibrated_med = median(&mut t_calibrated);
    let metered_med = median(&mut t_metered);
    let pct = |x: f64| (x - untraced) / untraced * 100.0;

    println!("overhead guard (n={N}, {REPS} interleaved reps, median):");
    println!("  untraced run():          {:>10.1} us", untraced * 1e6);
    println!(
        "  flight recorder on:      {:>10.1} us ({:+.2}%)",
        recorder * 1e6,
        pct(recorder)
    );
    println!(
        "  disabled-tracer hooks:   {:>10.1} us ({:+.2}%)",
        hooks_off * 1e6,
        pct(hooks_off)
    );
    println!(
        "  live tracer:             {:>10.1} us ({:+.2}%)",
        traced * 1e6,
        pct(traced)
    );
    println!(
        "  calibrated planning:     {:>10.1} us ({:+.2}%)",
        calibrated_med * 1e6,
        pct(calibrated_med)
    );
    println!(
        "  tenant metering on:      {:>10.1} us ({:+.2}%)",
        metered_med * 1e6,
        pct(metered_med)
    );

    // Trace completeness rides along: every transfer in the metrics has
    // a matching span (asserts inside f7 would duplicate the run here).
    let tracer = Tracer::new(7);
    let (_, m) = fed.run_traced(&plan, &tracer).unwrap();
    let trace = tracer.finish();
    let moved = trace.spans_named("transfer:").len() + trace.spans_named("reship:").len();
    if m.transfers.len() != moved || trace.dropped > 0 {
        eprintln!(
            "FAIL: trace incomplete — {} metrics transfers vs {moved} \
             transfer/reship spans ({} dropped)",
            m.transfers.len(),
            trace.dropped
        );
        std::process::exit(1);
    }
    println!(
        "  trace complete: {} transfers, {} spans, 0 dropped",
        m.transfers.len(),
        trace.spans.len()
    );

    // Gate on the *minimum* sample of each variant: the best-case run
    // is the least noisy estimate of true cost, and the gated paths are
    // identical code modulo the tracer's null check / the recorder's
    // enabled flag — any stable gap between minima is real overhead.
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let u_min = min(&t_untraced);
    let mut failed = false;
    for (label, variant_min) in [
        ("disabled-tracing hooks", min(&t_hooks_off)),
        ("always-on flight recorder", min(&t_recorder)),
        ("calibrated planning", min(&t_calibrated)),
        ("tenant metering", min(&t_metered)),
    ] {
        let gap = variant_min - u_min;
        let gap_pct = gap / u_min * 100.0;
        if gap_pct > budget_pct && gap > NOISE_FLOOR_S {
            eprintln!(
                "FAIL: {label} cost {gap_pct:+.2}% at the minimum \
                 (budget {budget_pct}%, gap {:.1} us)",
                gap * 1e6
            );
            failed = true;
        } else {
            println!("  {label} within budget ({budget_pct}%; min-to-min gap {gap_pct:+.2}%)");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
