//! The CI overhead guard: tracing must be off-by-default-cheap.
//!
//! Runs the cross-engine join⋈matmul plan through three entry points —
//! the untraced `Federation::run`, the traced path with a *disabled*
//! tracer (what every untraced production query now pays for the
//! hooks), and a live tracer — interleaved round-robin so clock drift
//! hits all three equally, and compares medians.
//!
//! Exit 1 if the disabled-tracer path exceeds the untraced baseline by
//! more than `BDA_OBS_BUDGET_PCT` percent (default 2) *and* the gap is
//! above a small absolute noise floor. The enabled-path overhead is
//! reported for context but not gated — recording spans is allowed to
//! cost something; the hooks when nobody is looking are not.
//!
//! ```text
//! BDA_OBS_BUDGET_PCT=2 cargo run --release -p bda-bench --bin overhead_guard
//! ```

use bda_bench::experiments::observed_federation;
use bda_obs::Tracer;
use std::time::Instant;

const N: usize = 128;
const WARMUP: usize = 3;
const REPS: usize = 21;
/// Gaps below this many seconds are indistinguishable from scheduler
/// noise at this workload size and never fail the guard.
const NOISE_FLOOR_S: f64 = 50e-6;

fn main() {
    let budget_pct: f64 = std::env::var("BDA_OBS_BUDGET_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);

    let (fed, plan) = observed_federation(N);
    let disabled = Tracer::disabled();

    for _ in 0..WARMUP {
        fed.run(&plan).unwrap();
        fed.run_traced(&plan, &disabled).unwrap();
        fed.run_traced(&plan, &Tracer::new(7)).unwrap();
    }

    // Rotate which variant runs first each rep: allocator and cache
    // state left by the previous run otherwise bias whichever variant
    // holds a fixed slot in the round.
    let mut samples: [Vec<f64>; 3] = [
        Vec::with_capacity(REPS),
        Vec::with_capacity(REPS),
        Vec::with_capacity(REPS),
    ];
    for rep in 0..REPS {
        for k in 0..3 {
            let which = (rep + k) % 3;
            let s = Instant::now();
            match which {
                0 => drop(fed.run(&plan).unwrap()),
                1 => drop(fed.run_traced(&plan, &disabled).unwrap()),
                _ => drop(fed.run_traced(&plan, &Tracer::new(7)).unwrap()),
            }
            samples[which].push(s.elapsed().as_secs_f64());
        }
    }
    let [mut t_untraced, mut t_hooks_off, mut t_traced] = samples;

    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let untraced = median(&mut t_untraced);
    let hooks_off = median(&mut t_hooks_off);
    let traced = median(&mut t_traced);
    let pct = |x: f64| (x - untraced) / untraced * 100.0;

    println!("overhead guard (n={N}, {REPS} interleaved reps, median):");
    println!("  untraced run():          {:>10.1} us", untraced * 1e6);
    println!(
        "  disabled-tracer hooks:   {:>10.1} us ({:+.2}%)",
        hooks_off * 1e6,
        pct(hooks_off)
    );
    println!(
        "  live tracer:             {:>10.1} us ({:+.2}%)",
        traced * 1e6,
        pct(traced)
    );

    // Trace completeness rides along: every transfer in the metrics has
    // a matching span (asserts inside f7 would duplicate the run here).
    let tracer = Tracer::new(7);
    let (_, m) = fed.run_traced(&plan, &tracer).unwrap();
    let trace = tracer.finish();
    let moved = trace.spans_named("transfer:").len() + trace.spans_named("reship:").len();
    if m.transfers.len() != moved || trace.dropped > 0 {
        eprintln!(
            "FAIL: trace incomplete — {} metrics transfers vs {moved} \
             transfer/reship spans ({} dropped)",
            m.transfers.len(),
            trace.dropped
        );
        std::process::exit(1);
    }
    println!(
        "  trace complete: {} transfers, {} spans, 0 dropped",
        m.transfers.len(),
        trace.spans.len()
    );

    // Gate on the *minimum* sample of each variant: the best-case run
    // is the least noisy estimate of true cost, and the two gated paths
    // are identical code modulo the tracer's null check — any stable
    // gap between their minima is real hook overhead.
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let (u_min, h_min) = (min(&t_untraced), min(&t_hooks_off));
    let gap = h_min - u_min;
    let gap_pct = gap / u_min * 100.0;
    if gap_pct > budget_pct && gap > NOISE_FLOOR_S {
        eprintln!(
            "FAIL: disabled-tracing hooks cost {gap_pct:+.2}% at the minimum \
             (budget {budget_pct}%, gap {:.1} us)",
            gap * 1e6
        );
        std::process::exit(1);
    }
    println!("  within budget ({budget_pct}%; min-to-min gap {gap_pct:+.2}%)");
}
