//! The experiment runner: regenerates every table/figure from DESIGN.md.
//!
//! ```text
//! cargo run -p bda-bench --release --bin experiments            # all
//! cargo run -p bda-bench --release --bin experiments -- f1 f4   # subset
//! cargo run -p bda-bench --release --bin experiments -- --quick # small sizes
//! ```

use bda_bench::experiments::*;
use bda_bench::setup::{standard_federation, FederationSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |id: &str| selected.is_empty() || selected.contains(&id);

    let spec = if quick {
        FederationSpec::tiny()
    } else {
        FederationSpec::default()
    };

    println!("bda experiment suite (paper: Maier, CIDR 2015 — desiderata)");
    println!("sizes: {}", if quick { "quick" } else { "full" });
    println!();

    if want("t1") || want("t2") {
        let fed = standard_federation(spec);
        if want("t1") {
            println!("{}", t1_coverage(&fed));
        }
        if want("t2") {
            println!("{}", t2_translatability(&fed));
        }
    }
    if want("t3") {
        println!("{}", t3_portability(spec));
    }
    if want("t4") {
        println!("{}", t4_dimension_awareness(spec));
    }
    if want("f1") {
        let sizes: &[usize] = if quick {
            &[16, 32]
        } else {
            &[32, 64, 128, 192]
        };
        println!("{}", f1_intent(sizes));
    }
    if want("f2") {
        let sizes: &[usize] = if quick { &[8, 16] } else { &[16, 32, 64, 128] };
        println!("{}", f2_interop(sizes));
    }
    if want("f3") {
        let ks: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8, 16] };
        let lats: &[f64] = if quick { &[1e-3] } else { &[1e-4, 1e-3, 1e-2] };
        println!("{}", f3_shipping(ks, lats));
    }
    if want("f4") {
        let sizes: &[usize] = if quick { &[30] } else { &[100, 300, 1000] };
        println!("{}", f4_iteration(sizes));
    }
    if want("f5") {
        let sels: &[f64] = if quick {
            &[0.1]
        } else {
            &[0.01, 0.1, 0.5, 1.0]
        };
        println!("{}", f5_pushdown(sels));
    }
    if want("f6") {
        let sizes: &[usize] = if quick { &[8] } else { &[8, 16, 32] };
        println!("{}", f6_fault_recovery(sizes));
    }
    if want("f7") {
        let sizes: &[usize] = if quick { &[8, 16] } else { &[16, 64, 128] };
        let reps = if quick { 3 } else { 11 };
        println!("{}", f7_observability(sizes, reps));
    }
    if want("f8") {
        let n = if quick { 16 } else { 48 };
        let reps = if quick { 3 } else { 7 };
        println!("{}", f8_scaling(&[1, 2, 4], n, reps));
    }
}
