//! F9 — the price of durability (EXPERIMENTS.md).
//!
//! Measures what the write-ahead log costs on the ingest path and what
//! it buys at boot:
//!
//! * **Ingest throughput** through the same `Provider::store` call
//!   under three configurations — no durability (the pre-WAL baseline),
//!   WAL with `--fsync never` (page-cache durability: survives process
//!   kill), and WAL with `--fsync always` (survives power loss).
//! * **Cold-start replay time** — reopening the fsynced directory and
//!   replaying the full WAL, then again after a snapshot compacts the
//!   log (recovery reads the snapshot plus an empty tail).
//!
//! ```text
//! cargo run --release -p bda-bench --bin durability_bench [-- out.json]
//! ```

use std::sync::Arc;
use std::time::Instant;

use bda_core::{Provider, ReferenceProvider};
use bda_durability::{DurableProvider, FsyncPolicy, Options};
use bda_storage::{Column, DataSet};

/// Datasets ingested per configuration.
const DATASETS: usize = 192;
/// Rows per dataset (one i64 + one f64 column ≈ 16 bytes/row).
const ROWS: usize = 4096;

fn dataset(i: usize) -> DataSet {
    let base = i as i64;
    DataSet::from_columns(vec![
        (
            "k",
            Column::from((0..ROWS as i64).map(|r| base + r).collect::<Vec<i64>>()),
        ),
        (
            "v",
            Column::from((0..ROWS).map(|r| r as f64 * 0.5).collect::<Vec<f64>>()),
        ),
    ])
    .unwrap()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bda-f9-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Phase {
    name: &'static str,
    elapsed_s: f64,
    stores_per_s: f64,
    mib_per_s: f64,
}

/// Ingest [`DATASETS`] through `provider`, returning the phase record.
fn ingest(name: &'static str, provider: &dyn Provider, payload_bytes: f64) -> Phase {
    let start = Instant::now();
    for i in 0..DATASETS {
        provider.store(&format!("t{i}"), dataset(i)).unwrap();
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    Phase {
        name,
        elapsed_s,
        stores_per_s: DATASETS as f64 / elapsed_s,
        mib_per_s: payload_bytes * DATASETS as f64 / elapsed_s / (1 << 20) as f64,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_durability.json".to_string());
    let payload_bytes = bda_storage::wire::encode_dataset(&dataset(0)).len() as f64;

    // Baseline: the raw engine, no durability layer at all.
    let baseline = ingest("off", &ReferenceProvider::new("ref"), payload_bytes);

    // WAL without fsync: every store is logged, the OS flushes at will.
    let nofsync_dir = tmp_dir("nofsync");
    let nofsync = {
        let inner: Arc<dyn Provider> = Arc::new(ReferenceProvider::new("ref"));
        let opts = Options::new(&nofsync_dir).with_fsync(FsyncPolicy::Never);
        let p = DurableProvider::open(inner, opts).unwrap();
        ingest("wal_no_fsync", &p, payload_bytes)
    };

    // WAL with fsync-per-append: the full power-loss-safe configuration.
    let fsync_dir = tmp_dir("fsync");
    let fsync = {
        let inner: Arc<dyn Provider> = Arc::new(ReferenceProvider::new("ref"));
        let opts = Options::new(&fsync_dir).with_fsync(FsyncPolicy::Always);
        let p = DurableProvider::open(inner, opts).unwrap();
        ingest("wal_fsync", &p, payload_bytes)
    };

    // Cold start 1: replay the full WAL the fsync run left behind.
    let start = Instant::now();
    let replayed = {
        let inner: Arc<dyn Provider> = Arc::new(ReferenceProvider::new("ref"));
        DurableProvider::open(inner, Options::new(&fsync_dir)).unwrap()
    };
    let replay_wal_s = start.elapsed().as_secs_f64();
    let wal_records = replayed.report().wal_records_replayed;
    assert_eq!(replayed.report().datasets.len(), DATASETS);

    // Cold start 2: snapshot, then recovery reads it plus an empty tail.
    replayed.snapshot_now().unwrap();
    drop(replayed);
    let start = Instant::now();
    let from_snap = {
        let inner: Arc<dyn Provider> = Arc::new(ReferenceProvider::new("ref"));
        DurableProvider::open(inner, Options::new(&fsync_dir)).unwrap()
    };
    let replay_snapshot_s = start.elapsed().as_secs_f64();
    assert_eq!(from_snap.report().datasets.len(), DATASETS);
    assert_eq!(from_snap.report().wal_records_replayed, 0);
    drop(from_snap);

    let phases = [&baseline, &nofsync, &fsync];
    println!(
        "F9: {} datasets x {} rows ({:.0} KiB payload each)",
        DATASETS,
        ROWS,
        payload_bytes / 1024.0
    );
    for p in phases {
        println!(
            "  ingest {:<14} {:>8.3} s  {:>9.0} stores/s  {:>8.1} MiB/s",
            p.name, p.elapsed_s, p.stores_per_s, p.mib_per_s
        );
    }
    println!(
        "  cold start: wal replay ({wal_records} records) {:.3} s; from snapshot {:.3} s",
        replay_wal_s, replay_snapshot_s
    );

    let mut json = String::from("{\n  \"bench\": \"durability-ingest (F9)\",\n");
    json.push_str(&format!(
        "  \"datasets\": {DATASETS}, \"rows_per_dataset\": {ROWS}, \"payload_bytes\": {payload_bytes},\n"
    ));
    json.push_str("  \"ingest\": {\n");
    for (i, p) in phases.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"elapsed_s\": {:.4}, \"stores_per_s\": {:.0}, \"mib_per_s\": {:.1}}}{}\n",
            p.name,
            p.elapsed_s,
            p.stores_per_s,
            p.mib_per_s,
            if i + 1 < phases.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"cold_start\": {{\"wal_records\": {wal_records}, \"replay_wal_s\": {replay_wal_s:.4}, \"replay_snapshot_s\": {replay_snapshot_s:.4}}}\n}}\n"
    ));
    std::fs::write(&out_path, json).unwrap();
    println!("wrote {out_path}");

    let _ = std::fs::remove_dir_all(&nofsync_dir);
    let _ = std::fs::remove_dir_all(&fsync_dir);
}
