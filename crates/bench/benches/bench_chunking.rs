//! Chunking ablation: dice over a grid-stored array (box pruning) vs a
//! monolithic dense box, as the diced fraction of the array shrinks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bda_array::ArrayEngine;
use bda_core::{Plan, Provider};
use bda_workloads::random_matrix;

fn bench_chunking(c: &mut Criterion) {
    let mut group = c.benchmark_group("array_chunk_pruning");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let n = 256usize;
    let m = random_matrix(n, n, 5);
    let chunked = ArrayEngine::with_chunking("chunked", 32);
    chunked.store("m", m.clone()).unwrap();
    let mono = ArrayEngine::new("mono");
    mono.store("m", m.clone()).unwrap();

    for target in [8i64, 32, 128] {
        let plan = Plan::Dice {
            input: Plan::scan("m", m.schema().clone()).boxed(),
            ranges: vec![("row".into(), 0, target), ("col".into(), 0, target)],
        };
        group.bench_with_input(BenchmarkId::new("grid_pruned", target), &target, |b, _| {
            b.iter(|| chunked.execute(&plan).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("monolithic", target), &target, |b, _| {
            b.iter(|| mono.execute(&plan).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chunking);
criterion_main!(benches);
