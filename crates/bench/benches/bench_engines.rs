//! T3-adjacent microbenchmarks: the same operators on different engines
//! (hash vs merge join, dense vs lowered window, engine vs reference).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bda_core::infer::infer_schema;
use bda_core::lower::lower_all;
use bda_core::reference::evaluate;
use bda_core::{col, AggExpr, AggFunc, JoinType, Plan, Provider};
use bda_relational::join::{hash_join, merge_join};
use bda_relational::RelationalEngine;
use bda_workloads::{sensor_array, star_schema, SensorSpec, StarSpec};

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_algorithms");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [1_000usize, 10_000] {
        let (sales, customers, ..) = star_schema(StarSpec {
            sales: n,
            customers: n / 10,
            ..StarSpec::default()
        });
        let plan = Plan::scan("s", sales.schema().clone()).join(
            Plan::scan("c", customers.schema().clone()),
            vec![("customer_id", "customer_id")],
        );
        let out_schema = infer_schema(&plan).unwrap();
        let on = [("customer_id".to_string(), "customer_id".to_string())];
        group.bench_with_input(BenchmarkId::new("hash_join", n), &n, |b, _| {
            b.iter(|| {
                hash_join(&sales, &customers, &on, JoinType::Inner, out_schema.clone()).unwrap()
            })
        });
        let single = on[0].clone();
        group.bench_with_input(BenchmarkId::new("merge_join", n), &n, |b, _| {
            b.iter(|| merge_join(&sales, &customers, &single, out_schema.clone()).unwrap())
        });
    }
    group.finish();
}

fn bench_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_dense_vs_lowered");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for ticks in [64usize, 256] {
        let ds = sensor_array(SensorSpec {
            sensors: 8,
            ticks,
            missing: 0.0,
            seed: 42,
        });
        let arr = bda_array::ArrayEngine::new("arr");
        arr.store("sensors", ds.clone()).unwrap();
        let rel = RelationalEngine::new("rel");
        rel.store("sensors", ds.clone()).unwrap();
        let plan = Plan::Window {
            input: Plan::scan("sensors", ds.schema().clone()).boxed(),
            radii: vec![("sensor".into(), 0), ("t".into(), 2)],
            aggs: vec![AggExpr::new(AggFunc::Avg, col("reading"), "smooth")],
        };
        let lowered = lower_all(&plan).unwrap();
        group.bench_with_input(
            BenchmarkId::new("array_engine_dense", ticks),
            &ticks,
            |b, _| b.iter(|| arr.execute(&plan).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("relational_lowered", ticks),
            &ticks,
            |b, _| b.iter(|| rel.execute(&lowered).unwrap()),
        );
    }
    group.finish();
}

fn bench_engine_vs_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_vs_reference_oracle");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let (sales, ..) = star_schema(StarSpec {
        sales: 5_000,
        ..StarSpec::default()
    });
    let rel = RelationalEngine::new("rel");
    rel.store("sales", sales.clone()).unwrap();
    let plan = Plan::scan("sales", sales.schema().clone()).aggregate(
        vec!["store_id"],
        vec![
            AggExpr::new(AggFunc::Sum, col("amount"), "total"),
            AggExpr::count_star("n"),
        ],
    );
    group.bench_function("relational_engine", |b| {
        b.iter(|| rel.execute(&plan).unwrap())
    });
    let mut src = std::collections::HashMap::new();
    src.insert("sales".to_string(), sales);
    group.bench_function("reference_oracle", |b| {
        b.iter(|| evaluate(&plan, &src).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_joins,
    bench_window,
    bench_engine_vs_reference
);
criterion_main!(benches);
