//! F2 bench: direct server-to-server transfer vs app-routed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

use bda_core::{Plan, Provider};
use bda_federation::{ExecOptions, Federation, TransferMode};
use bda_linalg::LinAlgEngine;
use bda_relational::RelationalEngine;
use bda_workloads::random_matrix;

fn build(n: usize) -> (Federation, Plan) {
    let rel = RelationalEngine::new("rel");
    rel.store("a_rows", random_matrix(n, n, 7).normalized_rows().unwrap())
        .unwrap();
    let la = LinAlgEngine::new("la");
    la.store("b", random_matrix(n, n, 8)).unwrap();
    let mut fed = Federation::new();
    fed.register(Arc::new(rel));
    fed.register(Arc::new(la));
    let plan =
        Plan::scan("a_rows", fed.registry().schema_of("a_rows").unwrap()).matmul(Plan::scan(
            "b",
            fed.registry()
                .provider("la")
                .unwrap()
                .schema_of("b")
                .unwrap(),
        ));
    (fed, plan)
}

fn bench_interop(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_server_interoperation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [16usize, 48] {
        let (fed, plan) = build(n);
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| fed.run(&plan).unwrap())
        });
        let routed = ExecOptions {
            transfer: TransferMode::AppRouted,
            ..ExecOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("app_routed", n), &n, |b, _| {
            b.iter(|| fed.run_with(&plan, &routed).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interop);
criterion_main!(benches);
