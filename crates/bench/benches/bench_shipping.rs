//! F3 bench: one shipped expression tree vs one RPC per operator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

use bda_core::{col, lit, Plan, Provider};
use bda_federation::{Cluster, NetConfig};
use bda_relational::RelationalEngine;
use bda_workloads::{star_schema, StarSpec};

fn cluster() -> (Cluster, bda_storage::Schema) {
    let rel = RelationalEngine::new("rel");
    let (sales, ..) = star_schema(StarSpec {
        sales: 2_000,
        ..StarSpec::default()
    });
    let schema = sales.schema().clone();
    rel.store("sales", sales).unwrap();
    (
        Cluster::spawn(vec![Arc::new(rel)], NetConfig::default()).unwrap(),
        schema,
    )
}

fn pipeline(schema: &bda_storage::Schema, k: usize) -> Plan {
    let mut p = Plan::scan("sales", schema.clone());
    for i in 0..k.saturating_sub(1) {
        p = p.select(col("amount").gt(lit(-(i as f64))));
    }
    p
}

fn bench_shipping(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_expression_shipping");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let (cluster, schema) = cluster();
    for k in [2usize, 8, 16] {
        let plan = pipeline(&schema, k);
        group.bench_with_input(BenchmarkId::new("ship_tree", k), &k, |b, _| {
            b.iter(|| cluster.ship_tree("rel", &plan).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("per_operator", k), &k, |b, _| {
            b.iter(|| cluster.per_operator("rel", &plan).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shipping);
criterion_main!(benches);
