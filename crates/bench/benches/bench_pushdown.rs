//! F5 bench: optimizer on vs off on a selective cross-server join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

use bda_core::{col, lit, AggExpr, AggFunc, Plan, Provider};
use bda_federation::{ExecOptions, Federation, OptimizerConfig};
use bda_relational::RelationalEngine;
use bda_workloads::{star_schema, StarSpec};

fn build() -> (Federation, Plan) {
    let spec = StarSpec {
        sales: 10_000,
        customers: 2_000,
        ..StarSpec::default()
    };
    let (sales, customers, ..) = star_schema(spec);
    let rel1 = RelationalEngine::new("rel1");
    rel1.store("sales", sales).unwrap();
    let rel2 = RelationalEngine::new("rel2");
    rel2.store("customers", customers).unwrap();
    let mut fed = Federation::new();
    fed.register(Arc::new(rel1));
    fed.register(Arc::new(rel2));
    let plan = Plan::scan("sales", fed.registry().schema_of("sales").unwrap())
        .join(
            Plan::scan("customers", fed.registry().schema_of("customers").unwrap()),
            vec![("customer_id", "customer_id")],
        )
        .select(col("customer_id_r").lt(lit(200i64)))
        .aggregate(
            vec!["region"],
            vec![AggExpr::new(AggFunc::Sum, col("amount"), "total")],
        );
    (fed, plan)
}

fn bench_pushdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("f5_pushdown_ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let (fed, plan) = build();
    group.bench_with_input(BenchmarkId::new("optimizer", "on"), &(), |b, _| {
        b.iter(|| fed.run(&plan).unwrap())
    });
    let naive = ExecOptions {
        optimizer: OptimizerConfig::disabled(),
        ..ExecOptions::default()
    };
    group.bench_with_input(BenchmarkId::new("optimizer", "off"), &(), |b, _| {
        b.iter(|| fed.run_with(&plan, &naive).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pushdown);
criterion_main!(benches);
