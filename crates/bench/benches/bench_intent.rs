//! F1 bench: native intent matmul vs lowered join/aggregate execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

use bda_core::lower::lower_all;
use bda_core::{Plan, Provider};
use bda_federation::{ExecOptions, Federation, OptimizerConfig};
use bda_linalg::LinAlgEngine;
use bda_relational::RelationalEngine;
use bda_workloads::random_matrix;

fn build(n: usize) -> (Federation, Plan, Plan) {
    let la = LinAlgEngine::new("la");
    la.store("a", random_matrix(n, n, 7)).unwrap();
    la.store("b", random_matrix(n, n, 8)).unwrap();
    let rel = RelationalEngine::new("rel");
    rel.store("a", random_matrix(n, n, 7).normalized_rows().unwrap())
        .unwrap();
    rel.store("b", random_matrix(n, n, 8).normalized_rows().unwrap())
        .unwrap();
    let mut fed = Federation::new();
    fed.register(Arc::new(la));
    fed.register(Arc::new(rel));
    let schema_a = fed
        .registry()
        .provider("la")
        .unwrap()
        .schema_of("a")
        .unwrap();
    let schema_b = fed
        .registry()
        .provider("la")
        .unwrap()
        .schema_of("b")
        .unwrap();
    let intent = Plan::scan("a", schema_a).matmul(Plan::scan("b", schema_b));
    let lowered = lower_all(&intent).unwrap();
    (fed, intent, lowered)
}

fn bench_intent(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_intent_preservation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [16usize, 32, 64] {
        let (fed, intent, lowered) = build(n);
        group.bench_with_input(BenchmarkId::new("native_intent_la", n), &n, |b, _| {
            b.iter(|| fed.run(&intent).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lowered_recognized_la", n), &n, |b, _| {
            b.iter(|| fed.run(&lowered).unwrap())
        });
        let no_recog = ExecOptions {
            optimizer: OptimizerConfig {
                recognize_intents: false,
                ..OptimizerConfig::default()
            },
            ..ExecOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("lowered_join_agg_rel", n), &n, |b, _| {
            b.iter(|| fed.run_with(&lowered, &no_recog).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intent);
criterion_main!(benches);
