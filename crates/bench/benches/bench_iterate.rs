//! F4 bench: PageRank with the loop on the server vs driven by the app.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bda_bench::setup::{masked_registry, standard_federation, subset_registry, FederationSpec};
use bda_core::{GraphOp, OpKind, Plan};
use bda_federation::{run_plan, ExecOptions, Registry};
use bda_workloads::GraphSpec;

fn pagerank_plan(reg: &Registry) -> Plan {
    let edges_schema = reg.schema_of("edges").unwrap();
    Plan::Graph(GraphOp::PageRank {
        edges: Plan::scan("edges", edges_schema).boxed(),
        damping: 0.85,
        max_iters: 30,
        epsilon: 1e-8,
    })
}

fn bench_iterate(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_control_iteration");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for v in [50usize, 200] {
        let spec = FederationSpec {
            graph: GraphSpec {
                vertices: v,
                edges: v * 4,
                seed: 42,
            },
            ..FederationSpec::tiny()
        };
        let fed = standard_federation(spec);
        let opts = ExecOptions::default();

        let plan = pagerank_plan(fed.registry());
        group.bench_with_input(BenchmarkId::new("native_graph_engine", v), &v, |b, _| {
            b.iter(|| fed.run(&plan).unwrap())
        });

        let rel_only = subset_registry(&fed, &["rel"]);
        group.bench_with_input(
            BenchmarkId::new("lowered_server_side_loop", v),
            &v,
            |b, _| b.iter(|| run_plan(&rel_only, &plan, &opts).unwrap()),
        );

        let masked = masked_registry(&fed, "rel", vec![OpKind::Iterate]);
        let client: Registry = {
            let mut out = Registry::new();
            for p in masked.providers() {
                if p.name() == "rel" {
                    out.register(p.clone());
                }
            }
            out
        };
        group.bench_with_input(BenchmarkId::new("client_driven_loop", v), &v, |b, _| {
            b.iter(|| run_plan(&client, &plan, &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_iterate);
criterion_main!(benches);
