//! Expression-tree shipping vs per-operator round trips over **real
//! loopback TCP** — the wall-clock companion to the simulated F3
//! experiment in `bench_shipping`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

use bda_core::infer::infer_schema;
use bda_core::{col, lit, Plan, Provider};
use bda_net::{serve, RemoteProvider, Request, ServerHandle};
use bda_relational::RelationalEngine;
use bda_workloads::{star_schema, StarSpec};

fn server() -> (ServerHandle, RemoteProvider, bda_storage::Schema) {
    let rel = RelationalEngine::new("rel");
    let (sales, ..) = star_schema(StarSpec {
        sales: 2_000,
        ..StarSpec::default()
    });
    let schema = sales.schema().clone();
    rel.store("sales", sales).unwrap();
    let handle = serve(Arc::new(rel), "127.0.0.1:0").unwrap();
    let remote = RemoteProvider::connect(handle.addr().to_string()).unwrap();
    (handle, remote, schema)
}

fn pipeline(schema: &bda_storage::Schema, k: usize) -> Plan {
    let mut p = Plan::scan("sales", schema.clone());
    for i in 0..k.saturating_sub(1) {
        p = p.select(col("amount").gt(lit(-(i as f64))));
    }
    p
}

/// One TCP request per operator: children materialize server-side under
/// temp names, then one final fetch — the cursor/RPC style.
fn per_operator(remote: &RemoteProvider, plan: &Plan) -> bda_storage::DataSet {
    fn rec(remote: &RemoteProvider, plan: &Plan, counter: &mut usize) -> String {
        if let Plan::Scan { dataset, .. } = plan {
            return dataset.clone();
        }
        let mut children = Vec::new();
        for c in plan.children() {
            let name = rec(remote, c, counter);
            let schema = infer_schema(c).unwrap();
            children.push(Plan::Scan {
                dataset: name,
                schema,
            });
        }
        let single = plan.with_children(children);
        let name = format!("__bda_tmp_{counter}");
        *counter += 1;
        remote
            .request(&Request::ExecuteStore {
                name: name.clone(),
                plan: single,
            })
            .unwrap();
        name
    }
    let mut counter = 0;
    let final_name = rec(remote, plan, &mut counter);
    let out = remote
        .execute(&Plan::Scan {
            dataset: final_name,
            schema: infer_schema(plan).unwrap(),
        })
        .unwrap();
    for i in 0..counter {
        remote.remove(&format!("__bda_tmp_{i}"));
    }
    out
}

fn bench_remote(c: &mut Criterion) {
    let mut group = c.benchmark_group("remote_tcp_shipping");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let (_handle, remote, schema) = server();
    for k in [2usize, 8, 16] {
        let plan = pipeline(&schema, k);
        group.bench_with_input(BenchmarkId::new("ship_tree_tcp", k), &k, |b, _| {
            b.iter(|| remote.execute(&plan).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("per_operator_tcp", k), &k, |b, _| {
            b.iter(|| per_operator(&remote, &plan))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_remote);
criterion_main!(benches);
