//! Join algorithms: hash join (default) and sort-merge join (kept for the
//! ablation benchmark — both satisfy the same contract).

use std::collections::HashMap;

use bda_core::{CoreError, JoinType};
#[cfg(test)]
use bda_storage::Value;
use bda_storage::{Chunk, Column, DataSet, Row, RowsChunk, Schema};

use crate::exec::Result;

/// Extract the key row at `i` from the given key columns, or `None` if any
/// key is null (null-rejecting join equality).
fn key_at(cols: &[&Column], i: usize) -> Option<Row> {
    let mut vals = Vec::with_capacity(cols.len());
    for c in cols {
        let v = c.get(i);
        if v.is_null() {
            return None;
        }
        // Normalize numeric keys to float bits via grouping hash: Value's
        // Hash/Eq already unify Int/Float, so store as-is.
        vals.push(v);
    }
    Some(Row(vals))
}

/// Hash equi-join. Builds on the right input, probes with the left.
/// With an empty `on` list this degrades to a cross join.
pub fn hash_join(
    left: &DataSet,
    right: &DataSet,
    on: &[(String, String)],
    join_type: JoinType,
    out_schema: Schema,
) -> Result<DataSet> {
    let ls = left.schema().clone();
    let rs = right.schema().clone();
    let l_chunk = left.to_rows_chunk()?;
    let r_chunk = right.to_rows_chunk()?;
    let l_cols: Vec<&Column> = on
        .iter()
        .map(|(a, _)| Ok(l_chunk.column(ls.index_of(a)?)))
        .collect::<std::result::Result<_, bda_storage::StorageError>>()?;
    let r_cols: Vec<&Column> = on
        .iter()
        .map(|(_, b)| Ok(r_chunk.column(rs.index_of(b)?)))
        .collect::<std::result::Result<_, bda_storage::StorageError>>()?;

    // Statistics-driven build-side choice (inner joins only): the hash
    // table is the expensive part, so build it on the smaller input and
    // probe with the larger. Pairs are re-sorted into the canonical
    // left-major order afterwards, so the result is byte-identical to
    // the build-on-right path — bag *and* order.
    if join_type == JoinType::Inner && !on.is_empty() && l_chunk.len() < r_chunk.len() {
        let mut table: HashMap<Row, Vec<usize>> = HashMap::new();
        for i in 0..l_chunk.len() {
            if let Some(k) = key_at(&l_cols, i) {
                table.entry(k).or_default().push(i);
            }
        }
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for j in 0..r_chunk.len() {
            if let Some(idxs) = key_at(&r_cols, j).and_then(|k| table.get(&k)) {
                for &i in idxs {
                    pairs.push((i, j));
                }
            }
        }
        pairs.sort_unstable();
        let (l_take, r_take) = pairs.into_iter().unzip();
        return assemble(
            &l_chunk,
            &r_chunk,
            &rs,
            join_type,
            out_schema,
            l_take,
            r_take,
            Vec::new(),
        );
    }

    // Build side: right.
    let mut table: HashMap<Row, Vec<usize>> = HashMap::new();
    if on.is_empty() {
        // Cross join: every right row under the unit key.
        table.insert(Row::new(), (0..r_chunk.len()).collect());
    } else {
        for i in 0..r_chunk.len() {
            if let Some(k) = key_at(&r_cols, i) {
                table.entry(k).or_default().push(i);
            }
        }
    }

    let mut l_take: Vec<usize> = Vec::new();
    let mut r_take: Vec<usize> = Vec::new(); // parallel to l_take (inner/left matches)
    let mut l_unmatched: Vec<usize> = Vec::new();
    let empty_key = Row::new();
    for i in 0..l_chunk.len() {
        let key = if on.is_empty() {
            Some(empty_key.clone())
        } else {
            key_at(&l_cols, i)
        };
        let matches = key.as_ref().and_then(|k| table.get(k));
        match join_type {
            JoinType::Inner | JoinType::Left => match matches {
                Some(idxs) if !idxs.is_empty() => {
                    for &j in idxs {
                        l_take.push(i);
                        r_take.push(j);
                    }
                }
                _ => {
                    if join_type == JoinType::Left {
                        l_unmatched.push(i);
                    }
                }
            },
            JoinType::Semi => {
                if matches.map(|m| !m.is_empty()).unwrap_or(false) {
                    l_take.push(i);
                }
            }
            JoinType::Anti => {
                if !matches.map(|m| !m.is_empty()).unwrap_or(false) {
                    l_take.push(i);
                }
            }
        }
    }

    assemble(
        &l_chunk,
        &r_chunk,
        &rs,
        join_type,
        out_schema,
        l_take,
        r_take,
        l_unmatched,
    )
}

/// Sort-merge equi-join on a single key pair (inner only). Exists to let
/// the ablation benchmark compare join algorithms; results are identical
/// to [`hash_join`].
pub fn merge_join(
    left: &DataSet,
    right: &DataSet,
    on: &(String, String),
    out_schema: Schema,
) -> Result<DataSet> {
    let ls = left.schema().clone();
    let rs = right.schema().clone();
    let l_chunk = left.to_rows_chunk()?;
    let r_chunk = right.to_rows_chunk()?;
    let lk = l_chunk.column(ls.index_of(&on.0)?);
    let rk = r_chunk.column(rs.index_of(&on.1)?);

    // Sort row indices by key, nulls dropped (null-rejecting equality).
    let mut li: Vec<usize> = (0..l_chunk.len()).filter(|&i| lk.is_valid(i)).collect();
    let mut ri: Vec<usize> = (0..r_chunk.len()).filter(|&i| rk.is_valid(i)).collect();
    li.sort_by(|&a, &b| lk.get(a).total_cmp(&lk.get(b)));
    ri.sort_by(|&a, &b| rk.get(a).total_cmp(&rk.get(b)));

    let mut l_take = Vec::new();
    let mut r_take = Vec::new();
    let (mut x, mut y) = (0usize, 0usize);
    while x < li.len() && y < ri.len() {
        let ord = lk.get(li[x]).total_cmp(&rk.get(ri[y]));
        match ord {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                // Find the equal runs on both sides, emit the product.
                let key = lk.get(li[x]);
                let x_end = (x..li.len())
                    .find(|&i| lk.get(li[i]).total_cmp(&key) != std::cmp::Ordering::Equal)
                    .unwrap_or(li.len());
                let y_end = (y..ri.len())
                    .find(|&i| rk.get(ri[i]).total_cmp(&key) != std::cmp::Ordering::Equal)
                    .unwrap_or(ri.len());
                for &a in &li[x..x_end] {
                    for &b in &ri[y..y_end] {
                        l_take.push(a);
                        r_take.push(b);
                    }
                }
                x = x_end;
                y = y_end;
            }
        }
    }
    assemble(
        &l_chunk,
        &r_chunk,
        &rs,
        JoinType::Inner,
        out_schema,
        l_take,
        r_take,
        Vec::new(),
    )
}

/// Build the output chunk from gather lists.
#[allow(clippy::too_many_arguments)]
fn assemble(
    l_chunk: &RowsChunk,
    r_chunk: &RowsChunk,
    rs: &Schema,
    join_type: JoinType,
    out_schema: Schema,
    l_take: Vec<usize>,
    r_take: Vec<usize>,
    l_unmatched: Vec<usize>,
) -> Result<DataSet> {
    let mut cols: Vec<Column> = Vec::with_capacity(out_schema.len());
    match join_type {
        JoinType::Semi | JoinType::Anti => {
            for c in l_chunk.columns() {
                cols.push(c.take(&l_take));
            }
        }
        JoinType::Inner => {
            for c in l_chunk.columns() {
                cols.push(c.take(&l_take));
            }
            for c in r_chunk.columns() {
                cols.push(c.take(&r_take));
            }
        }
        JoinType::Left => {
            // Matched pairs first, then unmatched left rows null-padded.
            for c in l_chunk.columns() {
                let mut out = c.take(&l_take);
                out.extend(&c.take(&l_unmatched)).map_err(CoreError::from)?;
                cols.push(out);
            }
            for (fi, c) in r_chunk.columns().iter().enumerate() {
                let mut out = c.take(&r_take);
                let nulls = Column::nulls(rs.field_at(fi).dtype, l_unmatched.len());
                out.extend(&nulls).map_err(CoreError::from)?;
                cols.push(out);
            }
        }
    }
    let chunk = RowsChunk::new(cols).map_err(CoreError::from)?;
    Ok(DataSet::new(out_schema, vec![Chunk::Rows(chunk)]))
}

/// Pick representative key values for test assertions.
#[cfg(test)]
fn keys(ds: &DataSet, col_idx: usize) -> Vec<Value> {
    ds.sorted_rows()
        .unwrap()
        .iter()
        .map(|r| r.get(col_idx).clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::infer_schema;
    use bda_core::Plan;
    use bda_storage::Column;

    fn left() -> DataSet {
        DataSet::from_columns(vec![
            ("k", Column::from(vec![1i64, 2, 2, 5])),
            ("l", Column::from(vec!["a", "b", "c", "d"])),
        ])
        .unwrap()
    }

    fn right() -> DataSet {
        let mut ds = DataSet::from_columns(vec![
            ("k", Column::from(vec![2i64, 2, 3])),
            ("r", Column::from(vec![10i64, 20, 30])),
        ])
        .unwrap();
        // Add a null-keyed row (must never match).
        let extra = DataSet::from_rows(
            ds.schema().clone(),
            &[Row(vec![Value::Null, Value::Int(99)])],
        )
        .unwrap();
        ds.push_chunk(extra.chunks()[0].clone());
        ds
    }

    fn out_schema(jt: JoinType) -> Schema {
        let plan = Plan::scan("l", left().schema().clone()).join_as(
            Plan::scan("r", right().schema().clone()),
            vec![("k", "k")],
            jt,
        );
        infer_schema(&plan).unwrap()
    }

    #[test]
    fn inner_join_multiplicity() {
        let out = hash_join(
            &left(),
            &right(),
            &[("k".into(), "k".into())],
            JoinType::Inner,
            out_schema(JoinType::Inner),
        )
        .unwrap();
        // k=2 on the left matches two right rows, twice.
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn left_join_pads_nulls() {
        let out = hash_join(
            &left(),
            &right(),
            &[("k".into(), "k".into())],
            JoinType::Left,
            out_schema(JoinType::Left),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 6); // 4 matches + rows k=1 and k=5
        let rows = out.sorted_rows().unwrap();
        let padded: Vec<&Row> = rows.iter().filter(|r| r.get(2).is_null()).collect();
        assert_eq!(padded.len(), 2);
    }

    #[test]
    fn semi_and_anti_partition_left() {
        let semi = hash_join(
            &left(),
            &right(),
            &[("k".into(), "k".into())],
            JoinType::Semi,
            out_schema(JoinType::Semi),
        )
        .unwrap();
        let anti = hash_join(
            &left(),
            &right(),
            &[("k".into(), "k".into())],
            JoinType::Anti,
            out_schema(JoinType::Anti),
        )
        .unwrap();
        assert_eq!(semi.num_rows() + anti.num_rows(), left().num_rows());
        assert_eq!(keys(&semi, 0), vec![Value::Int(2), Value::Int(2)]);
        assert_eq!(keys(&anti, 0), vec![Value::Int(1), Value::Int(5)]);
    }

    #[test]
    fn cross_join_on_empty_keys() {
        let out = hash_join(
            &left(),
            &right(),
            &[],
            JoinType::Inner,
            out_schema(JoinType::Inner),
        )
        .unwrap();
        assert_eq!(out.num_rows(), left().num_rows() * right().num_rows());
    }

    #[test]
    fn join_inputs_spanning_multiple_chunks_match_contiguous() {
        // The shape a partitioned producer hands downstream: the same
        // rows as `left()` but split across three chunks with an empty
        // chunk in the middle. Join results must not depend on layout.
        let mut l = DataSet::from_columns(vec![
            ("k", Column::from(vec![1i64, 2])),
            ("l", Column::from(vec!["a", "b"])),
        ])
        .unwrap();
        let empty = DataSet::from_rows(l.schema().clone(), &[]).unwrap();
        for ch in empty.chunks() {
            l.push_chunk(ch.clone());
        }
        let tail = DataSet::from_columns(vec![
            ("k", Column::from(vec![2i64, 5])),
            ("l", Column::from(vec!["c", "d"])),
        ])
        .unwrap();
        l.push_chunk(tail.chunks()[0].clone());
        assert!(l.same_bag(&left()).unwrap());
        for jt in [
            JoinType::Inner,
            JoinType::Left,
            JoinType::Semi,
            JoinType::Anti,
        ] {
            let split = hash_join(
                &l,
                &right(),
                &[("k".into(), "k".into())],
                jt,
                out_schema(jt),
            )
            .unwrap();
            let contiguous = hash_join(
                &left(),
                &right(),
                &[("k".into(), "k".into())],
                jt,
                out_schema(jt),
            )
            .unwrap();
            assert!(
                split.same_bag(&contiguous).unwrap(),
                "{jt:?} join changed under multi-chunk layout"
            );
        }
    }

    #[test]
    fn empty_sides_of_every_join_type() {
        let empty = DataSet::from_rows(left().schema().clone(), &[]).unwrap();
        let empty_r = DataSet::from_rows(right().schema().clone(), &[]).unwrap();
        let on = [("k".to_string(), "k".to_string())];
        for jt in [
            JoinType::Inner,
            JoinType::Left,
            JoinType::Semi,
            JoinType::Anti,
        ] {
            // Empty left: nothing to probe with, whatever the type.
            let out = hash_join(&empty, &right(), &on, jt, out_schema(jt)).unwrap();
            assert_eq!(out.num_rows(), 0, "{jt:?} with empty left");
        }
        // Empty right: inner/semi drop everything, left pads everything,
        // anti keeps everything.
        for (jt, expect) in [
            (JoinType::Inner, 0),
            (JoinType::Left, left().num_rows()),
            (JoinType::Semi, 0),
            (JoinType::Anti, left().num_rows()),
        ] {
            let out = hash_join(&left(), &empty_r, &on, jt, out_schema(jt)).unwrap();
            assert_eq!(out.num_rows(), expect, "{jt:?} with empty right");
        }
    }

    #[test]
    fn all_equal_key_skew_emits_the_full_product() {
        // Every row in one hash bucket — the worst skew a hash
        // partitioner can see: one partition holds everything, the rest
        // are empty. The bucket must still emit the full product.
        let n = 32usize;
        let skew = |tag: &str| {
            DataSet::from_columns(vec![
                ("k", Column::from(vec![7i64; n])),
                (tag, Column::from((0..n as i64).collect::<Vec<i64>>())),
            ])
            .unwrap()
        };
        let l = skew("l");
        let r = skew("r");
        let plan = Plan::scan("l", l.schema().clone()).join_as(
            Plan::scan("r", r.schema().clone()),
            vec![("k", "k")],
            JoinType::Inner,
        );
        let schema = infer_schema(&plan).unwrap();
        let out = hash_join(&l, &r, &[("k".into(), "k".into())], JoinType::Inner, schema).unwrap();
        assert_eq!(out.num_rows(), n * n);
    }

    #[test]
    fn merge_join_agrees_with_hash_join() {
        let on = ("k".to_string(), "k".to_string());
        let h = hash_join(
            &left(),
            &right(),
            std::slice::from_ref(&on),
            JoinType::Inner,
            out_schema(JoinType::Inner),
        )
        .unwrap();
        let m = merge_join(&left(), &right(), &on, out_schema(JoinType::Inner)).unwrap();
        assert!(h.same_bag(&m).unwrap());
    }
}
