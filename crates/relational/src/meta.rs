//! Load-time table metadata: zone maps, table statistics, and secondary
//! indexes, computed when a table is stored and consulted at scan time.
//!
//! The engine keeps one [`TableMeta`] per table, recomputed on every
//! `store` (the paper's "load-time statistics": a table mutation is the
//! one moment the engine sees every row anyway). Because the executor's
//! recursive `execute` signature takes only the plan and the table map,
//! metadata reaches the `Select` fast path the same way tracing scopes
//! do — through a thread-local installed by the engine around each
//! query ([`install`] / [`lookup`]), so untraced callers and other
//! engines pay one thread-local check and nothing else.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

use bda_storage::stats::ChunkStats;
use bda_storage::{Chunk, DataSet, IndexSpec, SecondaryIndex, StorageError, TableStats};

/// Everything the statistics layer knows about one stored table.
pub struct TableMeta {
    /// Whole-table statistics (row count, merged per-column zone maps).
    pub stats: TableStats,
    /// Per-chunk zone maps, aligned with the dataset's chunk list.
    pub chunks: Vec<ChunkStats>,
    /// Secondary indexes, keyed by column name (at most one per column).
    pub indexes: BTreeMap<String, SecondaryIndex>,
}

impl TableMeta {
    /// Summarize `ds` and build the indexes `specs` ask for. Index specs
    /// naming columns the dataset no longer has are dropped silently —
    /// a re-store with a narrower schema must not fail the store.
    pub fn compute(ds: &DataSet, specs: &[IndexSpec]) -> Result<TableMeta, StorageError> {
        let schema = ds.schema();
        let mut chunks = Vec::with_capacity(ds.chunks().len());
        for chunk in ds.chunks() {
            match chunk {
                Chunk::Rows(rc) => chunks.push(ChunkStats::of(rc)),
                dense => chunks.push(ChunkStats::of(&dense.to_rows(schema)?)),
            }
        }
        let mut indexes = BTreeMap::new();
        for spec in specs {
            if schema.index_of(&spec.column).is_err() {
                continue;
            }
            let idx = SecondaryIndex::build(ds, spec.clone())?;
            indexes.insert(spec.column.clone(), idx);
        }
        Ok(TableMeta {
            stats: TableStats::of(ds)?,
            chunks,
            indexes,
        })
    }

    /// The specs of the indexes currently built.
    pub fn specs(&self) -> Vec<IndexSpec> {
        self.indexes.values().map(|i| i.spec().clone()).collect()
    }
}

/// A snapshot of every table's metadata, shared cheaply across queries.
pub type MetaMap = Arc<BTreeMap<String, Arc<TableMeta>>>;

thread_local! {
    static METAS: RefCell<Option<MetaMap>> = const { RefCell::new(None) };
}

/// The installed metadata snapshot; dropping restores the previous one
/// (queries nest when an engine executes inside another's callback).
pub struct Installed {
    prev: Option<MetaMap>,
}

impl Drop for Installed {
    fn drop(&mut self) {
        METAS.with(|m| *m.borrow_mut() = self.prev.take());
    }
}

/// Install a metadata snapshot for the current thread until the guard
/// drops.
pub fn install(metas: MetaMap) -> Installed {
    METAS.with(|m| Installed {
        prev: m.borrow_mut().replace(metas),
    })
}

/// The installed metadata for one table, if any.
pub fn lookup(table: &str) -> Option<Arc<TableMeta>> {
    METAS.with(|m| m.borrow().as_ref().and_then(|map| map.get(table).cloned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_storage::{Column, IndexKind, Value};

    fn ds() -> DataSet {
        let mut d = DataSet::from_columns(vec![
            ("k", Column::from(vec![1i64, 2, 3])),
            ("v", Column::from(vec![1.0f64, 2.0, 3.0])),
        ])
        .unwrap();
        let extra = DataSet::from_columns(vec![
            ("k", Column::from(vec![10i64, 20])),
            ("v", Column::from(vec![10.0f64, 20.0])),
        ])
        .unwrap();
        d.push_chunk(extra.chunks()[0].clone());
        d
    }

    #[test]
    fn compute_covers_chunks_stats_and_indexes() {
        let spec = IndexSpec {
            column: "k".into(),
            kind: IndexKind::Hash,
        };
        let gone = IndexSpec {
            column: "nope".into(),
            kind: IndexKind::Sorted,
        };
        let meta = TableMeta::compute(&ds(), &[spec, gone]).unwrap();
        assert_eq!(meta.chunks.len(), 2);
        assert_eq!(meta.stats.row_count, 5);
        assert_eq!(meta.stats.column("k").unwrap().max, Some(Value::Int(20)));
        assert_eq!(meta.chunks[0].columns[0].max, Some(Value::Int(3)));
        assert_eq!(meta.indexes.len(), 1, "unknown-column spec dropped");
        assert_eq!(meta.specs().len(), 1);
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        assert!(lookup("t").is_none());
        let meta = Arc::new(TableMeta::compute(&ds(), &[]).unwrap());
        let outer: MetaMap = Arc::new([("t".to_string(), meta)].into_iter().collect());
        {
            let _g = install(Arc::clone(&outer));
            assert!(lookup("t").is_some());
            {
                let _inner = install(Arc::new(BTreeMap::new()));
                assert!(lookup("t").is_none(), "inner snapshot shadows");
            }
            assert!(lookup("t").is_some(), "outer snapshot restored");
        }
        assert!(lookup("t").is_none());
    }
}
