//! Hash aggregation with vectorized argument evaluation.

use std::collections::HashMap;

use bda_core::agg::{Accumulator, AggExpr};
use bda_core::eval::{eval_chunk, infer_expr};
use bda_core::CoreError;
use bda_storage::{Chunk, Column, DataSet, Row, RowsChunk, Schema, Value};

use crate::exec::Result;

/// Grouped aggregation: group keys are hashed whole-row; aggregate
/// arguments are evaluated column-at-a-time before grouping.
pub fn aggregate_exec(
    input: &DataSet,
    group_by: &[String],
    aggs: &[AggExpr],
    out_schema: Schema,
) -> Result<DataSet> {
    let in_schema = input.schema().clone();
    let chunk = input.to_rows_chunk()?;
    let n = chunk.len();

    let key_cols: Vec<&Column> = group_by
        .iter()
        .map(|g| Ok(chunk.column(in_schema.index_of(g)?)))
        .collect::<std::result::Result<_, bda_storage::StorageError>>()?;

    // Evaluate aggregate arguments once, vectorized.
    let mut arg_cols: Vec<Option<Column>> = Vec::with_capacity(aggs.len());
    let mut arg_types = Vec::with_capacity(aggs.len());
    for a in aggs {
        match &a.arg {
            Some(e) => {
                arg_types.push(infer_expr(e, &in_schema)?);
                arg_cols.push(Some(eval_chunk(e, &in_schema, &chunk)?));
            }
            None => {
                arg_types.push(None);
                arg_cols.push(None);
            }
        }
    }

    let mut groups: HashMap<Row, Vec<Accumulator>> = HashMap::new();
    let mut order: Vec<Row> = Vec::new();
    for i in 0..n {
        let key = Row(key_cols.iter().map(|c| c.get(i)).collect());
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter()
                .zip(&arg_types)
                .map(|(a, t)| Accumulator::new(a.func, *t))
                .collect()
        });
        for (acc, arg) in accs.iter_mut().zip(&arg_cols) {
            let v = match arg {
                Some(c) => c.get(i),
                None => Value::Bool(true), // count(*) marker
            };
            acc.update(&v)?;
        }
    }
    if group_by.is_empty() && groups.is_empty() {
        let accs: Vec<Accumulator> = aggs
            .iter()
            .zip(&arg_types)
            .map(|(a, t)| Accumulator::new(a.func, *t))
            .collect();
        groups.insert(Row::new(), accs);
        order.push(Row::new());
    }

    // Emit columns directly in output order.
    let mut cols: Vec<Column> = out_schema
        .fields()
        .iter()
        .map(|f| Column::new_empty(f.dtype))
        .collect();
    for key in &order {
        let accs = &groups[key];
        for (ci, v) in key.0.iter().enumerate() {
            cols[ci].push(v).map_err(CoreError::from)?;
        }
        for (ai, acc) in accs.iter().enumerate() {
            let ci = group_by.len() + ai;
            let v = widen(acc.finish(), out_schema.field_at(ci).dtype);
            cols[ci].push(&v).map_err(CoreError::from)?;
        }
    }
    let chunk = RowsChunk::new(cols).map_err(CoreError::from)?;
    Ok(DataSet::new(out_schema, vec![Chunk::Rows(chunk)]))
}

fn widen(v: Value, to: bda_storage::DataType) -> Value {
    match (&v, to) {
        (Value::Int(x), bda_storage::DataType::Float64) => Value::Float(*x as f64),
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::infer_schema;
    use bda_core::{col, AggExpr, AggFunc, Plan};

    fn input() -> DataSet {
        DataSet::from_columns(vec![
            ("g", Column::from(vec!["a", "b", "a", "a"])),
            ("x", Column::from(vec![1i64, 2, 3, 4])),
        ])
        .unwrap()
    }

    fn run(group_by: &[&str], aggs: Vec<AggExpr>) -> DataSet {
        let ds = input();
        let plan = Plan::scan("t", ds.schema().clone()).aggregate(group_by.to_vec(), aggs.clone());
        let schema = infer_schema(&plan).unwrap();
        aggregate_exec(
            &ds,
            &group_by.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &aggs,
            schema,
        )
        .unwrap()
    }

    #[test]
    fn grouped_sums() {
        let out = run(&["g"], vec![AggExpr::new(AggFunc::Sum, col("x"), "s")]);
        let rows = out.sorted_rows().unwrap();
        assert_eq!(rows[0], Row(vec![Value::from("a"), Value::Int(8)]));
        assert_eq!(rows[1], Row(vec![Value::from("b"), Value::Int(2)]));
    }

    #[test]
    fn expression_arguments() {
        let out = run(
            &[],
            vec![AggExpr::new(AggFunc::Max, col("x").mul(col("x")), "maxsq")],
        );
        assert_eq!(out.rows().unwrap(), vec![Row(vec![Value::Int(16)])]);
    }

    #[test]
    fn avg_widens_to_float() {
        let out = run(&["g"], vec![AggExpr::new(AggFunc::Avg, col("x"), "a")]);
        let rows = out.sorted_rows().unwrap();
        assert_eq!(rows[0].get(1), &Value::Float(8.0 / 3.0));
    }

    #[test]
    fn null_group_keys_form_a_group() {
        let ds = DataSet::from_rows(
            input().schema().clone(),
            &[
                Row(vec![Value::Null, Value::Int(1)]),
                Row(vec![Value::Null, Value::Int(2)]),
                Row(vec![Value::from("a"), Value::Int(3)]),
            ],
        )
        .unwrap();
        let plan = Plan::scan("t", ds.schema().clone())
            .aggregate(vec!["g"], vec![AggExpr::count_star("n")]);
        let schema = infer_schema(&plan).unwrap();
        let out =
            aggregate_exec(&ds, &["g".to_string()], &[AggExpr::count_star("n")], schema).unwrap();
        let rows = out.sorted_rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], Row(vec![Value::Null, Value::Int(2)]));
    }
}
