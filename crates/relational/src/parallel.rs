//! Partition-parallel relational kernels.
//!
//! These run when the planner wraps an operator in explicit
//! `Merge(op(Exchange(..)))` markers: the `Exchange` carries the
//! partition count, the engine routes rows with the deterministic
//! [`Partitioner`], runs the per-partition kernel on the worker pool,
//! and concatenates the outputs **in partition order**. The output is a
//! pure function of the input and the partition count — never of the
//! worker count — so results are byte-identical under any parallelism.
//!
//! Each partition records a `partition:{i}` span (via the scope snapshot
//! mechanism) so `EXPLAIN ANALYZE` can show the parallel fan-out.

use bda_core::partition::{merge_partitions, Partitioner};
use bda_core::{pool, AggExpr, JoinType, Plan};
use bda_storage::{DataSet, Schema};

use crate::aggregate::aggregate_exec;
use crate::exec::Result;
use crate::join::hash_join;

/// The pieces of a matched partitioned join: both inputs, the join
/// keys, the join type, and the partition count.
pub type JoinPattern<'a> = (&'a Plan, &'a Plan, &'a [(String, String)], JoinType, usize);

/// Match a `Merge(Join(Exchange(l), Exchange(r)))` pattern, returning
/// the join parameters and the partition count.
pub fn merge_join_pattern(merged: &Plan) -> Option<JoinPattern<'_>> {
    let Plan::Join {
        left,
        right,
        on,
        join_type,
        ..
    } = merged
    else {
        return None;
    };
    let (
        Plan::Exchange {
            input: li, parts, ..
        },
        Plan::Exchange { input: ri, .. },
    ) = (left.as_ref(), right.as_ref())
    else {
        return None;
    };
    Some((li, ri, on, *join_type, *parts))
}

/// Match a `Merge(Aggregate(Exchange(in)))` pattern with a non-empty
/// group-by (global aggregates are not partitionable this way).
pub fn merge_aggregate_pattern(merged: &Plan) -> Option<(&Plan, &[String], &[AggExpr], usize)> {
    let Plan::Aggregate {
        input,
        group_by,
        aggs,
    } = merged
    else {
        return None;
    };
    if group_by.is_empty() {
        return None;
    }
    let Plan::Exchange {
        input: ei, parts, ..
    } = input.as_ref()
    else {
        return None;
    };
    Some((ei, group_by, aggs, *parts))
}

/// Run per-partition kernels on the worker pool, recording a
/// `partition:{i}` span per task under the currently open scope span,
/// and concatenate the outputs in partition order.
fn run_partitioned(
    out_schema: Schema,
    tasks: Vec<Box<dyn FnOnce() -> Result<DataSet> + Send + '_>>,
) -> Result<DataSet> {
    let snap = bda_obs::scope::snapshot();
    let traced: Vec<Box<dyn FnOnce() -> Result<DataSet> + Send + '_>> = tasks
        .into_iter()
        .enumerate()
        .map(|(i, task)| {
            let snap = snap.clone();
            Box::new(move || {
                let mut guard = snap.as_ref().map(|s| {
                    s.tracer
                        .start(s.parent, || format!("partition:{i}"), &s.site)
                });
                let out = task();
                if let (Some(g), Ok(ds)) = (guard.as_mut(), &out) {
                    g.set_rows(ds.num_rows());
                }
                out
            }) as Box<dyn FnOnce() -> Result<DataSet> + Send + '_>
        })
        .collect();
    let outs = pool::run_with(pool::workers(), traced);
    merge_partitions(out_schema, outs.into_iter().collect::<Result<Vec<_>>>()?)
}

/// Hash-partitioned join: co-partition both sides on the join keys,
/// join each bucket independently, concatenate.
///
/// With an empty `on` list (cross join) the left side is block-split and
/// the right side broadcast — correct for every join type because row
/// matching is local to each left row.
pub fn partitioned_hash_join(
    left: &DataSet,
    right: &DataSet,
    on: &[(String, String)],
    join_type: JoinType,
    parts: usize,
    out_schema: Schema,
) -> Result<DataSet> {
    let parts = parts.max(1);
    let (l_parts, r_parts): (Vec<DataSet>, Vec<DataSet>) = if on.is_empty() {
        let l = Partitioner::block(parts).split(left)?;
        let r = vec![right.clone(); parts];
        (l, r)
    } else {
        let l_keys: Vec<&str> = on.iter().map(|(l, _)| l.as_str()).collect();
        let r_keys: Vec<&str> = on.iter().map(|(_, r)| r.as_str()).collect();
        let l = Partitioner::hash_keys(&l_keys, parts).split(left)?;
        let r = Partitioner::hash_keys(&r_keys, parts).split(right)?;
        (l, r)
    };
    let tasks: Vec<Box<dyn FnOnce() -> Result<DataSet> + Send + '_>> = l_parts
        .into_iter()
        .zip(r_parts)
        .map(|(l, r)| {
            let on = on.to_vec();
            let schema = out_schema.clone();
            Box::new(move || hash_join(&l, &r, &on, join_type, schema))
                as Box<dyn FnOnce() -> Result<DataSet> + Send + '_>
        })
        .collect();
    run_partitioned(out_schema, tasks)
}

/// Hash-partitioned grouped aggregation: partition on the group keys (so
/// each group lives wholly inside one partition), aggregate each
/// partition independently, concatenate. No partial-aggregate merge is
/// needed because groups never straddle partitions.
pub fn partitioned_aggregate(
    input: &DataSet,
    group_by: &[String],
    aggs: &[AggExpr],
    parts: usize,
    out_schema: Schema,
) -> Result<DataSet> {
    let parts = parts.max(1);
    let keys: Vec<&str> = group_by.iter().map(String::as_str).collect();
    let in_parts = Partitioner::hash_keys(&keys, parts).split(input)?;
    let tasks: Vec<Box<dyn FnOnce() -> Result<DataSet> + Send + '_>> = in_parts
        .into_iter()
        .map(|p| {
            let schema = out_schema.clone();
            Box::new(move || aggregate_exec(&p, group_by, aggs, schema))
                as Box<dyn FnOnce() -> Result<DataSet> + Send + '_>
        })
        .collect();
    run_partitioned(out_schema, tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::agg::AggFunc;
    use bda_core::{col, pool};
    use bda_storage::{DataType, Field, Row, Value};

    fn schema(names: &[&str]) -> Schema {
        Schema::new(
            names
                .iter()
                .map(|n| Field::value(*n, DataType::Int64))
                .collect(),
        )
        .unwrap()
    }

    fn table(s: &Schema, rows: &[Vec<i64>]) -> DataSet {
        let rows: Vec<Row> = rows
            .iter()
            .map(|r| Row(r.iter().map(|&v| Value::Int(v)).collect()))
            .collect();
        DataSet::from_rows(s.clone(), &rows).unwrap()
    }

    fn join_schemas() -> (Schema, Schema, Schema) {
        let l = schema(&["k", "a"]);
        let r = schema(&["j", "b"]);
        let out = l.join(&r, "_r").unwrap();
        (l, r, out)
    }

    #[test]
    fn partitioned_join_matches_sequential_for_all_types_and_parts() {
        let (ls, rs, out) = join_schemas();
        let left = table(
            &ls,
            &[[1, 10], [2, 20], [3, 30], [2, 21], [9, 90]].map(Vec::from),
        );
        let right = table(
            &rs,
            &[[2, 200], [3, 300], [2, 201], [7, 700]].map(Vec::from),
        );
        let on = vec![("k".to_string(), "j".to_string())];
        for jt in [
            JoinType::Inner,
            JoinType::Left,
            JoinType::Semi,
            JoinType::Anti,
        ] {
            let out_schema = match jt {
                JoinType::Inner | JoinType::Left => out.clone(),
                JoinType::Semi | JoinType::Anti => ls.clone(),
            };
            let seq = hash_join(&left, &right, &on, jt, out_schema.clone()).unwrap();
            for parts in [1, 2, 3, 8] {
                for workers in [1, 4] {
                    let par = pool::with_workers(workers, || {
                        partitioned_hash_join(&left, &right, &on, jt, parts, out_schema.clone())
                    })
                    .unwrap();
                    assert!(
                        seq.same_bag(&par).unwrap(),
                        "join_type={jt:?} parts={parts} workers={workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn partitioned_cross_join_matches_sequential() {
        let (ls, rs, out) = join_schemas();
        let left = table(&ls, &[[1, 10], [2, 20], [3, 30]].map(Vec::from));
        let right = table(&rs, &[[7, 70], [8, 80]].map(Vec::from));
        let seq = hash_join(&left, &right, &[], JoinType::Inner, out.clone()).unwrap();
        let par = partitioned_hash_join(&left, &right, &[], JoinType::Inner, 2, out).unwrap();
        assert!(seq.same_bag(&par).unwrap());
    }

    #[test]
    fn empty_inputs_and_more_parts_than_rows() {
        let (ls, rs, out) = join_schemas();
        let on = vec![("k".to_string(), "j".to_string())];
        let empty_l = table(&ls, &[]);
        let one_r = table(&rs, &[[1, 100]].map(Vec::from));
        let res =
            partitioned_hash_join(&empty_l, &one_r, &on, JoinType::Inner, 6, out.clone()).unwrap();
        assert_eq!(res.num_rows(), 0);
        // Left join on an empty right side still pads every left row.
        let one_l = table(&ls, &[[1, 10]].map(Vec::from));
        let empty_r = table(&rs, &[]);
        let res = partitioned_hash_join(&one_l, &empty_r, &on, JoinType::Left, 6, out).unwrap();
        assert_eq!(res.num_rows(), 1);
    }

    #[test]
    fn skewed_all_equal_keys_still_join_correctly() {
        let (ls, rs, out) = join_schemas();
        let left = table(&ls, &(0..12).map(|i| vec![5, i]).collect::<Vec<_>>());
        let right = table(&rs, &(0..3).map(|i| vec![5, 100 + i]).collect::<Vec<_>>());
        let on = vec![("k".to_string(), "j".to_string())];
        let seq = hash_join(&left, &right, &on, JoinType::Inner, out.clone()).unwrap();
        let par = partitioned_hash_join(&left, &right, &on, JoinType::Inner, 4, out).unwrap();
        assert_eq!(par.num_rows(), 36);
        assert!(seq.same_bag(&par).unwrap());
    }

    #[test]
    fn null_join_keys_survive_left_join_partitioning() {
        let ls = schema(&["k", "a"]);
        let rs = schema(&["j", "b"]);
        let out = ls.join(&rs, "_r").unwrap();
        let left = DataSet::from_rows(
            ls.clone(),
            &[
                Row(vec![Value::Null, Value::Int(1)]),
                Row(vec![Value::Int(2), Value::Int(2)]),
            ],
        )
        .unwrap();
        let right = table(&rs, &[[2, 200]].map(Vec::from));
        let on = vec![("k".to_string(), "j".to_string())];
        let seq = hash_join(&left, &right, &on, JoinType::Left, out.clone()).unwrap();
        let par = partitioned_hash_join(&left, &right, &on, JoinType::Left, 3, out).unwrap();
        // The null-key row must appear (padded), not be dropped.
        assert_eq!(par.num_rows(), 2);
        assert!(seq.same_bag(&par).unwrap());
    }

    #[test]
    fn partitioned_aggregate_matches_sequential() {
        let s = schema(&["g", "v"]);
        let input = table(&s, &(0..40).map(|i| vec![i % 7, i]).collect::<Vec<_>>());
        let group_by = vec!["g".to_string()];
        let aggs = vec![AggExpr::new(AggFunc::Sum, col("v"), "s")];
        let out_schema = Schema::new(vec![
            Field::value("g", DataType::Int64),
            Field::value("s", DataType::Int64),
        ])
        .unwrap();
        let seq = aggregate_exec(&input, &group_by, &aggs, out_schema.clone()).unwrap();
        for parts in [1, 3, 5, 11] {
            let par = pool::with_workers(4, || {
                partitioned_aggregate(&input, &group_by, &aggs, parts, out_schema.clone())
            })
            .unwrap();
            assert!(seq.same_bag(&par).unwrap(), "parts={parts}");
        }
    }

    #[test]
    fn output_is_identical_regardless_of_worker_count() {
        let (ls, rs, out) = join_schemas();
        let left = table(&ls, &(0..30).map(|i| vec![i % 6, i]).collect::<Vec<_>>());
        let right = table(
            &rs,
            &(0..12).map(|i| vec![i % 6, i * 10]).collect::<Vec<_>>(),
        );
        let on = vec![("k".to_string(), "j".to_string())];
        let runs: Vec<DataSet> = [1, 2, 7]
            .iter()
            .map(|&w| {
                pool::with_workers(w, || {
                    partitioned_hash_join(&left, &right, &on, JoinType::Inner, 4, out.clone())
                })
                .unwrap()
            })
            .collect();
        // Not just bag-equal: chunk-for-chunk, row-for-row identical.
        let base = runs[0].to_rows_chunk().unwrap();
        for run in &runs[1..] {
            let c = run.to_rows_chunk().unwrap();
            assert_eq!(c.len(), base.len());
            for i in 0..c.len() {
                assert_eq!(c.row(i), base.row(i));
            }
        }
    }
}
