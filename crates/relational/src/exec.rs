//! Plan execution: dispatch and the simple columnar operators.
//!
//! Inputs are normalized to a single coordinate-list chunk, then each
//! operator works on columns (masks, gathers, vectorized expression
//! evaluation) rather than materialized rows.

use std::collections::BTreeMap;

use bda_core::convergence::converged;
use bda_core::eval::eval_chunk;
use bda_core::infer::infer_schema;
use bda_core::{CoreError, Plan};
use bda_storage::{Chunk, Column, DataSet, RowsChunk, Schema, Value};

use crate::aggregate::aggregate_exec;
use crate::join::hash_join;
use crate::parallel::{
    merge_aggregate_pattern, merge_join_pattern, partitioned_aggregate, partitioned_hash_join,
};
use crate::sort::{distinct_exec, sort_exec};

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Execute a plan against the engine's table map.
pub fn execute(
    plan: &Plan,
    tables: &BTreeMap<String, DataSet>,
    state: Option<&DataSet>,
) -> Result<DataSet> {
    // Per-operator tracing when a scope is installed (`execute_traced`);
    // one inert thread-local check otherwise.
    let mut node = bda_obs::scope::enter(|| format!("op:{}", plan.op_kind().name()));
    let out = execute_node(plan, tables, state);
    if let (Some(n), Ok(ds)) = (node.as_mut(), &out) {
        n.rows(ds.num_rows());
    }
    out
}

fn execute_node(
    plan: &Plan,
    tables: &BTreeMap<String, DataSet>,
    state: Option<&DataSet>,
) -> Result<DataSet> {
    let out_schema = infer_schema(plan)?;
    match plan {
        Plan::Scan { dataset, schema } => {
            let ds = tables
                .get(dataset)
                .ok_or_else(|| CoreError::UnknownDataset(dataset.clone()))?;
            if ds.schema() != schema {
                return Err(CoreError::Plan(format!(
                    "scan `{dataset}`: bound schema {} does not match stored schema {}",
                    schema,
                    ds.schema()
                )));
            }
            Ok(ds.clone())
        }
        Plan::Values { schema, rows } => {
            DataSet::from_rows(schema.clone(), rows).map_err(Into::into)
        }
        Plan::Range { lo, hi, .. } => {
            let col = Column::from((*lo..*hi).collect::<Vec<i64>>());
            let chunk = RowsChunk::new(vec![col])?;
            Ok(DataSet::new(out_schema, vec![Chunk::Rows(chunk)]))
        }
        Plan::IterState { .. } => state
            .cloned()
            .ok_or_else(|| CoreError::Plan("iter_state outside of iterate".into())),
        Plan::Select { input, predicate } => {
            let in_ds = execute(input, tables, state)?;
            // Statistics fast path: a selection directly over a stored
            // table can consult the table's zone maps and indexes. Any
            // mismatch (no metadata installed, unrecognized predicate,
            // stale snapshot) falls through to the plain path below.
            if let Plan::Scan { dataset, .. } = &**input {
                if let Some(out) = pruned_select(dataset, &in_ds, predicate, &out_schema)? {
                    return Ok(out);
                }
            }
            let in_schema = in_ds.schema().clone();
            let chunk = in_ds.to_rows_chunk()?;
            let mask_col = eval_chunk(predicate, &in_schema, &chunk)?;
            let mask = truth_mask(&mask_col)?;
            let filtered = chunk.filter(&mask);
            Ok(DataSet::new(out_schema, vec![Chunk::Rows(filtered)]))
        }
        Plan::Project { input, exprs } => {
            let in_ds = execute(input, tables, state)?;
            let in_schema = in_ds.schema().clone();
            let chunk = in_ds.to_rows_chunk()?;
            let mut cols = Vec::with_capacity(exprs.len());
            for (i, (_, e)) in exprs.iter().enumerate() {
                let c = eval_chunk(e, &in_schema, &chunk)?;
                cols.push(cast_to(c, out_schema.field_at(i).dtype));
            }
            Ok(DataSet::new(
                out_schema,
                vec![Chunk::Rows(RowsChunk::new(cols)?)],
            ))
        }
        Plan::Join {
            left,
            right,
            on,
            join_type,
            ..
        } => {
            let l = execute(left, tables, state)?;
            let r = execute(right, tables, state)?;
            hash_join(&l, &r, on, *join_type, out_schema)
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let in_ds = execute(input, tables, state)?;
            aggregate_exec(&in_ds, group_by, aggs, out_schema)
        }
        Plan::Union { left, right } => {
            let l = execute(left, tables, state)?;
            let r = execute(right, tables, state)?;
            let mut chunk = l.to_rows_chunk()?;
            chunk.extend(&r.to_rows_chunk()?)?;
            Ok(DataSet::new(out_schema, vec![Chunk::Rows(chunk)]))
        }
        Plan::Distinct { input } => {
            let in_ds = execute(input, tables, state)?;
            distinct_exec(&in_ds, out_schema)
        }
        Plan::Sort { input, keys } => {
            let in_ds = execute(input, tables, state)?;
            sort_exec(&in_ds, keys, out_schema)
        }
        Plan::Limit { input, skip, fetch } => {
            let in_ds = execute(input, tables, state)?;
            let chunk = in_ds.to_rows_chunk()?;
            let n = chunk.len();
            let start = (*skip).min(n);
            let end = match fetch {
                Some(f) => (start + f).min(n),
                None => n,
            };
            let indices: Vec<usize> = (start..end).collect();
            Ok(DataSet::new(
                out_schema,
                vec![Chunk::Rows(chunk.take(&indices))],
            ))
        }
        Plan::Rename { input, .. } | Plan::UntagDims { input } => {
            let in_ds = execute(input, tables, state)?;
            let chunk = in_ds.to_rows_chunk()?;
            Ok(DataSet::new(out_schema, vec![Chunk::Rows(chunk)]))
        }
        Plan::TagDims { input, .. } => {
            let in_ds = execute(input, tables, state)?;
            let chunk = in_ds.to_rows_chunk()?;
            validate_dims(&out_schema, &chunk)?;
            Ok(DataSet::new(out_schema, vec![Chunk::Rows(chunk)]))
        }
        Plan::Dice { input, ranges } => {
            let in_ds = execute(input, tables, state)?;
            let in_schema = in_ds.schema().clone();
            let chunk = in_ds.to_rows_chunk()?;
            let mut mask = vec![true; chunk.len()];
            for (d, lo, hi) in ranges {
                let idx = in_schema.index_of(d)?;
                let col = chunk.column(idx);
                for (i, keep) in mask.iter_mut().enumerate() {
                    if *keep {
                        *keep = match col.get(i) {
                            Value::Int(c) => c >= *lo && c < *hi,
                            _ => false,
                        };
                    }
                }
            }
            Ok(DataSet::new(
                out_schema,
                vec![Chunk::Rows(chunk.filter(&mask))],
            ))
        }
        // A bare Exchange is a planner marker with bag-identity
        // semantics: the partition routing happens inside the matching
        // Merge(op(Exchange..)) kernel, not here.
        Plan::Exchange { input, .. } => execute(input, tables, state),
        Plan::Merge { input } => {
            if let Some((li, ri, on, join_type, parts)) = merge_join_pattern(input) {
                let l = execute(li, tables, state)?;
                let r = execute(ri, tables, state)?;
                partitioned_hash_join(&l, &r, on, join_type, parts, out_schema)
            } else if let Some((ei, group_by, aggs, parts)) = merge_aggregate_pattern(input) {
                let in_ds = execute(ei, tables, state)?;
                partitioned_aggregate(&in_ds, group_by, aggs, parts, out_schema)
            } else {
                execute(input, tables, state)
            }
        }
        Plan::Iterate {
            init,
            body,
            max_iters,
            epsilon,
        } => {
            let mut cur = execute(init, tables, state)?;
            for _ in 0..*max_iters {
                let next = execute(body, tables, Some(&cur))?;
                let done = converged(&cur, &next, *epsilon)?;
                cur = next;
                if done {
                    break;
                }
            }
            Ok(cur)
        }
        other => Err(CoreError::Unsupported {
            provider: "relational".into(),
            op: other.op_kind().name().into(),
        }),
    }
}

/// Statistics-driven selection over a stored table: serve the predicate
/// from a secondary index when one covers a comparison conjunct, else
/// skip chunks whose zone maps disprove a conjunct. Returns `Ok(None)`
/// whenever the fast path does not apply — including when *every* chunk
/// survives zone checks, since the plain path then does identical work.
///
/// Soundness: `pruning::analyze` only recognizes predicates it can
/// prove total over the schema (so skipping rows cannot suppress an
/// evaluation error), zone maps and the evaluator share one total
/// order, and index candidates are re-filtered with the full predicate
/// (indexes promise completeness, not exactness). Candidate positions
/// are re-sorted ascending so output *order* matches the plain filter
/// path exactly, not just the output bag.
fn pruned_select(
    dataset: &str,
    in_ds: &DataSet,
    predicate: &bda_core::Expr,
    out_schema: &Schema,
) -> Result<Option<DataSet>> {
    use bda_core::pruning::{analyze, may_match_all, Test};

    let Some(meta) = crate::meta::lookup(dataset) else {
        return Ok(None);
    };
    let schema = in_ds.schema();
    // Stale-snapshot guard: metadata raced a concurrent store.
    if meta.stats.row_count != in_ds.num_rows() || meta.chunks.len() != in_ds.chunks().len() {
        return Ok(None);
    }
    let Some(tests) = analyze(predicate, schema) else {
        return Ok(None);
    };

    // Index path: the first comparison conjunct a built index can serve.
    for t in &tests {
        let Test::Cmp { column, op, lit } = t else {
            continue;
        };
        let Some(idx) = meta.indexes.get(column.as_str()) else {
            continue;
        };
        if idx.rows() != in_ds.num_rows() {
            continue;
        }
        let Some(mut positions) = idx.lookup(*op, lit) else {
            continue;
        };
        positions.sort_unstable();
        // Materialize only the chunks that hold a candidate position —
        // the whole point of the index is to never touch the rest.
        let candidate_count = positions.len();
        let mut candidates = RowsChunk::empty(schema);
        let mut remaining = positions.iter().map(|&p| p as usize).peekable();
        let mut base = 0usize;
        for ch in in_ds.chunks() {
            let end = base + ch.len();
            let mut local = Vec::new();
            while let Some(&p) = remaining.peek() {
                if p >= end {
                    break;
                }
                local.push(p - base);
                remaining.next();
            }
            if !local.is_empty() {
                candidates.extend(&ch.to_rows(schema)?.take(&local))?;
            }
            base = end;
        }
        let mask_col = eval_chunk(predicate, schema, &candidates)?;
        let mask = truth_mask(&mask_col)?;
        let filtered = candidates.filter(&mask);
        bda_obs::prune::record_index_hit();
        prune_event(|| {
            format!(
                "pruning: index {dataset}.{column} ({}) candidates {}/{}",
                idx.spec().kind.name(),
                candidate_count,
                in_ds.num_rows()
            )
        });
        return Ok(Some(DataSet::new(
            out_schema.clone(),
            vec![Chunk::Rows(filtered)],
        )));
    }

    // Zone-map path: drop chunks where some conjunct cannot hold.
    let considered = meta.chunks.len();
    let survivors: Vec<usize> = (0..considered)
        .filter(|&ci| {
            let cs = &meta.chunks[ci];
            may_match_all(&tests, |name: &str| {
                schema.index_of(name).ok().and_then(|i| cs.columns.get(i))
            })
        })
        .collect();
    let pruned = considered - survivors.len();
    bda_obs::prune::record_chunks(considered as u64, pruned as u64);
    if pruned == 0 {
        return Ok(None);
    }
    let mut kept = RowsChunk::empty(schema);
    for ci in survivors {
        kept.extend(&in_ds.chunks()[ci].to_rows(schema)?)?;
    }
    let mask_col = eval_chunk(predicate, schema, &kept)?;
    let mask = truth_mask(&mask_col)?;
    let filtered = kept.filter(&mask);
    prune_event(|| format!("pruning: zone-map {dataset} chunks {pruned}/{considered}"));
    Ok(Some(DataSet::new(
        out_schema.clone(),
        vec![Chunk::Rows(filtered)],
    )))
}

/// Attach a pruning decision to the enclosing operator span (the
/// `== pruning ==` EXPLAIN ANALYZE section aggregates these). Inert
/// when untraced: the label closure never runs.
fn prune_event(label: impl FnOnce() -> String) {
    if let Some(s) = bda_obs::scope::snapshot() {
        s.tracer.event(s.parent, label);
    }
}

/// A boolean column interpreted as a filter mask: `true` where the slot is
/// a valid `true`.
pub fn truth_mask(col: &Column) -> Result<Vec<bool>> {
    let data = col
        .bool_data()
        .map_err(|e| CoreError::Plan(format!("predicate did not yield bool: {e}")))?;
    Ok(match col.validity() {
        None => data.to_vec(),
        Some(bm) => data
            .iter()
            .enumerate()
            .map(|(i, &b)| b && bm.get(i))
            .collect(),
    })
}

/// Cast a column when projection inference widened the type (e.g. int
/// expression stored into a float column); identity otherwise.
fn cast_to(c: Column, to: bda_storage::DataType) -> Column {
    if c.dtype() == to {
        c
    } else {
        c.cast(to)
    }
}

/// Validate dimension columns against the schema's declared roles/extents.
fn validate_dims(schema: &Schema, chunk: &RowsChunk) -> Result<()> {
    for (i, f) in schema.fields().iter().enumerate() {
        if !f.is_dimension() {
            continue;
        }
        let col = chunk.column(i);
        if col.null_count() > 0 {
            return Err(CoreError::Plan(format!(
                "null coordinate in dimension `{}`",
                f.name
            )));
        }
        let data = col
            .i64_data()
            .map_err(|_| CoreError::Plan(format!("dimension `{}` is not i64", f.name)))?;
        if let Some((lo, hi)) = f.extent() {
            if let Some(&bad) = data.iter().find(|&&c| c < lo || c >= hi) {
                return Err(CoreError::Plan(format!(
                    "coordinate {bad} of dimension `{}` outside extent [{lo}, {hi})",
                    f.name
                )));
            }
        }
    }
    Ok(())
}

/// Materialized-row helper shared by the equivalence tests in this crate.
#[cfg(test)]
pub(crate) fn rows_of(ds: &DataSet) -> Vec<bda_storage::Row> {
    ds.sorted_rows().expect("materialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::reference::evaluate;
    use bda_core::{col, lit, AggExpr, AggFunc};
    use bda_storage::Row;
    use std::collections::HashMap;

    fn tables() -> BTreeMap<String, DataSet> {
        let mut m = BTreeMap::new();
        m.insert(
            "t".to_string(),
            DataSet::from_columns(vec![
                ("k", Column::from(vec![3i64, 1, 2, 1])),
                ("v", Column::from(vec![1.5f64, -2.0, 0.0, 8.0])),
                ("s", Column::from(vec!["c", "a", "b", "a"])),
            ])
            .unwrap(),
        );
        m
    }

    fn as_hashmap(t: &BTreeMap<String, DataSet>) -> HashMap<String, DataSet> {
        t.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    fn check_against_reference(plan: &Plan) {
        let t = tables();
        let ours = execute(plan, &t, None).expect("engine execution");
        let oracle = evaluate(plan, &as_hashmap(&t)).expect("reference execution");
        assert_eq!(ours.schema(), oracle.schema());
        assert_eq!(rows_of(&ours), rows_of(&oracle), "plan:\n{plan}");
    }

    fn scan_t() -> Plan {
        Plan::scan("t", tables()["t"].schema().clone())
    }

    #[test]
    fn select_matches_reference() {
        check_against_reference(&scan_t().select(col("v").gt(lit(0.0))));
        check_against_reference(&scan_t().select(col("s").eq(lit("a")).or(col("k").eq(lit(3i64)))));
    }

    #[test]
    fn project_matches_reference() {
        check_against_reference(&scan_t().project(vec![
            ("kk", col("k").mul(lit(2i64))),
            ("vv", col("v").add(col("k"))),
        ]));
    }

    #[test]
    fn aggregate_matches_reference() {
        check_against_reference(&scan_t().aggregate(
            vec!["s"],
            vec![
                AggExpr::new(AggFunc::Sum, col("v"), "sv"),
                AggExpr::new(AggFunc::Min, col("k"), "mn"),
                AggExpr::new(AggFunc::Avg, col("k"), "av"),
                AggExpr::count_star("n"),
            ],
        ));
        check_against_reference(&scan_t().aggregate(vec![], vec![AggExpr::count_star("n")]));
    }

    #[test]
    fn sort_distinct_limit_match_reference() {
        check_against_reference(&scan_t().sort_by(vec!["k", "s"]).limit(3));
        check_against_reference(&scan_t().project(vec![("s", col("s"))]).distinct());
        check_against_reference(&Plan::Limit {
            input: scan_t().sort_by(vec!["k"]).boxed(),
            skip: 1,
            fetch: Some(2),
        });
    }

    #[test]
    fn union_and_rename_match_reference() {
        check_against_reference(&scan_t().union(scan_t()).rename(vec![("v", "val")]));
    }

    #[test]
    fn iterate_runs() {
        let schema = Schema::new(vec![bda_storage::Field::value(
            "x",
            bda_storage::DataType::Float64,
        )])
        .unwrap();
        let p = Plan::Iterate {
            init: Plan::Values {
                schema: schema.clone(),
                rows: vec![Row(vec![Value::Float(8.0)])],
            }
            .boxed(),
            body: Plan::IterState { schema }
                .project(vec![("x", col("x").div(lit(2.0)))])
                .boxed(),
            max_iters: 3,
            epsilon: None,
        };
        let out = execute(&p, &BTreeMap::new(), None).unwrap();
        let x = out.rows().unwrap()[0].get(0).as_float().unwrap();
        assert_eq!(x, 1.0);
    }

    #[test]
    fn truth_mask_handles_nulls() {
        let c = Column::from_values(
            bda_storage::DataType::Bool,
            &[Value::Bool(true), Value::Null, Value::Bool(false)],
        )
        .unwrap();
        assert_eq!(truth_mask(&c).unwrap(), vec![true, false, false]);
    }

    #[test]
    fn dice_filters_coordinates() {
        let m =
            bda_storage::dataset::matrix_dataset(4, 4, (0..16).map(f64::from).collect()).unwrap();
        let mut t = BTreeMap::new();
        t.insert("m".to_string(), m.clone());
        let p = Plan::Dice {
            input: Plan::scan("m", m.schema().clone()).boxed(),
            ranges: vec![("row".into(), 1, 3), ("col".into(), 0, 2)],
        };
        let out = execute(&p, &t, None).unwrap();
        assert_eq!(out.num_rows(), 4);
    }
}
