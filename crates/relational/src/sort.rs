//! Sort, distinct: permutation-based columnar implementations.

use std::collections::HashSet;

use bda_storage::{Chunk, DataSet, Row, Schema};

use crate::exec::Result;

/// Stable multi-key sort via an index permutation + gather.
pub fn sort_exec(input: &DataSet, keys: &[(String, bool)], out_schema: Schema) -> Result<DataSet> {
    let schema = input.schema().clone();
    let chunk = input.to_rows_chunk()?;
    let key_idx: Vec<(usize, bool)> =
        keys.iter()
            .map(|(k, d)| Ok((schema.index_of(k)?, *d)))
            .collect::<std::result::Result<_, bda_storage::StorageError>>()?;
    let mut perm: Vec<usize> = (0..chunk.len()).collect();
    perm.sort_by(|&a, &b| {
        for &(i, desc) in &key_idx {
            let ord = chunk.column(i).get(a).total_cmp(&chunk.column(i).get(b));
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(DataSet::new(
        out_schema,
        vec![Chunk::Rows(chunk.take(&perm))],
    ))
}

/// Duplicate elimination preserving first-occurrence order.
pub fn distinct_exec(input: &DataSet, out_schema: Schema) -> Result<DataSet> {
    let chunk = input.to_rows_chunk()?;
    let mut seen: HashSet<Row> = HashSet::with_capacity(chunk.len());
    let mut keep: Vec<usize> = Vec::new();
    for i in 0..chunk.len() {
        if seen.insert(chunk.row(i)) {
            keep.push(i);
        }
    }
    let out = chunk.take(&keep);
    Ok(DataSet::new(out_schema, vec![Chunk::Rows(out)]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_storage::{Column, Value};

    fn data() -> DataSet {
        DataSet::from_columns(vec![
            ("k", Column::from(vec![2i64, 1, 2, 1])),
            ("s", Column::from(vec!["b", "z", "a", "z"])),
        ])
        .unwrap()
    }

    #[test]
    fn multi_key_sort_with_directions() {
        let ds = data();
        let out = sort_exec(
            &ds,
            &[("k".into(), false), ("s".into(), true)],
            ds.schema().clone(),
        )
        .unwrap();
        let rows = out.rows().unwrap();
        assert_eq!(rows[0], Row(vec![Value::Int(1), Value::from("z")]));
        assert_eq!(rows[2], Row(vec![Value::Int(2), Value::from("b")]));
        assert_eq!(rows[3], Row(vec![Value::Int(2), Value::from("a")]));
    }

    #[test]
    fn sort_is_stable() {
        let ds = DataSet::from_columns(vec![
            ("k", Column::from(vec![1i64, 1, 1])),
            ("tag", Column::from(vec!["first", "second", "third"])),
        ])
        .unwrap();
        let out = sort_exec(&ds, &[("k".into(), false)], ds.schema().clone()).unwrap();
        let tags: Vec<Value> = out
            .rows()
            .unwrap()
            .iter()
            .map(|r| r.get(1).clone())
            .collect();
        assert_eq!(
            tags,
            vec![
                Value::from("first"),
                Value::from("second"),
                Value::from("third")
            ]
        );
    }

    #[test]
    fn distinct_keeps_first_occurrence() {
        let ds = DataSet::from_columns(vec![("k", Column::from(vec![3i64, 1, 3, 1, 2]))]).unwrap();
        let out = distinct_exec(&ds, ds.schema().clone()).unwrap();
        let ks: Vec<Value> = out
            .rows()
            .unwrap()
            .iter()
            .map(|r| r.get(0).clone())
            .collect();
        assert_eq!(ks, vec![Value::Int(3), Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn distinct_handles_nulls_and_floats() {
        let ds = DataSet::from_rows(
            bda_storage::Schema::new(vec![bda_storage::Field::value(
                "x",
                bda_storage::DataType::Float64,
            )])
            .unwrap(),
            &[
                Row(vec![Value::Null]),
                Row(vec![Value::Float(1.0)]),
                Row(vec![Value::Null]),
                Row(vec![Value::Float(1.0)]),
            ],
        )
        .unwrap();
        let out = distinct_exec(&ds, ds.schema().clone()).unwrap();
        assert_eq!(out.num_rows(), 2);
    }
}
