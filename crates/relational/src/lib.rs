//! # `bda-relational`: "RelStore", the relational back-end Provider
//!
//! A columnar relational engine playing the role of the SQL-server-class
//! LINQ Provider from the paper. It executes the base relational algebra
//! (scan/filter/project/join/aggregate/set ops/sort/limit) plus generic
//! control iteration, with vectorized expression evaluation, hash joins
//! and hash aggregation. It has **no** native array or graph intent
//! operators — those reach it only in lowered form, which is exactly what
//! experiments F1/F4 exercise.

pub mod aggregate;
pub mod exec;
pub mod join;
pub mod meta;
pub mod parallel;
pub mod sort;

use bda_core::{CapabilitySet, CoreError, OpKind, Plan, Provider};
use bda_storage::{DataSet, IndexKind, IndexSpec, Schema, TableStats};
use meta::{MetaMap, TableMeta};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The relational engine.
pub struct RelationalEngine {
    name: String,
    tables: RwLock<BTreeMap<String, DataSet>>,
    /// Load-time metadata per table (zone maps, table stats, indexes).
    metas: RwLock<MetaMap>,
    /// Gates *use* of statistics at query time (metadata is always
    /// maintained, so flipping this is purely a planner/executor switch
    /// — the knob the differential harness and F11 ablation turn).
    stats_enabled: AtomicBool,
}

impl RelationalEngine {
    /// An empty engine named `name`.
    pub fn new(name: impl Into<String>) -> RelationalEngine {
        RelationalEngine {
            name: name.into(),
            tables: RwLock::new(BTreeMap::new()),
            metas: RwLock::new(Arc::new(BTreeMap::new())),
            stats_enabled: AtomicBool::new(bda_core::stats_from_env()),
        }
    }

    /// Enable or disable statistics-driven execution (zone-map pruning
    /// and index lowering) for this engine.
    pub fn set_stats_enabled(&self, on: bool) {
        self.stats_enabled.store(on, Ordering::Relaxed);
    }

    /// Is statistics-driven execution on?
    pub fn stats_enabled(&self) -> bool {
        self.stats_enabled.load(Ordering::Relaxed)
    }

    /// Recompute one table's metadata and publish a fresh snapshot.
    fn publish_meta(&self, name: &str, data: &DataSet, specs: &[IndexSpec]) -> Result<(), CoreError> {
        let computed = Arc::new(TableMeta::compute(data, specs)?);
        let mut metas = self.metas.write();
        let mut next = (**metas).clone();
        next.insert(name.to_string(), computed);
        *metas = Arc::new(next);
        Ok(())
    }

    fn drop_meta(&self, name: &str) {
        let mut metas = self.metas.write();
        if metas.contains_key(name) {
            let mut next = (**metas).clone();
            next.remove(name);
            *metas = Arc::new(next);
        }
    }

    /// The capability set of every relational engine instance.
    pub fn static_capabilities() -> CapabilitySet {
        CapabilitySet::from_ops(&[
            OpKind::Scan,
            OpKind::Values,
            OpKind::Range,
            OpKind::IterState,
            OpKind::Select,
            OpKind::Project,
            OpKind::Join,
            OpKind::Aggregate,
            OpKind::Union,
            OpKind::Distinct,
            OpKind::Sort,
            OpKind::Limit,
            OpKind::Rename,
            OpKind::Dice,
            OpKind::TagDims,
            OpKind::UntagDims,
            OpKind::Iterate,
            // Partition-parallel execution: advertising Exchange/Merge
            // tells the planner this engine runs partitioned kernels.
            OpKind::Exchange,
            OpKind::Merge,
        ])
    }

    /// Look up a table (cloned snapshot).
    pub fn table(&self, name: &str) -> Option<DataSet> {
        self.tables.read().get(name).cloned()
    }
}

impl Provider for RelationalEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> CapabilitySet {
        Self::static_capabilities()
    }

    fn catalog(&self) -> Vec<(String, Schema)> {
        self.tables
            .read()
            .iter()
            .map(|(n, ds)| (n.clone(), ds.schema().clone()))
            .collect()
    }

    fn execute(&self, plan: &Plan) -> Result<DataSet, CoreError> {
        let unsupported = self.capabilities().unsupported_in(plan);
        if !unsupported.is_empty() {
            return Err(CoreError::Unsupported {
                provider: self.name.clone(),
                op: unsupported
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", "),
            });
        }
        let tables = self.tables.read();
        // Statistics reach the recursive executor through a thread-local
        // snapshot; when disabled nothing is installed and every scan
        // takes the plain path.
        let _meta_scope = self
            .stats_enabled()
            .then(|| meta::install(self.metas.read().clone()));
        exec::execute(plan, &tables, None)
    }

    fn store(&self, name: &str, data: DataSet) -> Result<(), CoreError> {
        // Load-time statistics: recompute the table's metadata on every
        // store, carrying existing index specs across the re-store.
        let specs = self
            .metas
            .read()
            .get(name)
            .map(|m| m.specs())
            .unwrap_or_default();
        self.publish_meta(name, &data, &specs)?;
        self.tables.write().insert(name.to_string(), data);
        Ok(())
    }

    fn remove(&self, name: &str) {
        self.tables.write().remove(name);
        self.drop_meta(name);
    }

    fn table_stats(&self, name: &str) -> Option<TableStats> {
        self.metas.read().get(name).map(|m| m.stats.clone())
    }

    fn build_index(&self, dataset: &str, column: &str, kind: IndexKind) -> Result<(), CoreError> {
        let tables = self.tables.read();
        let ds = tables
            .get(dataset)
            .ok_or_else(|| CoreError::UnknownDataset(dataset.to_string()))?;
        ds.schema().index_of(column)?;
        let mut specs: Vec<IndexSpec> = self
            .metas
            .read()
            .get(dataset)
            .map(|m| m.specs())
            .unwrap_or_default();
        specs.retain(|s| s.column != column);
        specs.push(IndexSpec {
            column: column.to_string(),
            kind,
        });
        self.publish_meta(dataset, ds, &specs)
    }

    fn index_specs(&self, dataset: &str) -> Vec<IndexSpec> {
        self.metas
            .read()
            .get(dataset)
            .map(|m| m.specs())
            .unwrap_or_default()
    }

    fn index_fingerprint(&self, dataset: &str, column: &str) -> Option<u64> {
        self.metas
            .read()
            .get(dataset)
            .and_then(|m| m.indexes.get(column))
            .map(|i| i.fingerprint())
    }

    fn row_count_of(&self, name: &str) -> Option<usize> {
        self.tables.read().get(name).map(|ds| ds.num_rows())
    }

    fn execute_traced(
        &self,
        plan: &Plan,
        ctx: &bda_obs::TraceContext,
    ) -> Result<(DataSet, Vec<bda_obs::Span>), CoreError> {
        let tracer = bda_obs::Tracer::with_trace_id(ctx.trace_id);
        let _scope = bda_obs::scope::install(&tracer, &self.name, None);
        let out = self.execute(plan)?;
        Ok((out, tracer.take_spans()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{col, lit};
    use bda_storage::Column;

    fn engine_with_sales() -> RelationalEngine {
        let e = RelationalEngine::new("rel");
        let ds = DataSet::from_columns(vec![
            ("region", Column::from(vec!["w", "e", "w"])),
            ("amount", Column::from(vec![10i64, 20, 30])),
        ])
        .unwrap();
        e.store("sales", ds).unwrap();
        e
    }

    #[test]
    fn provider_basics() {
        let e = engine_with_sales();
        assert_eq!(e.name(), "rel");
        assert_eq!(e.catalog().len(), 1);
        assert!(e.capabilities().supports(OpKind::Join));
        assert!(!e.capabilities().supports(OpKind::MatMul));
    }

    #[test]
    fn executes_supported_plans() {
        let e = engine_with_sales();
        let schema = e.schema_of("sales").unwrap();
        let plan = Plan::scan("sales", schema).select(col("amount").gt(lit(15i64)));
        let out = e.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn rejects_intent_ops() {
        let e = engine_with_sales();
        let m = bda_storage::dataset::matrix_dataset(2, 2, vec![1., 2., 3., 4.]).unwrap();
        e.store("m", m.clone()).unwrap();
        let plan = Plan::scan("m", m.schema().clone()).matmul(Plan::scan("m", m.schema().clone()));
        let err = e.execute(&plan).unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn table_stats_follow_store_and_remove() {
        let e = engine_with_sales();
        let stats = e.table_stats("sales").unwrap();
        assert_eq!(stats.row_count, 3);
        assert_eq!(
            stats.column("amount").unwrap().max,
            Some(bda_storage::Value::Int(30))
        );
        e.remove("sales");
        assert!(e.table_stats("sales").is_none());
    }

    #[test]
    fn build_index_survives_restore_and_fingerprints_deterministically() {
        let e = engine_with_sales();
        e.build_index("sales", "amount", IndexKind::Sorted).unwrap();
        assert_eq!(e.index_specs("sales").len(), 1);
        let before = e.index_fingerprint("sales", "amount").unwrap();
        // Re-storing the same data rebuilds the index to the same shape.
        let ds = e.table("sales").unwrap();
        e.store("sales", ds).unwrap();
        assert_eq!(e.index_fingerprint("sales", "amount"), Some(before));
        // Unknown dataset / column are loud.
        assert!(e.build_index("nope", "amount", IndexKind::Hash).is_err());
        assert!(e.build_index("sales", "nope", IndexKind::Hash).is_err());
        assert!(e.index_fingerprint("sales", "region").is_none());
    }

    #[test]
    fn pruned_execution_matches_plain_execution() {
        let e = engine_with_sales();
        // Multi-chunk table so zone maps have something to skip.
        let mut ds = DataSet::from_columns(vec![("k", Column::from(vec![1i64, 2, 3]))]).unwrap();
        let hi = DataSet::from_columns(vec![("k", Column::from(vec![100i64, 200]))]).unwrap();
        ds.push_chunk(hi.chunks()[0].clone());
        e.store("t", ds).unwrap();
        let plan =
            Plan::scan("t", e.schema_of("t").unwrap()).select(col("k").gt(lit(50i64)));
        e.set_stats_enabled(true);
        let pruned = e.execute(&plan).unwrap();
        e.set_stats_enabled(false);
        let plain = e.execute(&plan).unwrap();
        assert_eq!(
            pruned.normalized_rows().unwrap(),
            plain.normalized_rows().unwrap()
        );
        assert_eq!(pruned.num_rows(), 2);
        // Index path agrees too.
        e.set_stats_enabled(true);
        e.build_index("t", "k", IndexKind::Hash).unwrap();
        let eq_plan = Plan::scan("t", e.schema_of("t").unwrap()).select(col("k").eq(lit(200i64)));
        assert_eq!(e.execute(&eq_plan).unwrap().num_rows(), 1);
    }

    #[test]
    fn store_overwrites_and_remove_drops() {
        let e = engine_with_sales();
        let small = DataSet::from_columns(vec![("region", Column::from(vec!["x"]))]).unwrap();
        e.store("sales", small.clone()).unwrap();
        assert_eq!(e.table("sales").unwrap().num_rows(), 1);
        e.remove("sales");
        assert!(e.table("sales").is_none());
    }
}
