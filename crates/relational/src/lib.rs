//! # `bda-relational`: "RelStore", the relational back-end Provider
//!
//! A columnar relational engine playing the role of the SQL-server-class
//! LINQ Provider from the paper. It executes the base relational algebra
//! (scan/filter/project/join/aggregate/set ops/sort/limit) plus generic
//! control iteration, with vectorized expression evaluation, hash joins
//! and hash aggregation. It has **no** native array or graph intent
//! operators — those reach it only in lowered form, which is exactly what
//! experiments F1/F4 exercise.

pub mod aggregate;
pub mod exec;
pub mod join;
pub mod parallel;
pub mod sort;

use bda_core::{CapabilitySet, CoreError, OpKind, Plan, Provider};
use bda_storage::{DataSet, Schema};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// The relational engine.
pub struct RelationalEngine {
    name: String,
    tables: RwLock<BTreeMap<String, DataSet>>,
}

impl RelationalEngine {
    /// An empty engine named `name`.
    pub fn new(name: impl Into<String>) -> RelationalEngine {
        RelationalEngine {
            name: name.into(),
            tables: RwLock::new(BTreeMap::new()),
        }
    }

    /// The capability set of every relational engine instance.
    pub fn static_capabilities() -> CapabilitySet {
        CapabilitySet::from_ops(&[
            OpKind::Scan,
            OpKind::Values,
            OpKind::Range,
            OpKind::IterState,
            OpKind::Select,
            OpKind::Project,
            OpKind::Join,
            OpKind::Aggregate,
            OpKind::Union,
            OpKind::Distinct,
            OpKind::Sort,
            OpKind::Limit,
            OpKind::Rename,
            OpKind::Dice,
            OpKind::TagDims,
            OpKind::UntagDims,
            OpKind::Iterate,
            // Partition-parallel execution: advertising Exchange/Merge
            // tells the planner this engine runs partitioned kernels.
            OpKind::Exchange,
            OpKind::Merge,
        ])
    }

    /// Look up a table (cloned snapshot).
    pub fn table(&self, name: &str) -> Option<DataSet> {
        self.tables.read().get(name).cloned()
    }
}

impl Provider for RelationalEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> CapabilitySet {
        Self::static_capabilities()
    }

    fn catalog(&self) -> Vec<(String, Schema)> {
        self.tables
            .read()
            .iter()
            .map(|(n, ds)| (n.clone(), ds.schema().clone()))
            .collect()
    }

    fn execute(&self, plan: &Plan) -> Result<DataSet, CoreError> {
        let unsupported = self.capabilities().unsupported_in(plan);
        if !unsupported.is_empty() {
            return Err(CoreError::Unsupported {
                provider: self.name.clone(),
                op: unsupported
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", "),
            });
        }
        let tables = self.tables.read();
        exec::execute(plan, &tables, None)
    }

    fn store(&self, name: &str, data: DataSet) -> Result<(), CoreError> {
        self.tables.write().insert(name.to_string(), data);
        Ok(())
    }

    fn remove(&self, name: &str) {
        self.tables.write().remove(name);
    }

    fn row_count_of(&self, name: &str) -> Option<usize> {
        self.tables.read().get(name).map(|ds| ds.num_rows())
    }

    fn execute_traced(
        &self,
        plan: &Plan,
        ctx: &bda_obs::TraceContext,
    ) -> Result<(DataSet, Vec<bda_obs::Span>), CoreError> {
        let tracer = bda_obs::Tracer::with_trace_id(ctx.trace_id);
        let _scope = bda_obs::scope::install(&tracer, &self.name, None);
        let out = self.execute(plan)?;
        Ok((out, tracer.take_spans()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{col, lit};
    use bda_storage::Column;

    fn engine_with_sales() -> RelationalEngine {
        let e = RelationalEngine::new("rel");
        let ds = DataSet::from_columns(vec![
            ("region", Column::from(vec!["w", "e", "w"])),
            ("amount", Column::from(vec![10i64, 20, 30])),
        ])
        .unwrap();
        e.store("sales", ds).unwrap();
        e
    }

    #[test]
    fn provider_basics() {
        let e = engine_with_sales();
        assert_eq!(e.name(), "rel");
        assert_eq!(e.catalog().len(), 1);
        assert!(e.capabilities().supports(OpKind::Join));
        assert!(!e.capabilities().supports(OpKind::MatMul));
    }

    #[test]
    fn executes_supported_plans() {
        let e = engine_with_sales();
        let schema = e.schema_of("sales").unwrap();
        let plan = Plan::scan("sales", schema).select(col("amount").gt(lit(15i64)));
        let out = e.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn rejects_intent_ops() {
        let e = engine_with_sales();
        let m = bda_storage::dataset::matrix_dataset(2, 2, vec![1., 2., 3., 4.]).unwrap();
        e.store("m", m.clone()).unwrap();
        let plan = Plan::scan("m", m.schema().clone()).matmul(Plan::scan("m", m.schema().clone()));
        let err = e.execute(&plan).unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn store_overwrites_and_remove_drops() {
        let e = engine_with_sales();
        let small = DataSet::from_columns(vec![("region", Column::from(vec!["x"]))]).unwrap();
        e.store("sales", small.clone()).unwrap();
        assert_eq!(e.table("sales").unwrap().num_rows(), 1);
        e.remove("sales");
        assert!(e.table("sales").is_none());
    }
}
