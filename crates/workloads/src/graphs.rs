//! Random directed graphs for the graph-analytics experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bda_core::infer::edge_schema;
use bda_storage::{DataSet, Row, Value};

/// Parameters for the random-graph generator.
#[derive(Debug, Clone, Copy)]
pub struct GraphSpec {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of directed edges (before deduplication).
    pub edges: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphSpec {
    fn default() -> Self {
        GraphSpec {
            vertices: 1_000,
            edges: 5_000,
            seed: 42,
        }
    }
}

/// Generate a uniform random directed graph with **no dangling vertices**
/// (every vertex gets at least one out-edge), so PageRank remains a
/// probability distribution under the algebra's defining semantics.
/// Self-loops are avoided. Returns the edge list and its dataset form.
pub fn random_graph(spec: GraphSpec) -> (Vec<(i64, i64)>, DataSet) {
    assert!(spec.vertices >= 2, "need at least two vertices");
    let n = spec.vertices as i64;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut edges = Vec::with_capacity(spec.edges + spec.vertices);
    // One guaranteed out-edge per vertex.
    for v in 0..n {
        let mut d = rng.gen_range(0..n);
        if d == v {
            d = (v + 1) % n;
        }
        edges.push((v, d));
    }
    // Remaining edges uniform.
    while edges.len() < spec.edges.max(spec.vertices) {
        let s = rng.gen_range(0..n);
        let mut d = rng.gen_range(0..n);
        if d == s {
            d = (s + 1) % n;
        }
        edges.push((s, d));
    }
    let rows: Vec<Row> = edges
        .iter()
        .map(|&(s, d)| Row(vec![Value::Int(s), Value::Int(d)]))
        .collect();
    let ds = DataSet::from_rows(edge_schema(), &rows).expect("edge schema");
    (edges, ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_dangling_no_self_loops() {
        let (edges, ds) = random_graph(GraphSpec {
            vertices: 50,
            edges: 200,
            seed: 3,
        });
        assert_eq!(ds.num_rows(), edges.len());
        let mut has_out = [false; 50];
        for &(s, d) in &edges {
            assert_ne!(s, d, "self loop");
            has_out[s as usize] = true;
            assert!((0..50).contains(&d));
        }
        assert!(has_out.iter().all(|&b| b), "dangling vertex");
    }

    #[test]
    fn deterministic() {
        let spec = GraphSpec {
            vertices: 20,
            edges: 60,
            seed: 9,
        };
        assert_eq!(random_graph(spec).0, random_graph(spec).0);
        assert_ne!(
            random_graph(spec).0,
            random_graph(GraphSpec { seed: 10, ..spec }).0
        );
    }
}
