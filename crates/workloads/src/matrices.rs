//! Random and structured matrices for the linear-algebra experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bda_storage::dataset::matrix_dataset;
use bda_storage::DataSet;

/// A dense `rows × cols` matrix dataset with entries uniform in
/// `[-1, 1)`.
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> DataSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    matrix_dataset(rows, cols, data).expect("matrix dataset")
}

/// A banded `n × n` matrix: entry `(i, j)` is nonzero iff
/// `|i - j| <= bandwidth`, with value `1 / (1 + |i - j|)`.
/// Diagonally dominant enough for stable power iteration.
pub fn band_matrix(n: usize, bandwidth: usize) -> DataSet {
    let mut data = vec![0.0f64; n * n];
    for i in 0..n {
        let lo = i.saturating_sub(bandwidth);
        let hi = (i + bandwidth + 1).min(n);
        for j in lo..hi {
            let d = i.abs_diff(j);
            data[i * n + j] = 1.0 / (1.0 + d as f64);
        }
    }
    matrix_dataset(n, n, data).expect("matrix dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_storage::dataset::dataset_matrix;

    #[test]
    fn random_matrix_shape_and_range() {
        let ds = random_matrix(3, 5, 11);
        let (r, c, data) = dataset_matrix(&ds).unwrap();
        assert_eq!((r, c), (3, 5));
        assert!(data.iter().all(|v| (-1.0..1.0).contains(v)));
        // Deterministic per seed.
        let (_, _, again) = dataset_matrix(&random_matrix(3, 5, 11)).unwrap();
        assert_eq!(data, again);
    }

    #[test]
    fn band_matrix_structure() {
        let ds = band_matrix(5, 1);
        let (_, _, data) = dataset_matrix(&ds).unwrap();
        assert_eq!(data[0], 1.0); // diagonal
        assert_eq!(data[1], 0.5); // first off-diagonal
        assert_eq!(data[2], 0.0); // outside the band
        assert_eq!(data[5], 0.5); // symmetric
    }
}
