//! Sensor time-series arrays: the workload that motivates the fused
//! tabular/array model (dimension-tagged sensor and time axes, scalar
//! readings).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bda_storage::{DataSet, Field, Row, Schema, Value};

/// Parameters for the sensor-array generator.
#[derive(Debug, Clone, Copy)]
pub struct SensorSpec {
    /// Number of sensors (dimension `sensor` in `[0, sensors)`).
    pub sensors: usize,
    /// Number of ticks (dimension `t` in `[0, ticks)`).
    pub ticks: usize,
    /// Fraction of cells that are missing (sparse array), in `[0, 1)`.
    pub missing: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SensorSpec {
    fn default() -> Self {
        SensorSpec {
            sensors: 16,
            ticks: 256,
            missing: 0.0,
            seed: 42,
        }
    }
}

/// Schema: `([sensor], [t], reading: f64)`.
pub fn sensor_schema(sensors: usize, ticks: usize) -> Schema {
    Schema::new(vec![
        Field::dimension_bounded("sensor", 0, sensors as i64),
        Field::dimension_bounded("t", 0, ticks as i64),
        Field::value("reading", bda_storage::DataType::Float64),
    ])
    .expect("sensor schema")
}

/// Generate a sensor array: per-sensor baseline + daily-ish sinusoid +
/// noise, with a `missing` fraction of cells absent.
pub fn sensor_array(spec: SensorSpec) -> DataSet {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let schema = sensor_schema(spec.sensors, spec.ticks);
    let mut rows = Vec::with_capacity(spec.sensors * spec.ticks);
    for s in 0..spec.sensors {
        let baseline = 15.0 + rng.gen_range(-5.0..5.0);
        let amplitude = 3.0 + rng.gen_range(0.0..2.0);
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        for t in 0..spec.ticks {
            if spec.missing > 0.0 && rng.gen_bool(spec.missing) {
                continue;
            }
            let season = amplitude * ((t as f64 / 24.0) * std::f64::consts::TAU + phase).sin();
            let noise = rng.gen_range(-0.5..0.5);
            rows.push(Row(vec![
                Value::Int(s as i64),
                Value::Int(t as i64),
                Value::Float(baseline + season + noise),
            ]));
        }
    }
    DataSet::from_rows(schema, &rows).expect("sensor rows")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_array_has_all_cells() {
        let ds = sensor_array(SensorSpec {
            sensors: 4,
            ticks: 10,
            missing: 0.0,
            seed: 1,
        });
        assert_eq!(ds.num_rows(), 40);
        assert_eq!(ds.schema().ndims(), 2);
        // Densifiable.
        assert!(ds.to_dense().is_ok());
    }

    #[test]
    fn sparse_array_drops_cells() {
        let ds = sensor_array(SensorSpec {
            sensors: 8,
            ticks: 100,
            missing: 0.3,
            seed: 2,
        });
        assert!(ds.num_rows() < 800);
        assert!(ds.num_rows() > 400, "30% missing should leave most cells");
    }

    #[test]
    fn readings_are_physical() {
        let ds = sensor_array(SensorSpec::default());
        for r in ds.rows().unwrap() {
            let v = r.get(2).as_float().unwrap();
            assert!((0.0..40.0).contains(&v), "{v}");
        }
    }
}
