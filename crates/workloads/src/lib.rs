//! # `bda-workloads`: seeded synthetic workload generators
//!
//! The paper's evaluation setting assumes production-scale datasets we do
//! not have; these generators produce the synthetic equivalents the
//! experiments run on. Every generator takes an explicit seed and is
//! fully deterministic, so experiment outputs are reproducible
//! bit-for-bit (modulo floating-point summation order inside engines).

pub mod graphs;
pub mod matrices;
pub mod sensors;
pub mod star;

pub use graphs::{random_graph, GraphSpec};
pub use matrices::{band_matrix, random_matrix};
pub use sensors::{sensor_array, SensorSpec};
pub use star::{star_schema, StarSpec};
