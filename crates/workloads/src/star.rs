//! A retail star schema: one fact table, three dimension tables.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bda_storage::{Column, DataSet};

/// Parameters for the star-schema generator.
#[derive(Debug, Clone, Copy)]
pub struct StarSpec {
    /// Fact rows.
    pub sales: usize,
    /// Customer dimension rows.
    pub customers: usize,
    /// Product dimension rows.
    pub products: usize,
    /// Store dimension rows.
    pub stores: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StarSpec {
    fn default() -> Self {
        StarSpec {
            sales: 10_000,
            customers: 500,
            products: 100,
            stores: 20,
            seed: 42,
        }
    }
}

const REGIONS: [&str; 4] = ["north", "south", "east", "west"];
const SEGMENTS: [&str; 3] = ["consumer", "corporate", "home"];
const CATEGORIES: [&str; 5] = ["grocery", "tools", "toys", "media", "apparel"];

/// Generate `(sales, customers, products, stores)`.
///
/// Schemas:
/// * `sales(customer_id: i64, product_id: i64, store_id: i64, amount: f64, quantity: i64)`
/// * `customers(customer_id: i64, region: utf8, segment: utf8)`
/// * `products(product_id: i64, category: utf8, price: f64)`
/// * `stores(store_id: i64, region: utf8)`
pub fn star_schema(spec: StarSpec) -> (DataSet, DataSet, DataSet, DataSet) {
    let mut rng = StdRng::seed_from_u64(spec.seed);

    let customers = DataSet::from_columns(vec![
        (
            "customer_id",
            Column::from((0..spec.customers as i64).collect::<Vec<i64>>()),
        ),
        (
            "region",
            Column::from(
                (0..spec.customers)
                    .map(|_| REGIONS[rng.gen_range(0..REGIONS.len())])
                    .collect::<Vec<&str>>(),
            ),
        ),
        (
            "segment",
            Column::from(
                (0..spec.customers)
                    .map(|_| SEGMENTS[rng.gen_range(0..SEGMENTS.len())])
                    .collect::<Vec<&str>>(),
            ),
        ),
    ])
    .expect("customers schema");

    let products = DataSet::from_columns(vec![
        (
            "product_id",
            Column::from((0..spec.products as i64).collect::<Vec<i64>>()),
        ),
        (
            "category",
            Column::from(
                (0..spec.products)
                    .map(|_| CATEGORIES[rng.gen_range(0..CATEGORIES.len())])
                    .collect::<Vec<&str>>(),
            ),
        ),
        (
            "price",
            Column::from(
                (0..spec.products)
                    .map(|_| (rng.gen_range(100..20_000) as f64) / 100.0)
                    .collect::<Vec<f64>>(),
            ),
        ),
    ])
    .expect("products schema");

    let stores = DataSet::from_columns(vec![
        (
            "store_id",
            Column::from((0..spec.stores as i64).collect::<Vec<i64>>()),
        ),
        (
            "region",
            Column::from(
                (0..spec.stores)
                    .map(|_| REGIONS[rng.gen_range(0..REGIONS.len())])
                    .collect::<Vec<&str>>(),
            ),
        ),
    ])
    .expect("stores schema");

    let sales = DataSet::from_columns(vec![
        (
            "customer_id",
            Column::from(
                (0..spec.sales)
                    .map(|_| rng.gen_range(0..spec.customers as i64))
                    .collect::<Vec<i64>>(),
            ),
        ),
        (
            "product_id",
            Column::from(
                (0..spec.sales)
                    .map(|_| rng.gen_range(0..spec.products as i64))
                    .collect::<Vec<i64>>(),
            ),
        ),
        (
            "store_id",
            Column::from(
                (0..spec.sales)
                    .map(|_| rng.gen_range(0..spec.stores as i64))
                    .collect::<Vec<i64>>(),
            ),
        ),
        (
            "amount",
            Column::from(
                (0..spec.sales)
                    .map(|_| (rng.gen_range(50..50_000) as f64) / 100.0)
                    .collect::<Vec<f64>>(),
            ),
        ),
        (
            "quantity",
            Column::from(
                (0..spec.sales)
                    .map(|_| rng.gen_range(1..10i64))
                    .collect::<Vec<i64>>(),
            ),
        ),
    ])
    .expect("sales schema");

    (sales, customers, products, stores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let spec = StarSpec {
            sales: 100,
            customers: 10,
            products: 5,
            stores: 2,
            seed: 7,
        };
        let (s1, c1, p1, t1) = star_schema(spec);
        assert_eq!(s1.num_rows(), 100);
        assert_eq!(c1.num_rows(), 10);
        assert_eq!(p1.num_rows(), 5);
        assert_eq!(t1.num_rows(), 2);
        let (s2, ..) = star_schema(spec);
        assert!(s1.same_bag(&s2).unwrap(), "same seed, same data");
        let (s3, ..) = star_schema(StarSpec { seed: 8, ..spec });
        assert!(!s1.same_bag(&s3).unwrap(), "different seed, different data");
    }

    #[test]
    fn foreign_keys_in_range() {
        let spec = StarSpec {
            sales: 500,
            customers: 10,
            products: 5,
            stores: 2,
            seed: 1,
        };
        let (sales, ..) = star_schema(spec);
        for r in sales.rows().unwrap() {
            let c = r.get(0).as_int().unwrap();
            let p = r.get(1).as_int().unwrap();
            let s = r.get(2).as_int().unwrap();
            assert!((0..10).contains(&c));
            assert!((0..5).contains(&p));
            assert!((0..2).contains(&s));
            assert!(r.get(3).as_float().unwrap() > 0.0);
        }
    }
}
