//! The BDL parser: pipe-syntax text → algebra plans.
//!
//! ```text
//! scan sales
//! | where amount > 10 and region = 'west'
//! | join (scan customers) on customer_id = customer_id
//! | groupby region: sum(amount) as total, count(*) as n
//! | select region, total / cast(n as f64) as mean
//! | orderby total desc
//! | limit 5
//! ```
//!
//! Stages: `where`, `select`, `join`/`leftjoin`/`semijoin`/`antijoin` ... `on`,
//! `groupby ... : aggs`, `agg` (global aggregates), `orderby`, `limit`,
//! `skip`, `distinct`, `union`, `rename`, `dice`, `slice`, `permute`,
//! `window ... : aggs`, `fill`, `tag`, `untag`, `matmul`, `elemwise`,
//! `pagerank`, `components`, `triangles`, `degrees`, `bfs SOURCE`.
//! Sources: `scan NAME`,
//! `range NAME lo hi`, or a parenthesized query.

use std::collections::HashMap;
use std::fmt;

use bda_core::{AggExpr, AggFunc, BinOp, Expr, GraphOp, JoinType, Plan, UnOp};
use bda_storage::{DataType, Schema, Value};

use crate::lexer::{tokenize, Tok, Token};

/// Where the parser resolves `scan` schemas.
pub trait SchemaSource {
    /// Schema of the named dataset, if known.
    fn schema_of(&self, name: &str) -> Option<Schema>;
}

impl SchemaSource for HashMap<String, Schema> {
    fn schema_of(&self, name: &str) -> Option<Schema> {
        self.get(name).cloned()
    }
}

impl<F: Fn(&str) -> Option<Schema>> SchemaSource for F {
    fn schema_of(&self, name: &str) -> Option<Schema> {
        self(name)
    }
}

/// A parse/bind failure with a byte offset into the source.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset of the offending token.
    pub pos: usize,
}

impl LangError {
    /// Render the error with a caret under the offending position.
    pub fn render(&self, src: &str) -> String {
        let mut line_start = 0usize;
        let mut line_no = 1usize;
        for (i, c) in src.char_indices() {
            if i >= self.pos {
                break;
            }
            if c == '\n' {
                line_start = i + 1;
                line_no += 1;
            }
        }
        let line_end = src[line_start..]
            .find('\n')
            .map(|o| line_start + o)
            .unwrap_or(src.len());
        let col = self.pos.saturating_sub(line_start);
        format!(
            "error: {}\n  --> line {line_no}, column {}\n   | {}\n   | {}^",
            self.message,
            col + 1,
            &src[line_start..line_end],
            " ".repeat(col)
        )
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.pos)
    }
}

impl std::error::Error for LangError {}

/// Parse a BDL query into an algebra plan, resolving scans against
/// `schemas` and type-checking the result.
pub fn parse_query(src: &str, schemas: &dyn SchemaSource) -> Result<Plan, LangError> {
    let tokens = tokenize(src).map_err(|e| LangError {
        message: e.message,
        pos: e.pos,
    })?;
    let mut p = Parser {
        tokens,
        pos: 0,
        schemas,
    };
    let plan = p.query()?;
    p.expect_eof()?;
    // Bind-time type check with a source-level error.
    bda_core::infer_schema(&plan).map_err(|e| LangError {
        message: e.to_string(),
        pos: 0,
    })?;
    Ok(plan)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    schemas: &'a dyn SchemaSource,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, LangError> {
        Err(LangError {
            message: message.into(),
            pos: self.peek().pos,
        })
    }

    fn eat(&mut self, tok: &Tok) -> Result<(), LangError> {
        if &self.peek().tok == tok {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek().tok))
        }
    }

    /// Consume a keyword (case-insensitive identifier) if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Tok::Ident(s) = &self.peek().tok {
            if s.eq_ignore_ascii_case(kw) {
                self.next();
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), LangError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {}", self.peek().tok))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, LangError> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected {what}, found {other}")),
        }
    }

    fn int(&mut self, what: &str) -> Result<i64, LangError> {
        match self.peek().tok {
            Tok::Int(v) => {
                self.next();
                Ok(v)
            }
            Tok::Minus => {
                self.next();
                match self.peek().tok {
                    Tok::Int(v) => {
                        self.next();
                        Ok(-v)
                    }
                    _ => self.err(format!("expected {what}")),
                }
            }
            _ => self.err(format!("expected {what}, found {}", self.peek().tok)),
        }
    }

    fn float(&mut self, what: &str) -> Result<f64, LangError> {
        match self.peek().tok {
            Tok::Float(v) => {
                self.next();
                Ok(v)
            }
            Tok::Int(v) => {
                self.next();
                Ok(v as f64)
            }
            _ => self.err(format!("expected {what}, found {}", self.peek().tok)),
        }
    }

    fn expect_eof(&mut self) -> Result<(), LangError> {
        if self.peek().tok == Tok::Eof {
            Ok(())
        } else {
            self.err(format!("unexpected trailing input {}", self.peek().tok))
        }
    }

    // --- grammar ------------------------------------------------------------

    fn query(&mut self) -> Result<Plan, LangError> {
        let mut plan = self.source()?;
        while self.peek().tok == Tok::Pipe {
            self.next();
            plan = self.stage(plan)?;
        }
        Ok(plan)
    }

    fn source(&mut self) -> Result<Plan, LangError> {
        if self.peek().tok == Tok::LParen {
            self.next();
            let q = self.query()?;
            self.eat(&Tok::RParen)?;
            return Ok(q);
        }
        if self.eat_kw("scan") {
            let at = self.peek().pos;
            let name = self.ident("dataset name")?;
            let schema = self.schemas.schema_of(&name).ok_or(LangError {
                message: format!("unknown dataset `{name}`"),
                pos: at,
            })?;
            return Ok(Plan::scan(name, schema));
        }
        if self.eat_kw("range") {
            let name = self.ident("dimension name")?;
            let lo = self.int("range start")?;
            let hi = self.int("range end")?;
            return Ok(Plan::Range { name, lo, hi });
        }
        self.err("expected a source: `scan NAME`, `range NAME lo hi`, or `(query)`")
    }

    fn stage(&mut self, input: Plan) -> Result<Plan, LangError> {
        let at = self.peek().pos;
        let kw = self.ident("pipeline stage")?;
        match kw.to_ascii_lowercase().as_str() {
            "where" => Ok(input.select(self.expr()?)),
            "select" => {
                let exprs = self.select_items()?;
                Ok(Plan::Project {
                    input: input.boxed(),
                    exprs,
                })
            }
            "join" | "leftjoin" | "semijoin" | "antijoin" => {
                let jt = match kw.to_ascii_lowercase().as_str() {
                    "join" => JoinType::Inner,
                    "leftjoin" => JoinType::Left,
                    "semijoin" => JoinType::Semi,
                    _ => JoinType::Anti,
                };
                let right = self.source()?;
                self.expect_kw("on")?;
                let mut on = Vec::new();
                loop {
                    let l = self.ident("left join column")?;
                    self.eat(&Tok::Eq)?;
                    let r = self.ident("right join column")?;
                    on.push((l, r));
                    if self.peek().tok != Tok::Comma {
                        break;
                    }
                    self.next();
                }
                Ok(Plan::Join {
                    left: input.boxed(),
                    right: right.boxed(),
                    on,
                    join_type: jt,
                    suffix: "_r".into(),
                })
            }
            "groupby" => {
                let mut keys = Vec::new();
                loop {
                    keys.push(self.ident("grouping column")?);
                    if self.peek().tok == Tok::Comma {
                        self.next();
                    } else {
                        break;
                    }
                }
                self.eat(&Tok::Colon)?;
                let aggs = self.agg_items()?;
                Ok(Plan::Aggregate {
                    input: input.boxed(),
                    group_by: keys,
                    aggs,
                })
            }
            "agg" => {
                let aggs = self.agg_items()?;
                Ok(Plan::Aggregate {
                    input: input.boxed(),
                    group_by: vec![],
                    aggs,
                })
            }
            "orderby" => {
                let mut keys = Vec::new();
                loop {
                    let k = self.ident("sort column")?;
                    let desc = if self.eat_kw("desc") {
                        true
                    } else {
                        self.eat_kw("asc");
                        false
                    };
                    keys.push((k, desc));
                    if self.peek().tok == Tok::Comma {
                        self.next();
                    } else {
                        break;
                    }
                }
                Ok(Plan::Sort {
                    input: input.boxed(),
                    keys,
                })
            }
            "limit" => {
                let n = self.int("row count")?;
                if n < 0 {
                    return Err(LangError {
                        message: "limit must be non-negative".into(),
                        pos: at,
                    });
                }
                Ok(input.limit(n as usize))
            }
            "skip" => {
                let n = self.int("row count")?;
                if n < 0 {
                    return Err(LangError {
                        message: "skip must be non-negative".into(),
                        pos: at,
                    });
                }
                Ok(Plan::Limit {
                    input: input.boxed(),
                    skip: n as usize,
                    fetch: None,
                })
            }
            "distinct" => Ok(input.distinct()),
            "union" => {
                let right = self.source()?;
                Ok(input.union(right))
            }
            "rename" => {
                let mut mapping = Vec::new();
                loop {
                    let old = self.ident("column name")?;
                    self.expect_kw("as")?;
                    let new = self.ident("new column name")?;
                    mapping.push((old, new));
                    if self.peek().tok == Tok::Comma {
                        self.next();
                    } else {
                        break;
                    }
                }
                Ok(Plan::Rename {
                    input: input.boxed(),
                    mapping,
                })
            }
            "dice" => {
                let mut ranges = Vec::new();
                loop {
                    let d = self.ident("dimension")?;
                    let lo = self.int("range start")?;
                    let hi = self.int("range end")?;
                    ranges.push((d, lo, hi));
                    if self.peek().tok == Tok::Comma {
                        self.next();
                    } else {
                        break;
                    }
                }
                Ok(Plan::Dice {
                    input: input.boxed(),
                    ranges,
                })
            }
            "slice" => {
                let dim = self.ident("dimension")?;
                let index = self.int("coordinate")?;
                Ok(Plan::SliceAt {
                    input: input.boxed(),
                    dim,
                    index,
                })
            }
            "permute" => {
                let mut order = Vec::new();
                loop {
                    order.push(self.ident("dimension")?);
                    if self.peek().tok == Tok::Comma {
                        self.next();
                    } else {
                        break;
                    }
                }
                Ok(Plan::Permute {
                    input: input.boxed(),
                    order,
                })
            }
            "window" => {
                let mut radii = Vec::new();
                loop {
                    let d = self.ident("dimension")?;
                    let r = self.int("radius")?;
                    radii.push((d, r));
                    if self.peek().tok == Tok::Comma {
                        self.next();
                    } else {
                        break;
                    }
                }
                self.eat(&Tok::Colon)?;
                let aggs = self.agg_items()?;
                Ok(Plan::Window {
                    input: input.boxed(),
                    radii,
                    aggs,
                })
            }
            "fill" => {
                let v = self.literal()?;
                Ok(Plan::Fill {
                    input: input.boxed(),
                    fill: v,
                })
            }
            "tag" => {
                let mut dims = Vec::new();
                loop {
                    let d = self.ident("column")?;
                    let extent = if matches!(self.peek().tok, Tok::Int(_) | Tok::Minus) {
                        let lo = self.int("extent start")?;
                        let hi = self.int("extent end")?;
                        Some((lo, hi))
                    } else {
                        None
                    };
                    dims.push((d, extent));
                    if self.peek().tok == Tok::Comma {
                        self.next();
                    } else {
                        break;
                    }
                }
                Ok(Plan::TagDims {
                    input: input.boxed(),
                    dims,
                })
            }
            "untag" => Ok(Plan::UntagDims {
                input: input.boxed(),
            }),
            "matmul" => {
                let right = self.source()?;
                Ok(input.matmul(right))
            }
            "elemwise" => {
                let op = match self.next().tok {
                    Tok::Plus => BinOp::Add,
                    Tok::Minus => BinOp::Sub,
                    Tok::Star => BinOp::Mul,
                    Tok::Slash => BinOp::Div,
                    other => {
                        return Err(LangError {
                            message: format!("expected an elemwise operator, found {other}"),
                            pos: at,
                        })
                    }
                };
                let right = self.source()?;
                Ok(input.elemwise(op, right))
            }
            "pagerank" => {
                let damping = self.float("damping factor")?;
                let max_iters = self.int("max iterations")? as usize;
                let epsilon = self.float("epsilon")?;
                Ok(Plan::Graph(GraphOp::PageRank {
                    edges: input.boxed(),
                    damping,
                    max_iters,
                    epsilon,
                }))
            }
            "components" => {
                let max_iters = self.int("max iterations")? as usize;
                Ok(Plan::Graph(GraphOp::ConnectedComponents {
                    edges: input.boxed(),
                    max_iters,
                }))
            }
            "triangles" => Ok(Plan::Graph(GraphOp::TriangleCount {
                edges: input.boxed(),
            })),
            "degrees" => Ok(Plan::Graph(GraphOp::Degrees {
                edges: input.boxed(),
            })),
            "bfs" => {
                let source = self.int("source vertex")?;
                Ok(Plan::Graph(GraphOp::BfsLevels {
                    edges: input.boxed(),
                    source,
                }))
            }
            other => Err(LangError {
                message: format!("unknown pipeline stage `{other}`"),
                pos: at,
            }),
        }
    }

    fn select_items(&mut self) -> Result<Vec<(String, Expr)>, LangError> {
        let mut items = Vec::new();
        loop {
            let at = self.peek().pos;
            let e = self.expr()?;
            let name = if self.eat_kw("as") {
                self.ident("output name")?
            } else if let Expr::Column(c) = &e {
                c.clone()
            } else {
                return Err(LangError {
                    message: "computed select item needs `as NAME`".into(),
                    pos: at,
                });
            };
            items.push((name, e));
            if self.peek().tok == Tok::Comma {
                self.next();
            } else {
                break;
            }
        }
        Ok(items)
    }

    fn agg_items(&mut self) -> Result<Vec<AggExpr>, LangError> {
        let mut items = Vec::new();
        loop {
            let at = self.peek().pos;
            let func_name = self.ident("aggregate function")?;
            let func = match func_name.to_ascii_lowercase().as_str() {
                "count" => AggFunc::Count,
                "sum" => AggFunc::Sum,
                "min" => AggFunc::Min,
                "max" => AggFunc::Max,
                "avg" => AggFunc::Avg,
                other => {
                    return Err(LangError {
                        message: format!("unknown aggregate function `{other}`"),
                        pos: at,
                    })
                }
            };
            self.eat(&Tok::LParen)?;
            let arg = if func == AggFunc::Count && self.peek().tok == Tok::Star {
                self.next();
                None
            } else {
                Some(self.expr()?)
            };
            self.eat(&Tok::RParen)?;
            self.expect_kw("as")?;
            let name = self.ident("aggregate output name")?;
            items.push(AggExpr { func, arg, name });
            if self.peek().tok == Tok::Comma {
                self.next();
            } else {
                break;
            }
        }
        Ok(items)
    }

    // --- expressions (precedence climbing) -----------------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.and_expr()?;
        while self.eat_kw("or") {
            let r = self.and_expr()?;
            e = e.or(r);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.not_expr()?;
        while self.eat_kw("and") {
            let r = self.not_expr()?;
            e = e.and(r);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr, LangError> {
        if self.eat_kw("not") {
            Ok(self.not_expr()?.not())
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let e = self.add_expr()?;
        let op = match self.peek().tok {
            Tok::Eq => Some(BinOp::Eq),
            Tok::Ne => Some(BinOp::Ne),
            Tok::Lt => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let r = self.add_expr()?;
            Ok(Expr::Binary {
                op,
                left: Box::new(e),
                right: Box::new(r),
            })
        } else {
            Ok(e)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.next();
            let r = self.mul_expr()?;
            e = Expr::Binary {
                op,
                left: Box::new(e),
                right: Box::new(r),
            };
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.next();
            let r = self.unary_expr()?;
            e = Expr::Binary {
                op,
                left: Box::new(e),
                right: Box::new(r),
            };
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        if self.peek().tok == Tok::Minus {
            self.next();
            return Ok(self.unary_expr()?.neg());
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let at = self.peek().pos;
        match self.peek().tok.clone() {
            Tok::LParen => {
                self.next();
                let e = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Int(v) => {
                self.next();
                Ok(Expr::Literal(Value::Int(v)))
            }
            Tok::Float(v) => {
                self.next();
                Ok(Expr::Literal(Value::Float(v)))
            }
            Tok::Str(s) => {
                self.next();
                Ok(Expr::Literal(Value::Str(s)))
            }
            Tok::Ident(name) => {
                self.next();
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "true" => return Ok(Expr::Literal(Value::Bool(true))),
                    "false" => return Ok(Expr::Literal(Value::Bool(false))),
                    "null" => return Ok(Expr::Literal(Value::Null)),
                    "cast" => {
                        self.eat(&Tok::LParen)?;
                        let e = self.expr()?;
                        self.expect_kw("as")?;
                        let ty = self.type_name()?;
                        self.eat(&Tok::RParen)?;
                        return Ok(e.cast(ty));
                    }
                    "coalesce" => {
                        self.eat(&Tok::LParen)?;
                        let mut args = vec![self.expr()?];
                        while self.peek().tok == Tok::Comma {
                            self.next();
                            args.push(self.expr()?);
                        }
                        self.eat(&Tok::RParen)?;
                        return Ok(Expr::Coalesce(args));
                    }
                    "case" => {
                        // case when C then R [when ...] [else E] end
                        let mut branches = Vec::new();
                        while self.eat_kw("when") {
                            let w = self.expr()?;
                            self.expect_kw("then")?;
                            let t = self.expr()?;
                            branches.push((w, t));
                        }
                        if branches.is_empty() {
                            return Err(LangError {
                                message: "case needs at least one `when`".into(),
                                pos: at,
                            });
                        }
                        let otherwise = if self.eat_kw("else") {
                            Some(Box::new(self.expr()?))
                        } else {
                            None
                        };
                        self.expect_kw("end")?;
                        return Ok(Expr::Case {
                            branches,
                            otherwise,
                        });
                    }
                    _ => {}
                }
                // Unary function call?
                if self.peek().tok == Tok::LParen {
                    let op = match lower.as_str() {
                        "abs" => Some(UnOp::Abs),
                        "sqrt" => Some(UnOp::Sqrt),
                        "floor" => Some(UnOp::Floor),
                        "exp" => Some(UnOp::Exp),
                        "ln" => Some(UnOp::Ln),
                        "isnull" => Some(UnOp::IsNull),
                        _ => None,
                    };
                    match op {
                        Some(op) => {
                            self.next(); // (
                            let e = self.expr()?;
                            self.eat(&Tok::RParen)?;
                            return Ok(e.unary(op));
                        }
                        None => {
                            return Err(LangError {
                                message: format!("unknown function `{name}`"),
                                pos: at,
                            })
                        }
                    }
                }
                Ok(Expr::Column(name))
            }
            other => Err(LangError {
                message: format!("expected an expression, found {other}"),
                pos: at,
            }),
        }
    }

    /// A literal scalar (for `fill`).
    fn literal(&mut self) -> Result<Value, LangError> {
        let at = self.peek().pos;
        let negate = if self.peek().tok == Tok::Minus {
            self.next();
            true
        } else {
            false
        };
        let v = match self.next().tok {
            Tok::Int(v) => Value::Int(if negate { -v } else { v }),
            Tok::Float(v) => Value::Float(if negate { -v } else { v }),
            Tok::Str(s) if !negate => Value::Str(s),
            Tok::Ident(s) if !negate && s.eq_ignore_ascii_case("true") => Value::Bool(true),
            Tok::Ident(s) if !negate && s.eq_ignore_ascii_case("false") => Value::Bool(false),
            Tok::Ident(s) if !negate && s.eq_ignore_ascii_case("null") => Value::Null,
            other => {
                return Err(LangError {
                    message: format!("expected a literal, found {other}"),
                    pos: at,
                })
            }
        };
        Ok(v)
    }

    fn type_name(&mut self) -> Result<DataType, LangError> {
        let at = self.peek().pos;
        let name = self.ident("type name")?;
        match name.to_ascii_lowercase().as_str() {
            "i64" | "int" => Ok(DataType::Int64),
            "f64" | "float" => Ok(DataType::Float64),
            "bool" => Ok(DataType::Bool),
            "utf8" | "string" | "str" => Ok(DataType::Utf8),
            other => Err(LangError {
                message: format!("unknown type `{other}`"),
                pos: at,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::reference::evaluate;
    use bda_core::OpKind;
    use bda_storage::{Column, DataSet};
    use std::collections::HashMap as Map;

    fn schemas() -> Map<String, Schema> {
        let mut m = Map::new();
        m.insert("sales".to_string(), sales().schema().clone());
        m.insert("customers".to_string(), customers().schema().clone());
        m.insert("edges".to_string(), bda_core::infer::edge_schema());
        m.insert(
            "m".to_string(),
            bda_storage::dataset::matrix_dataset(3, 3, vec![0.0; 9])
                .unwrap()
                .schema()
                .clone(),
        );
        m
    }

    fn sales() -> DataSet {
        DataSet::from_columns(vec![
            ("customer_id", Column::from(vec![0i64, 1, 0, 1])),
            ("amount", Column::from(vec![10.0f64, 20.0, 30.0, 40.0])),
        ])
        .unwrap()
    }

    fn customers() -> DataSet {
        DataSet::from_columns(vec![
            ("customer_id", Column::from(vec![0i64, 1])),
            ("region", Column::from(vec!["west", "east"])),
        ])
        .unwrap()
    }

    fn run(src: &str) -> DataSet {
        let plan = parse_query(src, &schemas()).unwrap_or_else(|e| panic!("{}", e.render(src)));
        let mut data = Map::new();
        data.insert("sales".to_string(), sales());
        data.insert("customers".to_string(), customers());
        evaluate(&plan, &data).unwrap()
    }

    #[test]
    fn full_relational_pipeline() {
        let out = run("scan sales \
             | where amount > 15 \
             | join (scan customers) on customer_id = customer_id \
             | groupby region: sum(amount) as total, count(*) as n \
             | select region, total / cast(n as f64) as mean \
             | orderby mean desc \
             | limit 1");
        let rows = out.rows().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::from("east"));
        assert_eq!(rows[0].get(1), &Value::Float(30.0));
    }

    #[test]
    fn expression_precedence() {
        let plan = parse_query(
            "scan sales | where amount + 1.0 * 2.0 > 11.0 and not isnull(amount)",
            &schemas(),
        )
        .unwrap();
        // 1*2 binds tighter than +.
        let txt = plan.to_string();
        assert!(txt.contains("(amount + (1.0 * 2.0))"), "{txt}");
    }

    #[test]
    fn array_stages_parse() {
        let plan = parse_query(
            "scan m | dice row 0 2, col 0 2 | window row 1, col 1: avg(v) as s",
            &schemas(),
        )
        .unwrap();
        assert!(plan.op_kinds().contains(&OpKind::Window));
        let plan = parse_query("scan m | slice row 1 | untag", &schemas()).unwrap();
        assert!(plan.op_kinds().contains(&OpKind::SliceAt));
        let plan = parse_query("scan m | matmul (scan m)", &schemas()).unwrap();
        assert!(plan.op_kinds().contains(&OpKind::MatMul));
        let plan = parse_query("scan m | elemwise * (scan m)", &schemas()).unwrap();
        assert!(plan.op_kinds().contains(&OpKind::ElemWise));
        let plan = parse_query("range i 0 5 | untag | tag i 0 5", &schemas()).unwrap();
        assert!(plan.op_kinds().contains(&OpKind::TagDims));
    }

    #[test]
    fn graph_stages_parse() {
        let plan = parse_query("scan edges | pagerank 0.85 100 1e-6", &schemas()).unwrap();
        assert!(plan.op_kinds().contains(&OpKind::PageRank));
        let plan = parse_query("scan edges | components 50", &schemas()).unwrap();
        assert!(plan.op_kinds().contains(&OpKind::ConnectedComponents));
        let plan = parse_query("scan edges | triangles", &schemas()).unwrap();
        assert!(plan.op_kinds().contains(&OpKind::TriangleCount));
    }

    #[test]
    fn bfs_stage_parses() {
        let plan = parse_query("scan edges | bfs 3 | orderby level", &schemas()).unwrap();
        assert!(plan.op_kinds().contains(&OpKind::BfsLevels));
        assert!(parse_query("scan edges | bfs", &schemas()).is_err());
    }

    #[test]
    fn unknown_dataset_error_has_position() {
        let src = "scan nope | distinct";
        let err = parse_query(src, &schemas()).unwrap_err();
        assert!(err.message.contains("nope"));
        assert_eq!(err.pos, 5);
        let rendered = err.render(src);
        assert!(rendered.contains("line 1"), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
    }

    #[test]
    fn type_errors_surface() {
        // region is utf8; arithmetic on it must fail at bind time.
        let err = parse_query("scan customers | where region + 1 > 2", &schemas()).unwrap_err();
        assert!(err.message.contains("numeric"), "{err}");
    }

    #[test]
    fn computed_select_requires_as() {
        let err = parse_query("scan sales | select amount * 2", &schemas()).unwrap_err();
        assert!(err.message.contains("as"), "{err}");
    }

    #[test]
    fn semijoin_and_union_and_rename() {
        let out = run(
            "scan sales | semijoin (scan customers | where region = 'west') \
             on customer_id = customer_id",
        );
        assert_eq!(out.num_rows(), 2);
        let out = run("scan sales | union (scan sales) | rename amount as amt");
        assert_eq!(out.num_rows(), 8);
        assert!(out.schema().field("amt").is_ok());
    }

    #[test]
    fn global_agg_stage() {
        let out = run("scan sales | agg sum(amount) as s, max(amount) as m");
        let rows = out.rows().unwrap();
        assert_eq!(rows[0].get(0), &Value::Float(100.0));
        assert_eq!(rows[0].get(1), &Value::Float(40.0));
    }

    #[test]
    fn parenthesized_subquery_source() {
        let out = run("(scan sales | where amount > 25) | distinct");
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn case_when_expression() {
        let out = run("scan sales \
             | select customer_id, \
                      case when amount >= 30.0 then 'big' \
                           when amount >= 20.0 then 'mid' \
                           else 'small' end as bucket");
        let buckets: Vec<Value> = out
            .sorted_rows()
            .unwrap()
            .iter()
            .map(|r| r.get(1).clone())
            .collect();
        assert!(buckets.contains(&Value::from("big")));
        assert!(buckets.contains(&Value::from("small")));
        // A case without `when` is rejected with a position.
        assert!(parse_query("scan sales | select case end as x", &schemas()).is_err());
        // Missing `end` is rejected.
        assert!(parse_query(
            "scan sales | select case when amount > 1.0 then 1 as x",
            &schemas()
        )
        .is_err());
    }

    #[test]
    fn schema_source_closure() {
        let lookup =
            |name: &str| -> Option<Schema> { (name == "sales").then(|| sales().schema().clone()) };
        assert!(parse_query("scan sales", &lookup).is_ok());
        assert!(parse_query("scan other", &lookup).is_err());
    }
}
