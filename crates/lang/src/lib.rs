//! # `bda-lang`: the client language layer
//!
//! The paper notes that with an algebra at the core, "client languages are
//! free to provide syntactic sugar to provide a more declarative
//! specification of queries". This crate provides two such surfaces over
//! the Big Data Algebra:
//!
//! * [`builder`] — a LINQ-flavoured fluent API ([`Query`]) whose method
//!   names deliberately echo the Standard Query Operators (`select`,
//!   `where_`, `order_by`, `take`, ...), extended with the dimension-aware
//!   and intent operators.
//! * [`lexer`] / [`parser`] — **BDL**, a small pipe-syntax text language
//!   (`scan sales | where amount > 10 | groupby region: sum(amount) as t`)
//!   compiled straight into algebra plans, with position-carrying errors.
//!
//! Both produce plain [`bda_core::Plan`] values; nothing downstream knows
//! or cares which surface a plan came from.

pub mod builder;
pub mod lexer;
pub mod parser;

pub use builder::Query;
pub use parser::{parse_query, LangError, SchemaSource};
