//! The BDL lexer.

use std::fmt;

/// A token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (contents unescaped).
    Str(String),
    /// `|`
    Pipe,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::Pipe => f.write_str("|"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::Comma => f.write_str(","),
            Tok::Colon => f.write_str(":"),
            Tok::Star => f.write_str("*"),
            Tok::Plus => f.write_str("+"),
            Tok::Minus => f.write_str("-"),
            Tok::Slash => f.write_str("/"),
            Tok::Percent => f.write_str("%"),
            Tok::Eq => f.write_str("="),
            Tok::Ne => f.write_str("!="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::Gt => f.write_str(">"),
            Tok::Ge => f.write_str(">="),
            Tok::Eof => f.write_str("<end of input>"),
        }
    }
}

/// A token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The kind.
    pub tok: Tok,
    /// Byte offset of the token's first character.
    pub pos: usize,
}

/// Lexing failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Byte offset.
    pub pos: usize,
}

/// Tokenize a BDL source string.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '#' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '|' => {
                out.push(Token {
                    tok: Tok::Pipe,
                    pos: i,
                });
                i += 1;
            }
            '(' => {
                out.push(Token {
                    tok: Tok::LParen,
                    pos: i,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    tok: Tok::RParen,
                    pos: i,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    tok: Tok::Comma,
                    pos: i,
                });
                i += 1;
            }
            ':' => {
                out.push(Token {
                    tok: Tok::Colon,
                    pos: i,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    tok: Tok::Star,
                    pos: i,
                });
                i += 1;
            }
            '+' => {
                out.push(Token {
                    tok: Tok::Plus,
                    pos: i,
                });
                i += 1;
            }
            '-' => {
                out.push(Token {
                    tok: Tok::Minus,
                    pos: i,
                });
                i += 1;
            }
            '/' => {
                out.push(Token {
                    tok: Tok::Slash,
                    pos: i,
                });
                i += 1;
            }
            '%' => {
                out.push(Token {
                    tok: Tok::Percent,
                    pos: i,
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    tok: Tok::Eq,
                    pos: i,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::Ne,
                        pos: i,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected `!=`".into(),
                        pos: i,
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::Le,
                        pos: i,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Lt,
                        pos: i,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::Ge,
                        pos: i,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Gt,
                        pos: i,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(b'\'') => {
                            // Doubled quote escapes a quote.
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                        None => {
                            return Err(LexError {
                                message: "unterminated string literal".into(),
                                pos: start,
                            })
                        }
                    }
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    pos: start,
                });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .map(|b| b.is_ascii_digit())
                        .unwrap_or(false)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| LexError {
                        message: format!("bad float literal `{text}`"),
                        pos: start,
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| LexError {
                        message: format!("integer literal `{text}` out of range"),
                        pos: start,
                    })?)
                };
                out.push(Token { tok, pos: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(src[start..i].to_string()),
                    pos: start,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    pos: i,
                })
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: src.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("scan sales | where amount >= 10.5"),
            vec![
                Tok::Ident("scan".into()),
                Tok::Ident("sales".into()),
                Tok::Pipe,
                Tok::Ident("where".into()),
                Tok::Ident("amount".into()),
                Tok::Ge,
                Tok::Float(10.5),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(kinds("'it''s'"), vec![Tok::Str("it's".into()), Tok::Eof]);
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("3"), vec![Tok::Int(3), Tok::Eof]);
        assert_eq!(kinds("3.25"), vec![Tok::Float(3.25), Tok::Eof]);
        assert_eq!(kinds("1e-6"), vec![Tok::Float(1e-6), Tok::Eof]);
        // `3.` is Int 3 followed by... nothing parseable; dot alone errors.
        assert!(tokenize("3.x").is_err() || kinds("3.x").len() > 1);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("scan t # the table\n| distinct"),
            vec![
                Tok::Ident("scan".into()),
                Tok::Ident("t".into()),
                Tok::Pipe,
                Tok::Ident("distinct".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= != < <= > >= + - * / %"),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Percent,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_recorded() {
        let toks = tokenize("ab cd").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 3);
    }

    #[test]
    fn bad_chars_error_with_position() {
        let err = tokenize("a ^ b").unwrap_err();
        assert_eq!(err.pos, 2);
        assert!(err.message.contains('^'));
    }
}
