//! The LINQ-flavoured fluent query builder.

use bda_core::infer::infer_schema;
use bda_core::{AggExpr, BinOp, CoreError, Expr, GraphOp, JoinType, Plan};
use bda_storage::{Schema, Value};

/// A fluent wrapper around a [`Plan`] under construction.
///
/// Method names follow LINQ's Standard Query Operators where a direct
/// analogue exists (`select`, `where_`, `order_by`, `take`, `skip`,
/// `distinct`, `union`), with the paper's extensions (dimension-aware
/// array operators, intent operators, control iteration) alongside.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    plan: Plan,
}

impl Query {
    /// Start from a named dataset with a known schema.
    pub fn scan(dataset: impl Into<String>, schema: Schema) -> Query {
        Query {
            plan: Plan::scan(dataset, schema),
        }
    }

    /// Start from an existing plan.
    pub fn from_plan(plan: Plan) -> Query {
        Query { plan }
    }

    /// Start from the integers `[lo, hi)` as a 1-D array named `dim`.
    pub fn range(dim: impl Into<String>, lo: i64, hi: i64) -> Query {
        Query {
            plan: Plan::Range {
                name: dim.into(),
                lo,
                hi,
            },
        }
    }

    /// The built plan (borrow).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The built plan (consume).
    pub fn into_plan(self) -> Plan {
        self.plan
    }

    /// The query's output schema (type checks the whole plan).
    pub fn schema(&self) -> Result<Schema, CoreError> {
        infer_schema(&self.plan)
    }

    // --- relational SQO core ------------------------------------------------

    /// LINQ `Where`: keep rows satisfying the predicate.
    pub fn where_(self, predicate: Expr) -> Query {
        Query {
            plan: self.plan.select(predicate),
        }
    }

    /// Alias for [`Query::where_`].
    pub fn filter(self, predicate: Expr) -> Query {
        self.where_(predicate)
    }

    /// LINQ `Select`: map each row to named expressions.
    pub fn select(self, exprs: Vec<(&str, Expr)>) -> Query {
        Query {
            plan: self.plan.project(exprs),
        }
    }

    /// Inner equi-join.
    pub fn join(self, right: Query, on: Vec<(&str, &str)>) -> Query {
        Query {
            plan: self.plan.join(right.plan, on),
        }
    }

    /// Join with an explicit type.
    pub fn join_as(self, right: Query, on: Vec<(&str, &str)>, jt: JoinType) -> Query {
        Query {
            plan: self.plan.join_as(right.plan, on, jt),
        }
    }

    /// LINQ `GroupBy` + aggregation in one step.
    pub fn group_by(self, keys: Vec<&str>, aggs: Vec<AggExpr>) -> Query {
        Query {
            plan: self.plan.aggregate(keys, aggs),
        }
    }

    /// LINQ `OrderBy` (ascending).
    pub fn order_by(self, keys: Vec<&str>) -> Query {
        Query {
            plan: self.plan.sort_by(keys),
        }
    }

    /// Order by a single key, descending.
    pub fn order_by_desc(self, key: &str) -> Query {
        Query {
            plan: Plan::Sort {
                input: self.plan.boxed(),
                keys: vec![(key.to_string(), true)],
            },
        }
    }

    /// LINQ `Take`.
    pub fn take(self, n: usize) -> Query {
        Query {
            plan: self.plan.limit(n),
        }
    }

    /// LINQ `Skip`.
    pub fn skip(self, n: usize) -> Query {
        Query {
            plan: Plan::Limit {
                input: self.plan.boxed(),
                skip: n,
                fetch: None,
            },
        }
    }

    /// LINQ `Distinct`.
    pub fn distinct(self) -> Query {
        Query {
            plan: self.plan.distinct(),
        }
    }

    /// LINQ `Union` (bag union; use `.distinct()` for set union).
    pub fn union(self, other: Query) -> Query {
        Query {
            plan: self.plan.union(other.plan),
        }
    }

    /// Rename columns.
    pub fn rename(self, mapping: Vec<(&str, &str)>) -> Query {
        Query {
            plan: self.plan.rename(mapping),
        }
    }

    // --- dimension-aware array operators ------------------------------------

    /// Restrict dimensions to coordinate ranges `[lo, hi)`.
    pub fn dice(self, ranges: Vec<(&str, i64, i64)>) -> Query {
        Query {
            plan: Plan::Dice {
                input: self.plan.boxed(),
                ranges: ranges
                    .into_iter()
                    .map(|(d, lo, hi)| (d.to_string(), lo, hi))
                    .collect(),
            },
        }
    }

    /// Fix a dimension at a coordinate and drop it.
    pub fn slice_at(self, dim: &str, index: i64) -> Query {
        Query {
            plan: Plan::SliceAt {
                input: self.plan.boxed(),
                dim: dim.to_string(),
                index,
            },
        }
    }

    /// Reorder dimensions.
    pub fn permute(self, order: Vec<&str>) -> Query {
        Query {
            plan: Plan::Permute {
                input: self.plan.boxed(),
                order: order.into_iter().map(str::to_string).collect(),
            },
        }
    }

    /// Moving-window (stencil) aggregate.
    pub fn window(self, radii: Vec<(&str, i64)>, aggs: Vec<AggExpr>) -> Query {
        Query {
            plan: Plan::Window {
                input: self.plan.boxed(),
                radii: radii.into_iter().map(|(d, r)| (d.to_string(), r)).collect(),
                aggs,
            },
        }
    }

    /// Densify absent cells with a fill value.
    pub fn fill(self, value: impl Into<Value>) -> Query {
        Query {
            plan: Plan::Fill {
                input: self.plan.boxed(),
                fill: value.into(),
            },
        }
    }

    /// Tag `i64` value columns as dimensions (table → array).
    pub fn tag_dims(self, dims: Vec<(&str, Option<(i64, i64)>)>) -> Query {
        Query {
            plan: Plan::TagDims {
                input: self.plan.boxed(),
                dims: dims.into_iter().map(|(d, e)| (d.to_string(), e)).collect(),
            },
        }
    }

    /// Demote all dimensions to value columns (array → table).
    pub fn untag_dims(self) -> Query {
        Query {
            plan: Plan::UntagDims {
                input: self.plan.boxed(),
            },
        }
    }

    // --- intent operators ----------------------------------------------------

    /// Matrix multiply.
    pub fn matmul(self, right: Query) -> Query {
        Query {
            plan: self.plan.matmul(right.plan),
        }
    }

    /// Cell-wise binary operation.
    pub fn elemwise(self, op: BinOp, right: Query) -> Query {
        Query {
            plan: self.plan.elemwise(op, right.plan),
        }
    }

    /// PageRank over this query's edge list.
    pub fn page_rank(self, damping: f64, max_iters: usize, epsilon: f64) -> Query {
        Query {
            plan: Plan::Graph(GraphOp::PageRank {
                edges: self.plan.boxed(),
                damping,
                max_iters,
                epsilon,
            }),
        }
    }

    /// Connected components over this query's edge list.
    pub fn connected_components(self, max_iters: usize) -> Query {
        Query {
            plan: Plan::Graph(GraphOp::ConnectedComponents {
                edges: self.plan.boxed(),
                max_iters,
            }),
        }
    }

    /// Triangle count over this query's edge list.
    pub fn triangle_count(self) -> Query {
        Query {
            plan: Plan::Graph(GraphOp::TriangleCount {
                edges: self.plan.boxed(),
            }),
        }
    }

    /// Out-degrees over this query's edge list.
    pub fn degrees(self) -> Query {
        Query {
            plan: Plan::Graph(GraphOp::Degrees {
                edges: self.plan.boxed(),
            }),
        }
    }

    /// BFS levels from `source` over this query's edge list.
    pub fn bfs_levels(self, source: i64) -> Query {
        Query {
            plan: Plan::Graph(GraphOp::BfsLevels {
                edges: self.plan.boxed(),
                source,
            }),
        }
    }

    // --- control iteration -----------------------------------------------

    /// Control iteration: repeatedly apply `body` (which receives the
    /// loop-state query) until the state converges (`epsilon`, or exact
    /// fixpoint with `None`) or `max_iters` is reached.
    pub fn iterate(
        self,
        max_iters: usize,
        epsilon: Option<f64>,
        body: impl FnOnce(Query) -> Query,
    ) -> Result<Query, CoreError> {
        let state_schema = infer_schema(&self.plan)?;
        let state = Query {
            plan: Plan::IterState {
                schema: state_schema,
            },
        };
        let body_plan = body(state).into_plan();
        Ok(Query {
            plan: Plan::Iterate {
                init: self.plan.boxed(),
                body: body_plan.boxed(),
                max_iters,
                epsilon,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::reference::{evaluate, EmptySource};
    use bda_core::{col, lit, AggFunc};
    use bda_storage::{Column, DataSet, DataType};
    use std::collections::HashMap;

    fn sales() -> DataSet {
        DataSet::from_columns(vec![
            ("region", Column::from(vec!["w", "e", "w"])),
            ("amount", Column::from(vec![10i64, 25, 30])),
        ])
        .unwrap()
    }

    #[test]
    fn linq_pipeline_builds_expected_plan() {
        let q = Query::scan("sales", sales().schema().clone())
            .where_(col("amount").gt(lit(15i64)))
            .group_by(
                vec!["region"],
                vec![AggExpr::new(AggFunc::Sum, col("amount"), "total")],
            )
            .order_by(vec!["region"])
            .take(10);
        let schema = q.schema().unwrap();
        assert_eq!(schema.names(), vec!["region", "total"]);
        let mut src = HashMap::new();
        src.insert("sales".to_string(), sales());
        let out = evaluate(q.plan(), &src).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn skip_take_distinct_union() {
        let q = Query::scan("sales", sales().schema().clone())
            .union(Query::scan("sales", sales().schema().clone()))
            .select(vec![("region", col("region"))])
            .distinct()
            .order_by_desc("region")
            .skip(1)
            .take(1);
        let mut src = HashMap::new();
        src.insert("sales".to_string(), sales());
        let out = evaluate(q.plan(), &src).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.rows().unwrap()[0].get(0), &Value::from("e"));
    }

    #[test]
    fn array_methods_typecheck() {
        let m =
            bda_storage::dataset::matrix_dataset(4, 4, (0..16).map(f64::from).collect()).unwrap();
        let q = Query::scan("m", m.schema().clone())
            .dice(vec![("row", 0, 3)])
            .window(
                vec![("row", 1), ("col", 1)],
                vec![AggExpr::new(AggFunc::Avg, col("v"), "mean")],
            );
        let schema = q.schema().unwrap();
        assert_eq!(schema.ndims(), 2);
        let mm = Query::scan("m", m.schema().clone()).matmul(Query::scan("m", m.schema().clone()));
        assert_eq!(mm.schema().unwrap().ndims(), 2);
    }

    #[test]
    fn iterate_builder() {
        let q = Query::range("i", 0, 4)
            .untag_dims()
            .select(vec![("x", col("i").cast(DataType::Float64))])
            .iterate(10, Some(1e-3), |state| {
                state.select(vec![("x", col("x").mul(lit(0.5)))])
            })
            .unwrap();
        let out = evaluate(q.plan(), &EmptySource).unwrap();
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn graph_methods() {
        let q = Query::scan("e", bda_core::infer::edge_schema()).page_rank(0.85, 50, 1e-8);
        assert_eq!(q.schema().unwrap().names(), vec!["vertex", "rank"]);
        let q = Query::scan("e", bda_core::infer::edge_schema()).triangle_count();
        assert_eq!(q.schema().unwrap().names(), vec!["triangles"]);
    }
}
