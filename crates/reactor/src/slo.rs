//! Per-priority-class latency SLOs with burn-rate gauges.
//!
//! Each admission class carries a latency target (time from admission
//! to the worker finishing the request) and the monitor tracks, per
//! class, an exponentially weighted fraction of requests that *missed*
//! the target. The exported gauge is the **burn rate** — that breach
//! fraction divided by the class error budget — so `1.0` reads "missing
//! exactly as often as the budget allows", above it the budget is
//! burning down, and an operator can alert on the same threshold for
//! every class regardless of its absolute target.

use std::sync::Mutex;
use std::time::Duration;

use bda_obs::MetricsHub;

use crate::admission::Priority;

/// How much one observation moves the breach EWMA; small enough to
/// smooth bursts, large enough that a sustained regression shows within
/// a few dozen requests.
const ALPHA: f64 = 0.05;

/// Latency targets per admission class, plus the shared error budget
/// (the fraction of requests allowed to miss their target before the
/// burn rate crosses `1.0`).
#[derive(Debug, Clone, Copy)]
pub struct SloTargets {
    /// Ops traffic (health, catalog, metrics): fast or broken.
    pub ops: Duration,
    /// Interactive queries someone is waiting on.
    pub interactive: Duration,
    /// Bulk data movement; generous by design.
    pub bulk: Duration,
    /// Allowed breach fraction, in `(0, 1]`.
    pub budget: f64,
}

impl Default for SloTargets {
    fn default() -> Self {
        SloTargets {
            ops: Duration::from_millis(50),
            interactive: Duration::from_secs(1),
            bulk: Duration::from_secs(5),
            budget: 0.05,
        }
    }
}

impl SloTargets {
    /// The target for one admission class.
    pub fn target(&self, priority: Priority) -> Duration {
        match priority {
            Priority::Ops => self.ops,
            Priority::Interactive => self.interactive,
            Priority::Bulk => self.bulk,
        }
    }
}

/// Tracks breach EWMAs per class and exports
/// `bda_slo_burn_rate{class}` gauges through the shared hub.
pub struct SloMonitor {
    targets: SloTargets,
    metrics: MetricsHub,
    ewma: Mutex<[f64; 3]>,
}

impl SloMonitor {
    pub fn new(targets: SloTargets, metrics: MetricsHub) -> SloMonitor {
        let budget = targets.budget.clamp(f64::MIN_POSITIVE, 1.0);
        let monitor = SloMonitor {
            targets: SloTargets { budget, ..targets },
            metrics,
            ewma: Mutex::new([0.0; 3]),
        };
        // Register the gauges up front so the series exist (at zero)
        // before the first request, keeping dashboards gap-free.
        for class in [Priority::Ops, Priority::Interactive, Priority::Bulk] {
            monitor.gauge(class).set(0.0);
        }
        monitor
    }

    /// The configured targets.
    pub fn targets(&self) -> SloTargets {
        self.targets
    }

    /// Record one finished request: `elapsed` is admission-to-completion
    /// latency for a job of class `priority`.
    pub fn observe(&self, priority: Priority, elapsed: Duration) {
        let breach = if elapsed > self.targets.target(priority) {
            1.0
        } else {
            0.0
        };
        let burn = {
            let mut ewma = self.ewma.lock().expect("slo ewma poisoned");
            let cell = &mut ewma[priority as usize];
            *cell = ALPHA * breach + (1.0 - ALPHA) * *cell;
            *cell / self.targets.budget
        };
        self.gauge(priority).set(burn);
    }

    /// The current burn rate for one class.
    pub fn burn_rate(&self, priority: Priority) -> f64 {
        let ewma = self.ewma.lock().expect("slo ewma poisoned");
        ewma[priority as usize] / self.targets.budget
    }

    fn gauge(&self, priority: Priority) -> bda_obs::metrics::Gauge {
        self.metrics.gauge_labeled(
            "bda_slo_burn_rate",
            &[("class", priority.label())],
            "Breach-fraction EWMA over the class error budget; above 1.0 the latency SLO is burning.",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> SloMonitor {
        SloMonitor::new(SloTargets::default(), MetricsHub::new())
    }

    #[test]
    fn within_target_keeps_burn_at_zero() {
        let m = monitor();
        for _ in 0..32 {
            m.observe(Priority::Interactive, Duration::from_millis(5));
        }
        assert_eq!(m.burn_rate(Priority::Interactive), 0.0);
    }

    #[test]
    fn sustained_breaches_push_burn_past_one() {
        let m = monitor();
        for _ in 0..256 {
            m.observe(Priority::Ops, Duration::from_millis(500));
        }
        assert!(m.burn_rate(Priority::Ops) > 1.0);
        // Other classes are untouched.
        assert_eq!(m.burn_rate(Priority::Bulk), 0.0);
    }

    #[test]
    fn gauges_exist_before_any_observation() {
        let hub = MetricsHub::new();
        let _m = SloMonitor::new(SloTargets::default(), hub.clone());
        let text = hub.render();
        assert!(
            text.contains("bda_slo_burn_rate{class=\"interactive\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn recovery_decays_the_burn_rate() {
        let m = monitor();
        for _ in 0..64 {
            m.observe(Priority::Interactive, Duration::from_secs(3));
        }
        let peak = m.burn_rate(Priority::Interactive);
        for _ in 0..64 {
            m.observe(Priority::Interactive, Duration::from_millis(1));
        }
        assert!(m.burn_rate(Priority::Interactive) < peak / 2.0);
    }
}
