//! Admission control: every parsed request passes through here before
//! any CPU is spent on it. Three strict priority classes — operational
//! traffic (health, catalog, metrics) ahead of interactive queries ahead
//! of bulk data movement — each with a bounded queue, plus a per-tenant
//! cap so one chatty peer cannot own the whole admission budget.
//!
//! Classification reads exactly one byte (the frame kind, via
//! [`bda_net::proto::peek_pipelined`] for tagged requests), so a request
//! carrying a 100 MB dataset costs nothing to classify and can be shed
//! without ever being decoded.
//!
//! A full queue is not an error state — it is the *load-shedding
//! signal*. The shard answers the request immediately with a transient
//! [`bda_net::Response::Error`], which existing clients already treat as
//! retry-with-backoff and circuit-breaker fodder. Shed early, answer
//! fast, never hang.
//!
//! With [`AdmissionConfig::fair_share`] on and a [`UsageBook`] mounted,
//! claiming switches from per-class FIFO to *usage-weighted fair
//! sharing* within each class: every queued tenant carries a virtual
//! time that advances by its recent metered cost (EWMA of CPU-ns and
//! bytes) each time one of its jobs is claimed, and the scheduler always
//! serves the tenant furthest behind. A tenant with no recorded usage
//! advances by a nominal unit, so unmetered tenants degrade to
//! round-robin instead of starving anyone. Per-tenant order stays FIFO —
//! fairness reorders *between* tenants, never within one.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use bda_net::proto::kind;
use bda_obs::UsageBook;

/// Strict scheduling classes, highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Health, catalog, metrics: tiny, operator-facing, must work even
    /// (especially) under overload.
    Ops = 0,
    /// Queries someone is waiting on.
    Interactive = 1,
    /// Data movement: stores, partition staging, removals.
    Bulk = 2,
}

impl Priority {
    /// The metrics label for this class.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Ops => "ops",
            Priority::Interactive => "interactive",
            Priority::Bulk => "bulk",
        }
    }
}

/// Classify a request by its frame kind byte (for pipelined requests,
/// the *inner* kind from the peek). Unknown kinds go to `Interactive`
/// so malformed requests still reach the handler and get their error
/// reply.
pub fn classify(kind_byte: u8) -> Priority {
    match kind_byte {
        kind::HELLO | kind::CATALOG | kind::METRICS => Priority::Ops,
        kind::STORE | kind::STORE_PART | kind::REMOVE => Priority::Bulk,
        _ => Priority::Interactive,
    }
}

/// One admitted-but-not-yet-executed request, owned by the scheduler
/// until an executor worker claims it.
#[derive(Debug)]
pub struct Job {
    /// Which shard the connection lives on.
    pub shard: usize,
    /// The shard-local connection key (never reused).
    pub conn: u64,
    /// In-order release slot for untagged requests (`None` for tagged
    /// pipelined requests, which may complete out of order).
    pub seq: Option<u64>,
    /// The frame kind byte as read off the wire.
    pub kind: u8,
    /// The undecoded message payload.
    pub payload: Vec<u8>,
    /// Framed size on the wire, for the handler's byte accounting.
    pub req_bytes: u64,
    /// The tenant identity the per-tenant cap and fair-share scheduler
    /// charge this request to: the wire tag when present, else the peer
    /// address.
    pub tenant: String,
    /// The class this job was admitted under.
    pub priority: Priority,
    /// When admission accepted the job; workers measure queue latency
    /// against the class SLO from this instant.
    pub admitted_at: Instant,
}

/// Why a request was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The class queue is at capacity.
    QueueFull,
    /// This tenant already has its fair share queued.
    TenantOverLimit,
}

impl ShedReason {
    /// Stable string form, shared by logs and metric labels.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::TenantOverLimit => "tenant-over-limit",
        }
    }

    /// The metrics label for this reason.
    pub fn label(self) -> &'static str {
        self.as_str()
    }
}

/// Bounds for the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Capacity of each class queue.
    pub queue_capacity: usize,
    /// Maximum requests one tenant may have queued across all classes.
    pub per_tenant: usize,
    /// Claim by usage-weighted fair share within each class instead of
    /// FIFO (needs a [`UsageBook`] via [`Admission::with_usage`] to
    /// weight by metered cost; without one, fair share degrades to
    /// round-robin between queued tenants).
    pub fair_share: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 256,
            per_tenant: 128,
            fair_share: false,
        }
    }
}

struct State {
    queues: [VecDeque<Job>; 3],
    per_tenant: HashMap<String, usize>,
    /// Fair-share virtual time per *currently queued* tenant: advanced
    /// by recent metered cost on every claim, dropped when the tenant's
    /// last queued job drains (the [`UsageBook`] EWMA is the cross-burst
    /// memory). New arrivals start at the floor of the live values so a
    /// returning tenant cannot replay an empty backlog as credit.
    vt: HashMap<String, f64>,
    closed: bool,
}

/// Point-in-time scheduler fullness, surfaced through `/readyz` and the
/// saturation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueDepths {
    pub ops: usize,
    pub interactive: usize,
    pub bulk: usize,
    /// Capacity of each individual class queue.
    pub capacity: usize,
}

impl QueueDepths {
    /// Total queued across classes.
    pub fn total(&self) -> usize {
        self.ops + self.interactive + self.bulk
    }

    /// True when any class queue is full — the server is actively
    /// shedding that class, so a load balancer should prefer other
    /// replicas (`/readyz` turns 503).
    pub fn saturated(&self) -> bool {
        self.ops >= self.capacity || self.interactive >= self.capacity || self.bulk >= self.capacity
    }
}

/// The bounded priority scheduler between shards (producers) and
/// executor workers (consumers).
pub struct Admission {
    config: AdmissionConfig,
    usage: Option<UsageBook>,
    state: Mutex<State>,
    available: Condvar,
}

impl Admission {
    pub fn new(config: AdmissionConfig) -> Admission {
        Admission {
            config,
            usage: None,
            state: Mutex::new(State {
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                per_tenant: HashMap::new(),
                vt: HashMap::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Mount the usage book whose recent-cost EWMAs weight fair-share
    /// claiming (no effect unless [`AdmissionConfig::fair_share`] is on).
    pub fn with_usage(mut self, usage: UsageBook) -> Admission {
        self.usage = Some(usage);
        self
    }

    /// Offer a job. `Err` hands the job back with the shed reason; the
    /// caller answers the connection with a transient error.
    pub fn submit(&self, job: Job) -> Result<(), (Job, ShedReason)> {
        let mut state = self.state.lock().expect("admission state poisoned");
        if state.closed {
            return Err((job, ShedReason::QueueFull));
        }
        let class = job.priority as usize;
        if state.queues[class].len() >= self.config.queue_capacity {
            return Err((job, ShedReason::QueueFull));
        }
        match state.per_tenant.get_mut(job.tenant.as_str()) {
            Some(n) if *n >= self.config.per_tenant => {
                return Err((job, ShedReason::TenantOverLimit));
            }
            Some(n) => *n += 1,
            None => {
                // First queued job for this tenant: enter the virtual
                // clock at the floor of the live tenants' values.
                let floor = state.vt.values().copied().fold(f64::INFINITY, f64::min);
                let floor = if floor.is_finite() { floor } else { 0.0 };
                state.vt.insert(job.tenant.clone(), floor);
                state.per_tenant.insert(job.tenant.clone(), 1);
            }
        }
        state.queues[class].push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// How far the virtual clock advances when one of `tenant`'s jobs is
    /// claimed: its recent metered cost, or a nominal unit when nothing
    /// is recorded (degrading to round-robin between unmetered tenants).
    fn claim_cost(&self, tenant: &str) -> f64 {
        self.usage
            .as_ref()
            .and_then(|u| u.recent_cost_ns(tenant))
            .map_or(1.0, |c| c.max(1.0))
    }

    /// Claim the next job, blocking while all queues are empty. `None`
    /// means the scheduler closed: the worker exits.
    ///
    /// Priority is strict — ops drains before interactive before bulk.
    /// Under sustained interactive overload bulk *will* starve; that is
    /// the intended policy (bulk callers retry with backoff), and the
    /// bounded queues mean starvation shows up as prompt shedding, not
    /// silent queue growth. Within the chosen class, claiming is FIFO,
    /// or usage-weighted fair share when configured (see module docs).
    pub fn next(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("admission state poisoned");
        loop {
            if let Some(class) = (0..state.queues.len()).find(|&c| !state.queues[c].is_empty()) {
                let index = if self.config.fair_share {
                    fair_pick(&state.queues[class], &state.vt)
                } else {
                    0
                };
                let job = state.queues[class]
                    .remove(index)
                    .expect("picked index in bounds");
                let cost = self.claim_cost(&job.tenant);
                if let Some(v) = state.vt.get_mut(job.tenant.as_str()) {
                    *v += cost;
                }
                if let Some(n) = state.per_tenant.get_mut(job.tenant.as_str()) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        state.per_tenant.remove(job.tenant.as_str());
                        state.vt.remove(job.tenant.as_str());
                    }
                }
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .expect("admission state poisoned");
        }
    }

    /// Close the scheduler: queued jobs are dropped, blocked and future
    /// [`Admission::next`] calls return `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("admission state poisoned");
        state.closed = true;
        for q in &mut state.queues {
            q.clear();
        }
        state.per_tenant.clear();
        state.vt.clear();
        drop(state);
        self.available.notify_all();
    }

    /// Whether fair-share claiming is active.
    pub fn fair_share(&self) -> bool {
        self.config.fair_share
    }

    /// Current queue depths.
    pub fn depths(&self) -> QueueDepths {
        let state = self.state.lock().expect("admission state poisoned");
        QueueDepths {
            ops: state.queues[Priority::Ops as usize].len(),
            interactive: state.queues[Priority::Interactive as usize].len(),
            bulk: state.queues[Priority::Bulk as usize].len(),
            capacity: self.config.queue_capacity,
        }
    }
}

/// The queue position to claim under fair share: the first-queued job
/// of the tenant with the lowest virtual time (ties break to the
/// earlier queue position, which also keeps per-tenant order FIFO —
/// only a tenant's *first* queued job is ever eligible).
fn fair_pick(queue: &VecDeque<Job>, vt: &HashMap<String, f64>) -> usize {
    let mut best: Option<(f64, usize)> = None;
    let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for (i, job) in queue.iter().enumerate() {
        if !seen.insert(job.tenant.as_str()) {
            continue; // not the tenant's first queued job
        }
        let t = vt.get(job.tenant.as_str()).copied().unwrap_or(0.0);
        if best.is_none_or(|(b, _)| t < b) {
            best = Some((t, i));
        }
    }
    best.map_or(0, |(_, i)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(priority: Priority, tenant: &str) -> Job {
        Job {
            shard: 0,
            conn: 0,
            seq: None,
            kind: 0,
            payload: Vec::new(),
            req_bytes: 0,
            tenant: tenant.to_string(),
            priority,
            admitted_at: Instant::now(),
        }
    }

    #[test]
    fn classification_by_kind_byte() {
        assert_eq!(classify(kind::HELLO), Priority::Ops);
        assert_eq!(classify(kind::CATALOG), Priority::Ops);
        assert_eq!(classify(kind::METRICS), Priority::Ops);
        assert_eq!(classify(kind::EXECUTE), Priority::Interactive);
        assert_eq!(classify(kind::EXECUTE_STORE), Priority::Interactive);
        assert_eq!(classify(kind::TRACED), Priority::Interactive);
        assert_eq!(classify(kind::STORE), Priority::Bulk);
        assert_eq!(classify(kind::STORE_PART), Priority::Bulk);
        assert_eq!(classify(kind::REMOVE), Priority::Bulk);
        assert_eq!(
            classify(0xEE),
            Priority::Interactive,
            "unknown kinds pass through"
        );
    }

    #[test]
    fn ops_drains_before_interactive_before_bulk() {
        let adm = Admission::new(AdmissionConfig::default());
        adm.submit(job(Priority::Bulk, "a")).unwrap();
        adm.submit(job(Priority::Interactive, "a")).unwrap();
        adm.submit(job(Priority::Ops, "a")).unwrap();
        assert_eq!(adm.next().unwrap().priority, Priority::Ops);
        assert_eq!(adm.next().unwrap().priority, Priority::Interactive);
        assert_eq!(adm.next().unwrap().priority, Priority::Bulk);
    }

    #[test]
    fn full_class_queue_sheds_without_blocking() {
        let adm = Admission::new(AdmissionConfig {
            queue_capacity: 2,
            per_tenant: 100,
            fair_share: false,
        });
        adm.submit(job(Priority::Bulk, "a")).unwrap();
        adm.submit(job(Priority::Bulk, "a")).unwrap();
        let (_, reason) = adm.submit(job(Priority::Bulk, "a")).unwrap_err();
        assert_eq!(reason, ShedReason::QueueFull);
        // A full bulk queue does not block ops traffic.
        adm.submit(job(Priority::Ops, "a")).unwrap();
        assert!(adm.depths().saturated());
    }

    #[test]
    fn one_tenant_cannot_fill_the_queue() {
        let adm = Admission::new(AdmissionConfig {
            queue_capacity: 100,
            per_tenant: 2,
            fair_share: false,
        });
        adm.submit(job(Priority::Interactive, "a")).unwrap();
        adm.submit(job(Priority::Interactive, "a")).unwrap();
        let (_, reason) = adm.submit(job(Priority::Interactive, "a")).unwrap_err();
        assert_eq!(reason, ShedReason::TenantOverLimit);
        // Another tenant still gets in.
        adm.submit(job(Priority::Interactive, "b")).unwrap();
        // Draining releases the budget.
        adm.next().unwrap();
        adm.submit(job(Priority::Interactive, "a")).unwrap();
    }

    #[test]
    fn fair_share_interleaves_tenants_round_robin_without_usage() {
        let adm = Admission::new(AdmissionConfig {
            fair_share: true,
            ..AdmissionConfig::default()
        });
        // a, a, a, b, c queued; FIFO would serve three a's first.
        for t in ["a", "a", "a", "b", "c"] {
            adm.submit(job(Priority::Interactive, t)).unwrap();
        }
        let order: Vec<String> = (0..5).map(|_| adm.next().unwrap().tenant).collect();
        // Every claim advances the served tenant's clock by one unit, so
        // each tenant gets one turn before anyone gets a second.
        assert_eq!(order, ["a", "b", "c", "a", "a"]);
    }

    #[test]
    fn fair_share_prefers_the_light_tenant_under_metered_load() {
        let usage = UsageBook::new(42);
        // Heavy has consumed ~1e6 ns per claim recently; light ~1e3.
        usage.charge_query("heavy", 0, 0, 1_000_000, 0, 0);
        usage.charge_query("light", 0, 0, 1_000, 0, 0);
        let adm = Admission::new(AdmissionConfig {
            fair_share: true,
            ..AdmissionConfig::default()
        })
        .with_usage(usage);
        // Backlog alternating heavy-first: H H H H L L L L.
        for _ in 0..4 {
            adm.submit(job(Priority::Interactive, "heavy")).unwrap();
        }
        for _ in 0..4 {
            adm.submit(job(Priority::Interactive, "light")).unwrap();
        }
        let order: Vec<String> = (0..8).map(|_| adm.next().unwrap().tenant).collect();
        // One heavy claim costs as much as ~1000 light claims of virtual
        // time, so after its first turn the heavy tenant waits for the
        // whole light backlog — but is never starved outright.
        assert_eq!(
            order,
            ["heavy", "light", "light", "light", "light", "heavy", "heavy", "heavy"]
        );
    }

    #[test]
    fn fair_share_keeps_per_tenant_order_fifo() {
        let adm = Admission::new(AdmissionConfig {
            fair_share: true,
            ..AdmissionConfig::default()
        });
        for (i, t) in [("a"), ("b"), ("a"), ("b"), ("a")].iter().enumerate() {
            let mut j = job(Priority::Interactive, t);
            j.conn = i as u64; // tag submission order
            adm.submit(j).unwrap();
        }
        let mut a_conns = Vec::new();
        let mut b_conns = Vec::new();
        for _ in 0..5 {
            let j = adm.next().unwrap();
            match j.tenant.as_str() {
                "a" => a_conns.push(j.conn),
                _ => b_conns.push(j.conn),
            }
        }
        assert_eq!(a_conns, [0, 2, 4], "tenant a drains in arrival order");
        assert_eq!(b_conns, [1, 3], "tenant b drains in arrival order");
    }

    #[test]
    fn late_arrivals_enter_at_the_virtual_time_floor() {
        let adm = Admission::new(AdmissionConfig {
            fair_share: true,
            ..AdmissionConfig::default()
        });
        // Serve tenant a a few times so its clock is ahead.
        for _ in 0..3 {
            adm.submit(job(Priority::Interactive, "a")).unwrap();
        }
        adm.next().unwrap();
        adm.next().unwrap();
        // b arrives now: it enters at a's clock (the floor), so it gets
        // no make-up turns for history it was absent for — if it entered
        // at zero it would jump the whole queue (order b, b, a). The tie
        // breaks to the earlier queue position.
        adm.submit(job(Priority::Interactive, "b")).unwrap();
        adm.submit(job(Priority::Interactive, "b")).unwrap();
        let order: Vec<String> = (0..3).map(|_| adm.next().unwrap().tenant).collect();
        assert_eq!(order, ["a", "b", "b"]);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let adm = std::sync::Arc::new(Admission::new(AdmissionConfig::default()));
        let waiter = std::sync::Arc::clone(&adm);
        let h = std::thread::spawn(move || waiter.next());
        std::thread::sleep(std::time::Duration::from_millis(50));
        adm.close();
        assert!(h.join().unwrap().is_none());
        // Submissions after close shed.
        assert!(adm.submit(job(Priority::Ops, "a")).is_err());
    }
}
