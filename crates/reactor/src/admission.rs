//! Admission control: every parsed request passes through here before
//! any CPU is spent on it. Three strict priority classes — operational
//! traffic (health, catalog, metrics) ahead of interactive queries ahead
//! of bulk data movement — each with a bounded queue, plus a per-tenant
//! cap so one chatty peer cannot own the whole admission budget.
//!
//! Classification reads exactly one byte (the frame kind, via
//! [`bda_net::proto::peek_pipelined`] for tagged requests), so a request
//! carrying a 100 MB dataset costs nothing to classify and can be shed
//! without ever being decoded.
//!
//! A full queue is not an error state — it is the *load-shedding
//! signal*. The shard answers the request immediately with a transient
//! [`bda_net::Response::Error`], which existing clients already treat as
//! retry-with-backoff and circuit-breaker fodder. Shed early, answer
//! fast, never hang.

use std::collections::{HashMap, VecDeque};
use std::net::IpAddr;
use std::sync::{Condvar, Mutex};

use bda_net::proto::kind;

/// Strict scheduling classes, highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Health, catalog, metrics: tiny, operator-facing, must work even
    /// (especially) under overload.
    Ops = 0,
    /// Queries someone is waiting on.
    Interactive = 1,
    /// Data movement: stores, partition staging, removals.
    Bulk = 2,
}

impl Priority {
    /// The metrics label for this class.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Ops => "ops",
            Priority::Interactive => "interactive",
            Priority::Bulk => "bulk",
        }
    }
}

/// Classify a request by its frame kind byte (for pipelined requests,
/// the *inner* kind from the peek). Unknown kinds go to `Interactive`
/// so malformed requests still reach the handler and get their error
/// reply.
pub fn classify(kind_byte: u8) -> Priority {
    match kind_byte {
        kind::HELLO | kind::CATALOG | kind::METRICS => Priority::Ops,
        kind::STORE | kind::STORE_PART | kind::REMOVE => Priority::Bulk,
        _ => Priority::Interactive,
    }
}

/// One admitted-but-not-yet-executed request, owned by the scheduler
/// until an executor worker claims it.
#[derive(Debug)]
pub struct Job {
    /// Which shard the connection lives on.
    pub shard: usize,
    /// The shard-local connection key (never reused).
    pub conn: u64,
    /// In-order release slot for untagged requests (`None` for tagged
    /// pipelined requests, which may complete out of order).
    pub seq: Option<u64>,
    /// The frame kind byte as read off the wire.
    pub kind: u8,
    /// The undecoded message payload.
    pub payload: Vec<u8>,
    /// Framed size on the wire, for the handler's byte accounting.
    pub req_bytes: u64,
    /// The peer address the per-tenant cap charges this request to.
    pub tenant: IpAddr,
    /// The class this job was admitted under.
    pub priority: Priority,
}

/// Why a request was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The class queue is at capacity.
    QueueFull,
    /// This tenant already has its fair share queued.
    TenantOverLimit,
}

impl ShedReason {
    /// The metrics label for this reason.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::TenantOverLimit => "tenant-over-limit",
        }
    }
}

/// Bounds for the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Capacity of each class queue.
    pub queue_capacity: usize,
    /// Maximum requests one tenant (peer IP) may have queued across all
    /// classes.
    pub per_tenant: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 256,
            per_tenant: 128,
        }
    }
}

struct State {
    queues: [VecDeque<Job>; 3],
    per_tenant: HashMap<IpAddr, usize>,
    closed: bool,
}

/// Point-in-time scheduler fullness, surfaced through `/readyz` and the
/// saturation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueDepths {
    pub ops: usize,
    pub interactive: usize,
    pub bulk: usize,
    /// Capacity of each individual class queue.
    pub capacity: usize,
}

impl QueueDepths {
    /// Total queued across classes.
    pub fn total(&self) -> usize {
        self.ops + self.interactive + self.bulk
    }

    /// True when any class queue is full — the server is actively
    /// shedding that class, so a load balancer should prefer other
    /// replicas (`/readyz` turns 503).
    pub fn saturated(&self) -> bool {
        self.ops >= self.capacity || self.interactive >= self.capacity || self.bulk >= self.capacity
    }
}

/// The bounded priority scheduler between shards (producers) and
/// executor workers (consumers).
pub struct Admission {
    config: AdmissionConfig,
    state: Mutex<State>,
    available: Condvar,
}

impl Admission {
    pub fn new(config: AdmissionConfig) -> Admission {
        Admission {
            config,
            state: Mutex::new(State {
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                per_tenant: HashMap::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Offer a job. `Err` hands the job back with the shed reason; the
    /// caller answers the connection with a transient error.
    pub fn submit(&self, job: Job) -> Result<(), (Job, ShedReason)> {
        let mut state = self.state.lock().expect("admission state poisoned");
        if state.closed {
            return Err((job, ShedReason::QueueFull));
        }
        let class = job.priority as usize;
        if state.queues[class].len() >= self.config.queue_capacity {
            return Err((job, ShedReason::QueueFull));
        }
        let tenant_count = state.per_tenant.entry(job.tenant).or_insert(0);
        if *tenant_count >= self.config.per_tenant {
            return Err((job, ShedReason::TenantOverLimit));
        }
        *tenant_count += 1;
        state.queues[class].push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Claim the highest-priority queued job, blocking while all queues
    /// are empty. `None` means the scheduler closed: the worker exits.
    ///
    /// Priority is strict — ops drains before interactive before bulk.
    /// Under sustained interactive overload bulk *will* starve; that is
    /// the intended policy (bulk callers retry with backoff), and the
    /// bounded queues mean starvation shows up as prompt shedding, not
    /// silent queue growth.
    pub fn next(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("admission state poisoned");
        loop {
            if let Some(job) = state.queues.iter_mut().find_map(VecDeque::pop_front) {
                if let Some(n) = state.per_tenant.get_mut(&job.tenant) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        state.per_tenant.remove(&job.tenant);
                    }
                }
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .expect("admission state poisoned");
        }
    }

    /// Close the scheduler: queued jobs are dropped, blocked and future
    /// [`Admission::next`] calls return `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("admission state poisoned");
        state.closed = true;
        for q in &mut state.queues {
            q.clear();
        }
        state.per_tenant.clear();
        drop(state);
        self.available.notify_all();
    }

    /// Current queue depths.
    pub fn depths(&self) -> QueueDepths {
        let state = self.state.lock().expect("admission state poisoned");
        QueueDepths {
            ops: state.queues[Priority::Ops as usize].len(),
            interactive: state.queues[Priority::Interactive as usize].len(),
            bulk: state.queues[Priority::Bulk as usize].len(),
            capacity: self.config.queue_capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(priority: Priority, tenant: [u8; 4]) -> Job {
        Job {
            shard: 0,
            conn: 0,
            seq: None,
            kind: 0,
            payload: Vec::new(),
            req_bytes: 0,
            tenant: IpAddr::from(tenant),
            priority,
        }
    }

    #[test]
    fn classification_by_kind_byte() {
        assert_eq!(classify(kind::HELLO), Priority::Ops);
        assert_eq!(classify(kind::CATALOG), Priority::Ops);
        assert_eq!(classify(kind::METRICS), Priority::Ops);
        assert_eq!(classify(kind::EXECUTE), Priority::Interactive);
        assert_eq!(classify(kind::EXECUTE_STORE), Priority::Interactive);
        assert_eq!(classify(kind::TRACED), Priority::Interactive);
        assert_eq!(classify(kind::STORE), Priority::Bulk);
        assert_eq!(classify(kind::STORE_PART), Priority::Bulk);
        assert_eq!(classify(kind::REMOVE), Priority::Bulk);
        assert_eq!(
            classify(0xEE),
            Priority::Interactive,
            "unknown kinds pass through"
        );
    }

    #[test]
    fn ops_drains_before_interactive_before_bulk() {
        let adm = Admission::new(AdmissionConfig::default());
        adm.submit(job(Priority::Bulk, [1, 1, 1, 1])).unwrap();
        adm.submit(job(Priority::Interactive, [1, 1, 1, 1]))
            .unwrap();
        adm.submit(job(Priority::Ops, [1, 1, 1, 1])).unwrap();
        assert_eq!(adm.next().unwrap().priority, Priority::Ops);
        assert_eq!(adm.next().unwrap().priority, Priority::Interactive);
        assert_eq!(adm.next().unwrap().priority, Priority::Bulk);
    }

    #[test]
    fn full_class_queue_sheds_without_blocking() {
        let adm = Admission::new(AdmissionConfig {
            queue_capacity: 2,
            per_tenant: 100,
        });
        adm.submit(job(Priority::Bulk, [1, 1, 1, 1])).unwrap();
        adm.submit(job(Priority::Bulk, [1, 1, 1, 1])).unwrap();
        let (_, reason) = adm.submit(job(Priority::Bulk, [1, 1, 1, 1])).unwrap_err();
        assert_eq!(reason, ShedReason::QueueFull);
        // A full bulk queue does not block ops traffic.
        adm.submit(job(Priority::Ops, [1, 1, 1, 1])).unwrap();
        assert!(adm.depths().saturated());
    }

    #[test]
    fn one_tenant_cannot_fill_the_queue() {
        let adm = Admission::new(AdmissionConfig {
            queue_capacity: 100,
            per_tenant: 2,
        });
        adm.submit(job(Priority::Interactive, [1, 1, 1, 1]))
            .unwrap();
        adm.submit(job(Priority::Interactive, [1, 1, 1, 1]))
            .unwrap();
        let (_, reason) = adm
            .submit(job(Priority::Interactive, [1, 1, 1, 1]))
            .unwrap_err();
        assert_eq!(reason, ShedReason::TenantOverLimit);
        // Another tenant still gets in.
        adm.submit(job(Priority::Interactive, [2, 2, 2, 2]))
            .unwrap();
        // Draining releases the budget.
        adm.next().unwrap();
        adm.submit(job(Priority::Interactive, [1, 1, 1, 1]))
            .unwrap();
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let adm = std::sync::Arc::new(Admission::new(AdmissionConfig::default()));
        let waiter = std::sync::Arc::clone(&adm);
        let h = std::thread::spawn(move || waiter.next());
        std::thread::sleep(std::time::Duration::from_millis(50));
        adm.close();
        assert!(h.join().unwrap().is_none());
        // Submissions after close shed.
        assert!(adm.submit(job(Priority::Ops, [1, 1, 1, 1])).is_err());
    }
}
