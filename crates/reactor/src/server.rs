//! Assembling the serving core: acceptor → shards → admission →
//! executor workers → completions, plus the operational handle that
//! readiness probes and benchmarks talk to.
//!
//! Thread layout for `serve_reactor(engine, bind, opts)`:
//!
//! ```text
//! acceptor ──round-robin──▶ shard 0..N   (event loops, never block)
//!                              │ parse + classify + admit
//!                              ▼
//!                         Admission (bounded priority queues)
//!                              │ next()
//!                              ▼
//!                         worker 0..M   (decode, execute, encode)
//!                              │ completions + poller.notify()
//!                              ▼
//!                         back to the owning shard, onto the socket
//! ```
//!
//! The workers mount the *same* [`bda_net::RequestHandler`] as the
//! thread-per-connection server, so metrics series, structured log
//! lines, tracing, and push semantics are identical between cores —
//! `--reactor` changes scheduling, not meaning.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bda_core::Provider;
use bda_net::{LogSink, RequestHandler};
use bda_obs::{Health, HealthSource, MetricsHub, UsageBook};

use crate::admission::{Admission, AdmissionConfig, QueueDepths};
use crate::shard::{encode_wire, Completion, ShardConfig, ShardCtx, ShardShared};
use crate::slo::{SloMonitor, SloTargets};

/// Tuning for [`serve_reactor`]; `Default` suits tests and small
/// deployments (fields of `0` mean "derive from the machine").
#[derive(Clone)]
pub struct ReactorOptions {
    /// Event-loop shards (`0`: derived, capped at 4 — shards are I/O
    /// bound and cheap, but more than a few is pointless below 10k
    /// connections).
    pub shards: usize,
    /// Executor workers (`0`: one per core, minimum 2).
    pub workers: usize,
    /// Admission bounds (queue capacity per class, per-tenant cap).
    pub admission: AdmissionConfig,
    /// Most admitted-but-unanswered requests per connection before the
    /// shard stops reading from it (pipelining backpressure).
    pub max_inflight_per_conn: usize,
    /// Connection cap; beyond it new connections are closed at accept.
    pub max_connections: usize,
    /// Close a connection stuck mid-message longer than this.
    pub stall_timeout: Duration,
    /// Per-request structured logging, as in `ServeOptions`.
    pub log: Option<LogSink>,
    /// Share a metrics hub (ops HTTP server) instead of a fresh one.
    pub metrics: Option<MetricsHub>,
    /// Usage book charged per request and consulted by fair-share
    /// admission (when `admission.fair_share` is on).
    pub usage: Option<UsageBook>,
    /// Latency SLO targets per priority class, driving the
    /// `bda_slo_burn_rate{class}` gauges.
    pub slo: SloTargets,
}

impl Default for ReactorOptions {
    fn default() -> Self {
        ReactorOptions {
            shards: 0,
            workers: 0,
            admission: AdmissionConfig::default(),
            max_inflight_per_conn: 64,
            max_connections: 8192,
            stall_timeout: Duration::from_secs(10),
            log: None,
            metrics: None,
            usage: None,
            slo: SloTargets::default(),
        }
    }
}

/// Point-in-time load, for `/readyz` and the saturation bench.
#[derive(Debug, Clone, Copy)]
pub struct Saturation {
    /// Admission queue depths per class.
    pub queues: QueueDepths,
    /// Open connections across all shards.
    pub connections: usize,
    /// The configured connection cap.
    pub max_connections: usize,
}

impl Saturation {
    /// Whether the server is refusing work (shedding requests or
    /// connections); `/readyz` answers 503 while this holds so load
    /// balancers prefer other replicas.
    pub fn overloaded(&self) -> bool {
        self.queues.saturated() || self.connections >= self.max_connections
    }
}

/// A running reactor server; dropping it shuts everything down.
pub struct ReactorHandle {
    addr: SocketAddr,
    metrics: MetricsHub,
    admission: Arc<Admission>,
    live_connections: Arc<AtomicUsize>,
    max_connections: usize,
    shutdown: Arc<AtomicBool>,
    shards: Vec<Arc<ShardShared>>,
    threads: Vec<JoinHandle<()>>,
}

impl ReactorHandle {
    /// The bound address (resolves the port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics hub shards and workers charge (shared cells).
    pub fn metrics(&self) -> MetricsHub {
        self.metrics.clone()
    }

    /// Current load, cheap enough for a probe on every request.
    pub fn saturation(&self) -> Saturation {
        Saturation {
            queues: self.admission.depths(),
            connections: self.live_connections.load(Ordering::SeqCst),
            max_connections: self.max_connections,
        }
    }

    /// A [`HealthSource`] for `bda_obs::serve_ops`: live always, ready
    /// while not [`Saturation::overloaded`] — the reactor's admission
    /// state drives `/readyz` exactly like the federation's circuit
    /// breakers drive the app tier's.
    pub fn health_source(&self) -> HealthSource {
        let admission = Arc::clone(&self.admission);
        let live = Arc::clone(&self.live_connections);
        let max = self.max_connections;
        Arc::new(move || {
            let queues = admission.depths();
            let connections = live.load(Ordering::SeqCst);
            let sat = Saturation {
                queues,
                connections,
                max_connections: max,
            };
            let detail = format!(
                "reactor: queued ops={} interactive={} bulk={} (cap {}) conns={}/{}",
                queues.ops, queues.interactive, queues.bulk, queues.capacity, connections, max
            );
            Health {
                healthy: true,
                ready: !sat.overloaded(),
                detail,
            }
        })
    }

    /// Stop accepting, drain the machinery, and join every thread.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor, the admission queue, and every shard.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        self.admission.close();
        for shard in &self.shards {
            let _ = shard.poller.notify();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn derived_parallelism() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get())
}

/// Serve `engine` on `bind` with the sharded event-loop core. Returns
/// once the listener is bound; everything else runs on background
/// threads until the handle shuts down.
pub fn serve_reactor(
    engine: Arc<dyn Provider>,
    bind: &str,
    opts: ReactorOptions,
) -> std::io::Result<ReactorHandle> {
    let shards_n = if opts.shards == 0 {
        derived_parallelism().min(4)
    } else {
        opts.shards
    };
    let workers_n = if opts.workers == 0 {
        derived_parallelism().max(2)
    } else {
        opts.workers
    };
    let mut handler = RequestHandler::new(engine, opts.metrics.unwrap_or_default(), opts.log)?;
    if let Some(usage) = &opts.usage {
        handler.set_usage(usage.clone());
    }
    let handler = Arc::new(handler);
    let metrics = handler.metrics();
    let admission = match &opts.usage {
        Some(usage) => Admission::new(opts.admission).with_usage(usage.clone()),
        None => Admission::new(opts.admission),
    };
    let admission = Arc::new(admission);
    let slo = Arc::new(SloMonitor::new(opts.slo, metrics.clone()));
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let live_connections = Arc::new(AtomicUsize::new(0));

    let shards: Vec<Arc<ShardShared>> = (0..shards_n)
        .map(|_| ShardShared::new().map(Arc::new))
        .collect::<std::io::Result<_>>()?;

    let mut threads = Vec::new();
    for (index, shared) in shards.iter().enumerate() {
        let ctx = ShardCtx {
            index,
            shared: Arc::clone(shared),
            admission: Arc::clone(&admission),
            config: ShardConfig {
                max_inflight: opts.max_inflight_per_conn.max(1),
                stall_timeout: opts.stall_timeout,
            },
            metrics: metrics.clone(),
            live_connections: Arc::clone(&live_connections),
            shutdown: Arc::clone(&shutdown),
        };
        threads.push(
            std::thread::Builder::new()
                .name(format!("bda-reactor-shard-{index}"))
                .spawn(move || crate::shard::run(ctx))?,
        );
    }

    for w in 0..workers_n {
        let admission = Arc::clone(&admission);
        let handler = Arc::clone(&handler);
        let shards = shards.clone();
        let slo = Arc::clone(&slo);
        threads.push(
            std::thread::Builder::new()
                .name(format!("bda-reactor-worker-{w}"))
                .spawn(move || worker_loop(admission, handler, shards, slo))?,
        );
    }

    {
        let shards = shards.clone();
        let shutdown = Arc::clone(&shutdown);
        let live = Arc::clone(&live_connections);
        let metrics = metrics.clone();
        let max_connections = opts.max_connections.max(1);
        threads.push(
            std::thread::Builder::new()
                .name("bda-reactor-accept".to_string())
                .spawn(move || {
                    accept_loop(listener, shards, shutdown, live, metrics, max_connections)
                })?,
        );
    }

    Ok(ReactorHandle {
        addr,
        metrics,
        admission,
        live_connections,
        max_connections: opts.max_connections.max(1),
        shutdown,
        shards,
        threads,
    })
}

fn accept_loop(
    listener: TcpListener,
    shards: Vec<Arc<ShardShared>>,
    shutdown: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    metrics: MetricsHub,
    max_connections: usize,
) {
    let mut next_shard = 0usize;
    while !shutdown.load(Ordering::SeqCst) {
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => continue,
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        if live.load(Ordering::SeqCst) >= max_connections {
            // Shed at the door: an immediate close is a retryable
            // transport error to the client's redial machinery, and it
            // costs this process nothing that lingers.
            metrics
                .counter(
                    "bda_reactor_connections_refused_total",
                    "Connections closed at accept by the connection cap.",
                )
                .inc();
            drop(conn);
            continue;
        }
        live.fetch_add(1, Ordering::SeqCst);
        let shard = &shards[next_shard % shards.len()];
        next_shard = next_shard.wrapping_add(1);
        shard.incoming.lock().expect("incoming poisoned").push(conn);
        let _ = shard.poller.notify();
    }
}

/// Executor worker: claim → decode+execute via the shared handler →
/// frame → hand the completion to the owning shard.
fn worker_loop(
    admission: Arc<Admission>,
    handler: Arc<RequestHandler>,
    shards: Vec<Arc<ShardShared>>,
    slo: Arc<SloMonitor>,
) {
    while let Some(job) = admission.next() {
        let response = handler.handle_frame_as(job.kind, &job.payload, job.req_bytes, &job.tenant);
        slo.observe(job.priority, job.admitted_at.elapsed());
        let wire = encode_wire(&response);
        let shard = &shards[job.shard];
        shard
            .completions
            .lock()
            .expect("completions poisoned")
            .push(Completion {
                conn: job.conn,
                seq: job.seq,
                wire,
            });
        let _ = shard.poller.notify();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{Plan, Provider, ReferenceProvider};
    use bda_net::{PipelinedClient, RemoteProvider, Request, Response};
    use bda_storage::{Column, DataSet};

    fn sample() -> DataSet {
        DataSet::from_columns(vec![
            ("k", Column::from(vec![1i64, 2, 3, 4])),
            ("v", Column::from(vec![1.0f64, 2.0, 3.0, 4.0])),
        ])
        .unwrap()
    }

    fn reactor(engine: Arc<dyn Provider>) -> ReactorHandle {
        serve_reactor(engine, "127.0.0.1:0", ReactorOptions::default()).unwrap()
    }

    #[test]
    fn remote_provider_works_unchanged_against_the_reactor() {
        let engine = Arc::new(ReferenceProvider::new("ref"));
        engine.store("t", sample()).unwrap();
        let server = reactor(engine);
        let remote = RemoteProvider::connect(server.addr().to_string()).unwrap();
        assert_eq!(remote.name(), "ref");
        let catalog = remote.catalog();
        assert_eq!(catalog.len(), 1);
        let out = remote
            .execute(&Plan::scan("t", catalog[0].1.clone()))
            .unwrap();
        assert_eq!(out.num_rows(), 4);
        remote.store("u", sample()).unwrap();
        assert_eq!(remote.catalog().len(), 2);
        let text = remote.metrics_text().unwrap();
        assert!(text.contains("bda_net_requests_total"), "{text}");
    }

    #[test]
    fn pipelined_clients_overlap_requests() {
        let engine = Arc::new(ReferenceProvider::new("ref"));
        engine.store("t", sample()).unwrap();
        let server = reactor(engine);
        let client = PipelinedClient::connect(&server.addr().to_string()).unwrap();
        let plan = Plan::scan("t", sample().schema().clone());
        let pending: Vec<_> = (0..32)
            .map(|_| {
                client
                    .send(&Request::Execute { plan: plan.clone() })
                    .unwrap()
            })
            .collect();
        for p in pending {
            match p.wait(Duration::from_secs(30)).unwrap() {
                Response::DataSet(ds) => assert_eq!(ds.num_rows(), 4),
                other => panic!("expected dataset, got {other:?}"),
            }
        }
    }

    #[test]
    fn readyz_health_source_reports_saturation_detail() {
        let engine = Arc::new(ReferenceProvider::new("ref"));
        let server = reactor(engine);
        let health = (server.health_source())();
        assert!(health.healthy && health.ready, "{health:?}");
        assert!(
            health.detail.contains("reactor: queued"),
            "{}",
            health.detail
        );
        assert!(!server.saturation().overloaded());
    }

    #[test]
    fn connection_cap_refuses_not_hangs() {
        let engine = Arc::new(ReferenceProvider::new("ref"));
        let server = serve_reactor(
            engine,
            "127.0.0.1:0",
            ReactorOptions {
                max_connections: 2,
                ..ReactorOptions::default()
            },
        )
        .unwrap();
        let addr = server.addr().to_string();
        let _a = RemoteProvider::connect(addr.clone()).unwrap();
        let _b = RemoteProvider::connect(addr.clone()).unwrap();
        // The cap may briefly lag adoption, so allow a few tries: the
        // third client must either fail to connect or fail its first
        // request — never hang.
        let third = RemoteProvider::connect_with(
            addr,
            bda_net::RemoteOptions {
                timeout: Duration::from_secs(2),
                retry: bda_net::RetryPolicy {
                    attempts: 2,
                    initial_backoff: Duration::from_millis(10),
                },
                ..bda_net::RemoteOptions::default()
            },
        );
        match third {
            Err(_) => {}
            Ok(p) => {
                // Connected before the cap caught up: the connection is
                // closed rather than served; a request surfaces an error.
                let r = p.execute(&Plan::scan("t", sample().schema().clone()));
                assert!(r.is_err());
            }
        }
    }

    #[test]
    fn shutdown_joins_every_thread() {
        let engine = Arc::new(ReferenceProvider::new("ref"));
        let mut server = reactor(engine);
        let remote = RemoteProvider::connect(server.addr().to_string()).unwrap();
        drop(remote);
        server.shutdown();
        server.shutdown(); // idempotent
    }
}
