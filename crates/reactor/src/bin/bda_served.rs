//! `bda-served`: serve one BDA engine over TCP.
//!
//! ```text
//! bda-served --engine relational --name rel --listen 127.0.0.1:7401
//! ```
//!
//! Engines: `relational`, `array`, `linalg`, `graph`, `reference`.
//! Data arrives over the wire: the application (or a peer server
//! executing a push) issues `Store` requests, exactly like any other
//! provider interaction. `--demo` preloads a small sales table and a
//! 2x3 matrix so the README quick-start has something to query.
//! `--log <path|stderr>` emits one structured line per request (kind,
//! duration, bytes, outcome); a `Metrics` request returns the server's
//! Prometheus-format registry either way.
//!
//! `--http <port>` additionally mounts the plain-HTTP observability
//! endpoint on `127.0.0.1:<port>` (`0` picks an ephemeral port):
//! `GET /metrics` renders the same registry the protocol serves, plus
//! `/healthz`, `/readyz`, `/progress`, `/flight`, `/traces/<id>`,
//! `/queries`, `/queries/slow`, and `/calibration` — see README,
//! "Operating bda-served". When `BDA_PROFILE_DIR` is set (or, failing
//! that, when `--data-dir` is given — `<dir>/profiles` is used), the
//! query-profile log behind `/queries` persists as JSONL and is
//! recovered on restart.
//!
//! `--reactor` swaps the thread-per-connection core for the sharded
//! event-loop core in `bda-reactor`: epoll readiness, request
//! pipelining, admission control with priority queues, and load
//! shedding. Same protocol, same request semantics, same metrics; in
//! this mode `/readyz` reports 503 while the admission queues are
//! saturated. `--shards`, `--workers`, `--queue`, `--per-tenant`,
//! `--max-conns`, and `--max-inflight` tune it (0 = derive).
//!
//! `--data-dir <dir>` makes the served engine durable: prior state is
//! recovered (newest snapshot + WAL tail) before the listener binds,
//! every acknowledged mutation is write-ahead-logged, and a background
//! thread compacts the log into snapshots. `--fsync always|never`
//! picks the append sync policy (default `always`: acknowledged writes
//! survive power loss, not just `kill -9`). While recovery replays,
//! `/readyz` reports 503 with a `recovering` detail.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use bda_durability::{DurableProvider, FsyncPolicy};

use bda_array::ArrayEngine;
use bda_core::{Provider, ReferenceProvider};
use bda_graph::GraphEngine;
use bda_linalg::LinAlgEngine;
use bda_relational::RelationalEngine;
use bda_storage::dataset::matrix_dataset;
use bda_storage::{Column, DataSet};

struct Args {
    engine: String,
    name: String,
    listen: String,
    demo: bool,
    log: Option<bda_net::LogSink>,
    http: Option<u16>,
    data_dir: Option<String>,
    fsync: FsyncPolicy,
    reactor: bool,
    shards: usize,
    workers: usize,
    queue: usize,
    per_tenant: usize,
    max_conns: usize,
    max_inflight: usize,
    fair_share: bool,
    meter: bool,
    cluster: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut engine = String::from("reference");
    let mut name = None;
    let mut listen = String::from("127.0.0.1:7401");
    let mut demo = false;
    let mut log = None;
    let mut http = None;
    let mut data_dir = None;
    let mut fsync = FsyncPolicy::Always;
    let mut reactor = false;
    let mut shards = 0usize;
    let mut workers = 0usize;
    let mut queue = 0usize;
    let mut per_tenant = 0usize;
    let mut max_conns = 0usize;
    let mut max_inflight = 0usize;
    let mut fair_share = false;
    let mut meter = false;
    let mut cluster: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("missing value after {what}"))
        };
        match arg.as_str() {
            "--engine" => engine = value("--engine")?,
            "--name" => name = Some(value("--name")?),
            "--listen" => listen = value("--listen")?,
            "--demo" => demo = true,
            "--log" => {
                log = Some(match value("--log")?.as_str() {
                    "stderr" | "-" => bda_net::LogSink::Stderr,
                    path => bda_net::LogSink::File(path.into()),
                })
            }
            "--http" => {
                let raw = value("--http")?;
                http = Some(
                    raw.parse::<u16>()
                        .map_err(|_| format!("--http wants a port number, got `{raw}`"))?,
                );
            }
            "--data-dir" => data_dir = Some(value("--data-dir")?),
            "--fsync" => {
                let raw = value("--fsync")?;
                fsync = FsyncPolicy::parse(&raw)
                    .ok_or_else(|| format!("--fsync wants `always` or `never`, got `{raw}`"))?;
            }
            "--reactor" => reactor = true,
            "--fair-share" => fair_share = true,
            "--meter" => meter = true,
            "--cluster" => cluster.extend(
                value("--cluster")?
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(String::from),
            ),
            "--shards" | "--workers" | "--queue" | "--per-tenant" | "--max-conns"
            | "--max-inflight" => {
                let raw = value(&arg)?;
                let n = raw
                    .parse::<usize>()
                    .map_err(|_| format!("{arg} wants a number, got `{raw}`"))?;
                match arg.as_str() {
                    "--shards" => shards = n,
                    "--workers" => workers = n,
                    "--queue" => queue = n,
                    "--per-tenant" => per_tenant = n,
                    "--max-conns" => max_conns = n,
                    _ => max_inflight = n,
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: bda-served [--engine relational|array|linalg|graph|reference]\n\
                     \x20                 [--name NAME] [--listen HOST:PORT] [--demo]\n\
                     \x20                 [--log PATH|stderr] [--http PORT]\n\
                     \x20                 [--data-dir DIR] [--fsync always|never] [--reactor]\n\
                     \x20                 [--shards N] [--workers N] [--queue N]\n\
                     \x20                 [--per-tenant N] [--max-conns N] [--max-inflight N]\n\
                     \x20                 [--meter] [--fair-share] [--cluster ADDR,ADDR]\n\
                     \n\
                     --log writes one structured line per request (kind, duration,\n\
                     bytes, outcome) to the given file, or to stderr.\n\
                     --http mounts the observability HTTP endpoint (/metrics,\n\
                     /healthz, /readyz, /progress, /flight, /traces/<id>,\n\
                     /queries, /queries/slow, /calibration) on 127.0.0.1:PORT;\n\
                     port 0 picks an ephemeral port. The query-profile log\n\
                     persists under BDA_PROFILE_DIR (or <data-dir>/profiles)\n\
                     and is recovered on restart.\n\
                     --data-dir makes the engine durable: prior state is recovered\n\
                     from DIR before the listener binds, acknowledged mutations are\n\
                     write-ahead-logged there, and snapshots compact the log.\n\
                     --fsync picks the WAL sync policy: `always` (default; acked\n\
                     writes survive power loss) or `never` (page cache only:\n\
                     survives kill -9, not power loss).\n\
                     --reactor serves on the sharded event-loop core (pipelining,\n\
                     admission control, load shedding); the remaining flags tune\n\
                     its shards, executor workers, per-class admission queue\n\
                     capacity, per-tenant cap, connection cap, and per-connection\n\
                     in-flight window (0 = derive a default).\n\
                     --meter charges per-tenant usage (rows, bytes, CPU, wire\n\
                     traffic) into the book behind /tenants, persisted under the\n\
                     profile directory.\n\
                     --fair-share claims queued requests by usage-weighted fair\n\
                     share between tenants (reactor mode) instead of FIFO.\n\
                     --cluster lists peer bda-served addresses; GET /cluster/metrics\n\
                     on the ops endpoint then merges this node's exposition with\n\
                     each peer's (pulled over the wire protocol at scrape time),\n\
                     every sample labeled with its instance."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let name = name.unwrap_or_else(|| engine.clone());
    Ok(Args {
        engine,
        name,
        listen,
        demo,
        log,
        http,
        data_dir,
        fsync,
        reactor,
        shards,
        workers,
        queue,
        per_tenant,
        max_conns,
        max_inflight,
        fair_share,
        meter,
        cluster,
    })
}

fn build_engine(kind: &str, name: &str) -> Result<Arc<dyn Provider>, String> {
    Ok(match kind {
        "relational" => Arc::new(RelationalEngine::new(name)),
        "array" => Arc::new(ArrayEngine::new(name)),
        "linalg" => Arc::new(LinAlgEngine::new(name)),
        "graph" => Arc::new(GraphEngine::new(name)),
        "reference" => Arc::new(ReferenceProvider::new(name)),
        other => return Err(format!("unknown engine `{other}`")),
    })
}

/// Preload demo datasets. Engines are picky about shapes (the linalg
/// engine only stores 2-D arrays), so each dataset is offered
/// best-effort and skipped where the engine declines it.
fn demo_data(engine: &dyn Provider) -> Result<(), bda_core::CoreError> {
    let table = DataSet::from_columns(vec![
        ("k", Column::from(vec![1i64, 2, 3, 4])),
        ("v", Column::from(vec![10.0f64, 20.0, 30.0, 40.0])),
    ])?;
    let matrix = matrix_dataset(2, 3, vec![1., 2., 3., 4., 5., 6.])?;
    let mut stored = 0;
    for (name, ds) in [("sales", table), ("m", matrix)] {
        match engine.store(name, ds) {
            Ok(()) => stored += 1,
            Err(e) => eprintln!("bda-served: demo dataset `{name}` skipped: {e}"),
        }
    }
    if stored == 0 {
        return Err(bda_core::CoreError::Plan(
            "no demo dataset fits this engine".into(),
        ));
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bda-served: {e}");
            std::process::exit(2);
        }
    };
    let engine = match build_engine(&args.engine, &args.name) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bda-served: {e}");
            std::process::exit(2);
        }
    };
    // The query-profile log persists under an explicit BDA_PROFILE_DIR,
    // or under `<data-dir>/profiles` when the engine is durable. Setting
    // the env var before the log's first touch routes both cases through
    // the global log's own initialisation, so profiles recorded by a
    // previous process are served again after restart.
    let profile_dir = std::env::var(bda_obs::profile::PROFILE_DIR_ENV)
        .ok()
        .filter(|d| !d.trim().is_empty())
        .or_else(|| {
            args.data_dir.as_ref().map(|d| {
                std::path::Path::new(d)
                    .join("profiles")
                    .display()
                    .to_string()
            })
        });
    if let Some(dir) = profile_dir {
        std::env::set_var(bda_obs::profile::PROFILE_DIR_ENV, &dir);
        let recovered = bda_obs::profile::global_log().len();
        println!("bda-served: profile log persists to {dir} ({recovered} profiles recovered)");
    }

    // One hub for everything: request counters, durability WAL/replay
    // metrics, and the ops endpoint all share these cells.
    let metrics = bda_obs::MetricsHub::new();

    // Metering charges every request to its tenant (wire tag or peer
    // address) in the global usage book — the one `/tenants` serves and
    // fair-share admission consults. The book persists alongside the
    // profile log when a profile directory is configured (above), so
    // totals survive restarts.
    let usage = if args.meter {
        bda_obs::meter::set_enabled(true);
        let book = bda_obs::meter::global_usage().clone();
        println!(
            "bda-served: metering enabled ({} tenants recovered)",
            book.snapshot().len()
        );
        Some(book)
    } else {
        None
    };

    // Readiness is gated twice: not ready until recovery has replayed
    // (durable mode), then delegated to the serving core's own health
    // (the reactor reports saturation) once it is up.
    let replay_done = Arc::new(AtomicBool::new(args.data_dir.is_none()));
    let serving_health: Arc<Mutex<Option<bda_obs::HealthSource>>> = Arc::new(Mutex::new(None));
    let gated_health: bda_obs::HealthSource = {
        let replay_done = Arc::clone(&replay_done);
        let serving_health = Arc::clone(&serving_health);
        Arc::new(move || {
            if !replay_done.load(Ordering::SeqCst) {
                return bda_obs::Health {
                    healthy: true,
                    ready: false,
                    detail: "recovering: replaying snapshot + wal".into(),
                };
            }
            match &*serving_health.lock().expect("health lock poisoned") {
                Some(h) => h(),
                None => bda_obs::Health::default(),
            }
        })
    };

    // With peers configured, `GET /cluster/metrics` on the ops endpoint
    // merges this node's exposition with each peer's, pulled over the
    // wire protocol at scrape time and labeled per instance. Peers are
    // dialed fresh per scrape (scrapes are rare; reconnecting makes the
    // view self-healing after peer restarts), and an unreachable peer
    // contributes a comment line instead of failing the whole view.
    let cluster_peers = args.cluster.clone();
    let cluster_source: Option<bda_obs::ClusterSource> = if cluster_peers.is_empty() {
        None
    } else {
        let hub = metrics.clone();
        let self_name = args.name.clone();
        Some(Arc::new(move || {
            let mut sections = vec![(self_name.clone(), hub.render())];
            for addr in &cluster_peers {
                let peer = bda_net::RemoteProvider::connect_with(
                    addr.clone(),
                    bda_net::RemoteOptions {
                        timeout: std::time::Duration::from_secs(2),
                        retry: bda_net::RetryPolicy {
                            attempts: 1,
                            initial_backoff: std::time::Duration::from_millis(50),
                        },
                        ..bda_net::RemoteOptions::default()
                    },
                );
                match peer.and_then(|p| p.metrics_text().map(|t| (p.name().to_string(), t))) {
                    Ok((name, text)) => sections.push((name, text)),
                    Err(e) => {
                        sections.push((addr.clone(), format!("# peer {addr} unreachable: {e}\n")))
                    }
                }
            }
            bda_obs::metrics::merge_instances(&sections)
        }))
    };

    // Mount the ops endpoint over whichever core is serving; the shared
    // metrics hub means `GET /metrics` scrapes the same request counters
    // the protocol updates. The handle must outlive the serve loop or
    // the endpoint shuts down on drop.
    let mount_ops = |port: u16, metrics: bda_obs::MetricsHub, health: bda_obs::HealthSource| {
        let options = bda_obs::OpsOptions {
            metrics,
            health,
            cluster: cluster_source.clone(),
            ..bda_obs::OpsOptions::default()
        };
        match bda_obs::serve_ops(&format!("127.0.0.1:{port}"), options) {
            Ok(h) => {
                println!("bda-served: ops endpoint on {}", h.addr());
                h
            }
            Err(e) => {
                eprintln!("bda-served: ops bind 127.0.0.1:{port}: {e}");
                std::process::exit(1);
            }
        }
    };

    // Durable mode mounts the ops endpoint *before* recovery so
    // `/readyz` observably holds 503 while the replay runs.
    let mut ops = None;
    if args.data_dir.is_some() {
        if let Some(port) = args.http {
            ops = Some(mount_ops(port, metrics.clone(), gated_health.clone()));
        }
    }

    let mut durable: Option<Arc<DurableProvider>> = None;
    let engine: Arc<dyn Provider> = match &args.data_dir {
        Some(dir) => {
            let options = bda_durability::Options::new(dir)
                .with_fsync(args.fsync)
                .with_metrics(metrics.clone());
            match DurableProvider::open(engine, options) {
                Ok(p) => {
                    let p = Arc::new(p);
                    let r = p.report();
                    println!(
                        "bda-served: recovered {} datasets (snapshot seq {}, {} wal records, \
                         torn tail truncated: {}) from {dir} in {} ms",
                        r.datasets.len(),
                        r.snapshot_seq,
                        r.wal_records_replayed,
                        r.torn_tail_truncated,
                        r.elapsed.as_millis()
                    );
                    durable = Some(Arc::clone(&p));
                    p
                }
                Err(e) => {
                    eprintln!("bda-served: recovery from {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => engine,
    };
    replay_done.store(true, Ordering::SeqCst);
    // Keep the durable wrapper (and its snapshotter thread) alive for
    // the life of the process.
    let _durable = durable;

    if args.demo {
        // Stored through the durable wrapper when one is mounted, so
        // demo data survives restarts like any other ingest.
        if let Err(e) = demo_data(engine.as_ref()) {
            eprintln!("bda-served: demo data: {e}");
            std::process::exit(1);
        }
    }
    if args.reactor {
        let mut admission = bda_reactor::AdmissionConfig::default();
        if args.queue > 0 {
            admission.queue_capacity = args.queue;
        }
        if args.per_tenant > 0 {
            admission.per_tenant = args.per_tenant;
        }
        admission.fair_share = args.fair_share;
        let mut opts = bda_reactor::ReactorOptions {
            shards: args.shards,
            workers: args.workers,
            admission,
            log: args.log.clone(),
            metrics: Some(metrics.clone()),
            usage: usage.clone(),
            ..bda_reactor::ReactorOptions::default()
        };
        if args.max_conns > 0 {
            opts.max_connections = args.max_conns;
        }
        if args.max_inflight > 0 {
            opts.max_inflight_per_conn = args.max_inflight;
        }
        let server = match bda_reactor::serve_reactor(Arc::clone(&engine), &args.listen, opts) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bda-served: bind {}: {e}", args.listen);
                std::process::exit(1);
            }
        };
        println!(
            "bda-served: `{}` ({}) listening on {} [reactor]",
            args.name,
            args.engine,
            server.addr()
        );
        *serving_health.lock().expect("health lock poisoned") = Some(server.health_source());
        let _ops = ops.take().or_else(|| {
            args.http
                .map(|port| mount_ops(port, server.metrics(), gated_health))
        });
        loop {
            std::thread::park();
        }
    }
    let opts = bda_net::ServeOptions {
        log: args.log.clone(),
        metrics: Some(metrics.clone()),
        usage,
        ..bda_net::ServeOptions::default()
    };
    let server = match bda_net::serve_with(Arc::clone(&engine), &args.listen, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bda-served: bind {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    println!(
        "bda-served: `{}` ({}) listening on {}",
        args.name,
        args.engine,
        server.addr()
    );
    let _ops = ops.take().or_else(|| {
        args.http
            .map(|port| mount_ops(port, server.metrics(), gated_health))
    });
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
