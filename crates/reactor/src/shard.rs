//! One event-loop shard: a poller, the connections assigned to it, and
//! the non-blocking read/parse/admit and write/flush state machines.
//!
//! A shard never executes a request and never blocks on a peer. It
//! reads whatever bytes are ready, runs the incremental frame parser
//! ([`bda_net::frame::parse_message`]) over its buffer, classifies each
//! complete message by peeking one byte, and hands it to admission. CPU
//! work happens on executor workers; finished responses come back
//! through the shard's completion queue and are flushed as the socket
//! accepts them. The expensive thing a slow or hostile client can pin
//! is therefore a buffer, never a thread.
//!
//! Per-connection discipline:
//!
//! * **Pipelining** — tagged requests complete out of order; untagged
//!   requests get a sequence number at parse time and their responses
//!   are *released in arrival order* (out-of-order completions park in
//!   a BTreeMap), so a classic request/response client sees exactly the
//!   blocking server's behavior.
//! * **Backpressure** — at `max_inflight` admitted requests the shard
//!   stops parsing (bytes stay buffered) and drops read interest;
//!   completions re-arm it. A client that pipelines too deep is paced,
//!   not disconnected.
//! * **Slow-loris reaping** — a connection sitting on an *incomplete*
//!   message with no new bytes for `stall_timeout` is closed. Idle
//!   connections between messages are never reaped (pooled clients park
//!   connections deliberately).
//! * **Shedding** — when admission refuses, the shard immediately
//!   queues a transient error reply (tag echoed for pipelined requests,
//!   sequence slot taken for untagged ones) so the client's retry and
//!   circuit-breaker machinery engages at once.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{IpAddr, Ipv4Addr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bda_net::frame::{parse_message, write_message};
use bda_net::proto::{encode_response, peek_frame, Response};
use bda_net::MAX_MESSAGE_BYTES;
use bda_obs::MetricsHub;
use polling::{Event, Poller};

use crate::admission::{classify, Admission, Job};

/// How long a shard sleeps in `wait` with nothing to do; bounds how
/// stale the stall-reaper can be.
const TICK: Duration = Duration::from_millis(250);

/// Most bytes read from one connection per wakeup, for fairness across
/// a shard's connections (level-triggered polling re-reports the rest).
const READ_BUDGET: usize = 256 * 1024;

/// A finished response on its way back to the connection.
pub(crate) struct Completion {
    /// Shard-local connection key.
    pub conn: u64,
    /// The untagged release slot, `None` for tagged responses.
    pub seq: Option<u64>,
    /// Fully framed wire bytes.
    pub wire: Vec<u8>,
}

/// The shard's cross-thread surface: the acceptor pushes connections,
/// executor workers push completions, everyone notifies the poller.
pub(crate) struct ShardShared {
    pub poller: Arc<Poller>,
    pub incoming: Mutex<Vec<TcpStream>>,
    pub completions: Mutex<Vec<Completion>>,
}

impl ShardShared {
    pub fn new() -> std::io::Result<ShardShared> {
        Ok(ShardShared {
            poller: Arc::new(Poller::new()?),
            incoming: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
        })
    }
}

/// Tuning knobs the server resolves from [`crate::ReactorOptions`].
#[derive(Clone, Copy)]
pub(crate) struct ShardConfig {
    pub max_inflight: usize,
    pub stall_timeout: Duration,
}

struct Conn {
    stream: TcpStream,
    peer: IpAddr,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// How much of `wbuf` is already on the wire.
    woff: usize,
    inflight: usize,
    /// Next sequence number handed to an untagged request.
    next_seq: u64,
    /// Next sequence number allowed onto the wire.
    next_release: u64,
    /// Out-of-order untagged responses awaiting their release slot.
    parked: BTreeMap<u64, Vec<u8>>,
    /// Last time bytes arrived; drives the mid-message stall reaper.
    last_bytes: Instant,
    /// Current poller interest, to skip redundant `modify` calls.
    interest: (bool, bool),
}

impl Conn {
    fn wants(&self, cfg: &ShardConfig) -> (bool, bool) {
        let readable = self.inflight < cfg.max_inflight;
        let writable = self.woff < self.wbuf.len();
        (readable, writable)
    }

    /// Queue framed bytes, honoring the untagged in-order release rule.
    fn deliver(&mut self, seq: Option<u64>, wire: Vec<u8>) {
        match seq {
            None => self.wbuf.extend_from_slice(&wire),
            Some(s) => {
                self.parked.insert(s, wire);
                while let Some(w) = self.parked.remove(&self.next_release) {
                    self.wbuf.extend_from_slice(&w);
                    self.next_release += 1;
                }
            }
        }
    }

    /// Write queued bytes until the socket pushes back. `Err` means the
    /// connection is broken.
    fn flush(&mut self) -> std::io::Result<()> {
        while self.woff < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.woff..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer stopped reading",
                    ))
                }
                Ok(n) => self.woff += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.woff == self.wbuf.len() {
            self.wbuf.clear();
            self.woff = 0;
        }
        Ok(())
    }
}

/// Everything a running shard needs, bundled to keep the thread entry
/// point readable.
pub(crate) struct ShardCtx {
    pub index: usize,
    pub shared: Arc<ShardShared>,
    pub admission: Arc<Admission>,
    pub config: ShardConfig,
    pub metrics: MetricsHub,
    pub live_connections: Arc<AtomicUsize>,
    pub shutdown: Arc<AtomicBool>,
}

/// The shard thread body: loops until shutdown, then closes everything.
pub(crate) fn run(ctx: ShardCtx) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_key: u64 = 0;
    let mut events: Vec<Event> = Vec::new();
    let mut dead: Vec<u64> = Vec::new();
    while !ctx.shutdown.load(Ordering::SeqCst) {
        events.clear();
        let _ = ctx.shared.poller.wait(&mut events, Some(TICK));

        // Adopt connections the acceptor assigned to this shard.
        let fresh: Vec<TcpStream> =
            std::mem::take(&mut *ctx.shared.incoming.lock().expect("incoming poisoned"));
        for stream in fresh {
            let key = next_key;
            next_key += 1;
            if adopt(&ctx, &mut conns, key, stream).is_err() {
                ctx.live_connections.fetch_sub(1, Ordering::SeqCst);
            }
        }

        // Route finished responses back onto their connections.
        let done: Vec<Completion> =
            std::mem::take(&mut *ctx.shared.completions.lock().expect("completions poisoned"));
        for c in done {
            // The connection may have died while its request executed.
            let Some(conn) = conns.get_mut(&c.conn) else {
                continue;
            };
            conn.inflight = conn.inflight.saturating_sub(1);
            conn.deliver(c.seq, c.wire);
            // Capacity freed: buffered bytes may hold parseable
            // messages that were blocked on the inflight cap.
            if drain_rbuf(&ctx, c.conn, conn).is_err() || conn.flush().is_err() {
                dead.push(c.conn);
            }
        }

        // Socket readiness.
        for ev in &events {
            let key = ev.key as u64;
            let Some(conn) = conns.get_mut(&key) else {
                continue;
            };
            let mut broken = false;
            if ev.readable {
                broken = !read_ready(&ctx, key, conn);
            }
            if !broken && ev.writable && conn.flush().is_err() {
                broken = true;
            }
            if broken {
                dead.push(key);
            }
        }

        // Reap mid-message stalls (slow loris): an incomplete message
        // and no bytes for the stall window. Idle connections (empty
        // read buffer) and backpressured ones (inflight work) live on.
        for (key, conn) in conns.iter() {
            if conn.inflight == 0
                && !conn.rbuf.is_empty()
                && conn.last_bytes.elapsed() > ctx.config.stall_timeout
            {
                dead.push(*key);
                ctx.metrics
                    .counter(
                        "bda_reactor_stalled_connections_total",
                        "Connections reaped mid-message by the stall deadline.",
                    )
                    .inc();
            }
        }

        // Close broken connections and refresh interest on the rest.
        dead.sort_unstable();
        dead.dedup();
        for key in dead.drain(..) {
            if let Some(conn) = conns.remove(&key) {
                let _ = ctx.shared.poller.delete(&conn.stream);
                ctx.live_connections.fetch_sub(1, Ordering::SeqCst);
            }
        }
        for (key, conn) in conns.iter_mut() {
            let want = conn.wants(&ctx.config);
            if want != conn.interest {
                let ev = Event {
                    key: *key as usize,
                    readable: want.0,
                    writable: want.1,
                };
                if ctx.shared.poller.modify(&conn.stream, ev).is_ok() {
                    conn.interest = want;
                }
            }
        }
    }
    for (_, conn) in conns.drain() {
        let _ = ctx.shared.poller.delete(&conn.stream);
        ctx.live_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

fn adopt(
    ctx: &ShardCtx,
    conns: &mut HashMap<u64, Conn>,
    key: u64,
    stream: TcpStream,
) -> std::io::Result<()> {
    stream.set_nonblocking(true)?;
    stream.set_nodelay(true)?;
    let peer = stream
        .peer_addr()
        .map(|a| a.ip())
        .unwrap_or(IpAddr::V4(Ipv4Addr::UNSPECIFIED));
    ctx.shared
        .poller
        .add(&stream, Event::readable(key as usize))?;
    conns.insert(
        key,
        Conn {
            stream,
            peer,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            woff: 0,
            inflight: 0,
            next_seq: 0,
            next_release: 0,
            parked: BTreeMap::new(),
            last_bytes: Instant::now(),
            interest: (true, false),
        },
    );
    ctx.metrics
        .counter(
            "bda_reactor_connections_total",
            "Connections adopted by reactor shards.",
        )
        .inc();
    Ok(())
}

/// Read whatever is ready (bounded per wakeup), then parse and admit.
/// Returns `false` when the connection must close.
fn read_ready(ctx: &ShardCtx, key: u64, conn: &mut Conn) -> bool {
    let mut scratch = [0u8; 16 * 1024];
    let mut taken = 0usize;
    loop {
        if taken >= READ_BUDGET {
            break; // stay fair: the poller will re-report the rest
        }
        match conn.stream.read(&mut scratch) {
            Ok(0) => return false, // peer closed
            Ok(n) => {
                conn.rbuf.extend_from_slice(&scratch[..n]);
                conn.last_bytes = Instant::now();
                taken += n;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    drain_rbuf(ctx, key, conn).is_ok()
}

/// Parse complete messages out of the read buffer and admit them, up to
/// the inflight cap. `Err` means protocol damage: close the connection
/// (a framed stream cannot be resynchronized).
fn drain_rbuf(ctx: &ShardCtx, key: u64, conn: &mut Conn) -> Result<(), ()> {
    let mut consumed = 0usize;
    let outcome = loop {
        if conn.inflight >= ctx.config.max_inflight {
            break Ok(());
        }
        match parse_message(&conn.rbuf[consumed..], MAX_MESSAGE_BYTES) {
            Ok(None) => break Ok(()),
            Ok(Some((kind, payload, used))) => {
                consumed += used;
                admit(ctx, key, conn, kind, payload, used as u64);
            }
            Err(_) => {
                ctx.metrics
                    .counter(
                        "bda_reactor_protocol_errors_total",
                        "Connections dropped for unparseable framing.",
                    )
                    .inc();
                break Err(());
            }
        }
    };
    if consumed > 0 {
        conn.rbuf.drain(..consumed);
    }
    outcome
}

/// Classify, tag, and offer one parsed message to admission; on refusal
/// queue the transient shed reply immediately. The same cheap peek that
/// finds the class kind also lifts the tenant tag, so attribution costs
/// no decode either; untagged requests charge the peer address.
fn admit(ctx: &ShardCtx, key: u64, conn: &mut Conn, kind: u8, payload: Vec<u8>, req_bytes: u64) {
    let peek = peek_frame(kind, &payload);
    let (seq, tag) = match peek.tag {
        Some(tag) => (None, Some(tag)),
        None => {
            let s = conn.next_seq;
            conn.next_seq += 1;
            (Some(s), None)
        }
    };
    let priority = classify(peek.kind);
    let tenant = peek.tenant.unwrap_or_else(|| conn.peer.to_string());
    let job = Job {
        shard: ctx.index,
        conn: key,
        seq,
        kind,
        payload,
        req_bytes,
        tenant,
        priority,
        admitted_at: Instant::now(),
    };
    match ctx.admission.submit(job) {
        Ok(()) => conn.inflight += 1,
        Err((job, reason)) => {
            ctx.metrics
                .counter_labeled(
                    "bda_reactor_shed_total",
                    &[("class", priority.label()), ("reason", reason.label())],
                    "Requests refused admission and answered with a transient error.",
                )
                .inc();
            ctx.metrics
                .counter_labeled(
                    "bda_admission_shed_total",
                    &[("reason", reason.as_str()), ("priority", priority.label())],
                    "Admission refusals by shed reason and priority class.",
                )
                .inc();
            let inner = Response::Error {
                msg: format!("server overloaded ({}): retry with backoff", reason.label()),
                transient: true,
            };
            let resp = match tag {
                Some(tag) => Response::Pipelined {
                    tag,
                    inner: Box::new(inner),
                },
                None => inner,
            };
            conn.deliver(job.seq, encode_wire(&resp));
            let _ = conn.flush();
        }
    }
}

/// Frame a response into wire bytes (writing to a Vec cannot fail).
pub(crate) fn encode_wire(resp: &Response) -> Vec<u8> {
    let (kind, payload) = encode_response(resp);
    let mut wire = Vec::with_capacity(payload.len() + 64);
    write_message(&mut wire, kind, &payload).expect("vec write is infallible");
    wire
}
