//! # `bda-reactor`: the event-loop serving core
//!
//! `bda-net`'s thread-per-connection server is honest and simple, but a
//! thread per connection is the wrong shape for a serving tier meant to
//! face *many* users: a thousand mostly-idle connections cost a
//! thousand stacks, and one slow client pins a whole thread. This crate
//! is the production-shaped alternative — the same wire protocol, the
//! same [`bda_net::RequestHandler`] semantics, mounted on:
//!
//! * **Sharded readiness event loops** ([`shard`]) over the vendored
//!   `polling` crate (real epoll on Linux, reached by raw syscalls):
//!   each shard owns a set of non-blocking connections and parses
//!   frames incrementally as bytes arrive.
//! * **Request pipelining**: a connection may have many requests in
//!   flight; tagged ([`bda_net::Request::Pipelined`]) responses return
//!   as they finish, untagged ones release in order, so both pipelining
//!   and classic clients get exactly the semantics they expect.
//! * **Admission control** ([`admission`]): bounded priority queues
//!   (ops > interactive > bulk) with a per-tenant cap, classified by
//!   peeking one byte — no decoding before admission.
//! * **Load shedding**: refused requests are answered *immediately*
//!   with a transient error that existing retry, backoff, and circuit
//!   breaker machinery already understands; `/readyz` (via
//!   [`ReactorHandle::health_source`]) turns 503 while saturated.
//!
//! The `bda-served` binary lives here too (`--reactor` selects this
//! core, the blocking server remains the default), because the binary
//! must see both cores to offer the choice.

pub mod admission;
mod server;
mod shard;
pub mod slo;

pub use admission::{classify, Admission, AdmissionConfig, Priority, QueueDepths, ShedReason};
pub use server::{serve_reactor, ReactorHandle, ReactorOptions, Saturation};
pub use slo::{SloMonitor, SloTargets};
