//! Acceptance test for the durability subsystem at the *process* level:
//! a real `bda-served --data-dir` process is killed with SIGKILL while
//! ingest traffic is in flight, restarted over the same directory, and
//! must come back with every store it acknowledged — the
//! never-ack-then-lose contract, enforced against an actual `kill -9`
//! rather than a simulated crash.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bda_core::{Plan, Provider};
use bda_net::RemoteProvider;
use bda_storage::{Column, DataSet};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bda-durable-served-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Served(Child);

impl Drop for Served {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Launch `bda-served --data-dir` and wait for the listener banner.
/// Returns the process, its protocol address, the "recovered …" banner
/// line, and (with `http`) the ops-endpoint address.
fn launch_durable(
    dir: &std::path::Path,
    fsync: &str,
    http: bool,
) -> (Served, String, String, Option<String>) {
    launch_durable_engine(dir, fsync, http, "reference")
}

/// [`launch_durable`] with an explicit engine (the index-recovery test
/// needs `relational`, the only engine with secondary indexes).
fn launch_durable_engine(
    dir: &std::path::Path,
    fsync: &str,
    http: bool,
    engine: &str,
) -> (Served, String, String, Option<String>) {
    let dir = dir.to_string_lossy().to_string();
    let mut args = vec![
        "--engine",
        engine,
        "--name",
        "dur",
        "--listen",
        "127.0.0.1:0",
        "--data-dir",
        &dir,
        "--fsync",
        fsync,
    ];
    if http {
        args.extend(["--http", "0"]);
    }
    let mut child = Command::new(env!("CARGO_BIN_EXE_bda-served"))
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn bda-served");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let mut recovered = String::new();
    let mut ops_addr = None;
    let addr = loop {
        let line = lines
            .next()
            .expect("server prints a listener banner")
            .expect("readable banner");
        if line.contains("recovered") {
            recovered = line.clone();
        } else if line.contains("ops endpoint on ") {
            ops_addr = Some(
                line.rsplit("ops endpoint on ")
                    .next()
                    .unwrap()
                    .trim()
                    .into(),
            );
        }
        if line.contains("listening on ") {
            break line
                .rsplit("listening on ")
                .next()
                .expect("banner names the address")
                .split_whitespace()
                .next()
                .expect("address precedes any core tag")
                .to_string();
        }
    };
    if http && ops_addr.is_none() {
        // The ops banner may follow the listener banner in non-durable
        // ordering; read one more line for it.
        let line = lines.next().expect("ops banner").expect("readable");
        ops_addr = line.contains("ops endpoint on ").then(|| {
            line.rsplit("ops endpoint on ")
                .next()
                .unwrap()
                .trim()
                .into()
        });
    }
    (Served(child), addr, recovered, ops_addr)
}

fn dataset(i: i64) -> DataSet {
    DataSet::from_columns(vec![
        ("k", Column::from(vec![i, i + 1, i + 2])),
        ("v", Column::from(vec![i as f64, 2.0 * i as f64, 0.5])),
    ])
    .unwrap()
}

/// Assert `name` on the server holds exactly `dataset(i)`.
fn assert_recovered(remote: &RemoteProvider, name: &str, i: i64) {
    let schema = remote
        .schema_of(name)
        .unwrap_or_else(|| panic!("acked dataset `{name}` missing after recovery"));
    let out = remote.execute(&Plan::scan(name, schema)).unwrap();
    assert!(
        out.same_bag(&dataset(i)).unwrap(),
        "recovered `{name}` does not match what was acknowledged"
    );
}

#[test]
fn kill_nine_mid_ingest_then_restart_recovers_every_acked_store() {
    let dir = tmp_dir();

    // Phase 1: fresh server, a settled prefix of acknowledged stores,
    // then SIGKILL while a writer hammers it.
    let acked_hot: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let (server, addr, recovered, _) = launch_durable(&dir, "always", false);
        assert!(recovered.contains("recovered 0 datasets"), "{recovered}");
        let remote = RemoteProvider::connect(addr.clone()).expect("connect");
        for i in 0..10i64 {
            remote.store(&format!("seed{i}"), dataset(i)).unwrap();
        }

        let writer = {
            let acked = Arc::clone(&acked_hot);
            std::thread::spawn(move || {
                let remote = match RemoteProvider::connect(addr) {
                    Ok(r) => r,
                    Err(_) => return,
                };
                for i in 100..10_000i64 {
                    match remote.store(&format!("hot{i}"), dataset(i)) {
                        Ok(()) => acked.lock().unwrap().push(i),
                        Err(_) => return, // the server died under us
                    }
                }
            })
        };
        // Let some mid-flight ingest land, then kill -9.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut server = server;
        server.0.kill().expect("SIGKILL bda-served");
        server.0.wait().expect("reap");
        writer.join().unwrap();
    }

    // Phase 2: restart over the same directory. Every acknowledged
    // store — settled prefix and mid-flight — must be back.
    let acked_hot = acked_hot.lock().unwrap().clone();
    let (_server, addr, recovered, _) = launch_durable(&dir, "always", false);
    assert!(
        recovered.contains("recovered") && !recovered.contains("recovered 0 datasets"),
        "restart must report recovered datasets: {recovered}"
    );
    let remote = RemoteProvider::connect(addr).expect("connect after restart");
    let catalog: Vec<String> = remote.catalog().into_iter().map(|(n, _)| n).collect();
    assert!(
        catalog.len() >= 10 + acked_hot.len(),
        "catalog has {} entries, expected at least {} ({} acked mid-flight)",
        catalog.len(),
        10 + acked_hot.len(),
        acked_hot.len()
    );
    for i in 0..10i64 {
        assert_recovered(&remote, &format!("seed{i}"), i);
    }
    for &i in &acked_hot {
        assert_recovered(&remote, &format!("hot{i}"), i);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn kill_nine_rebuilds_indexes_byte_for_byte() {
    // Secondary indexes built before a SIGKILL must come back after
    // restart *identical* to a from-scratch build over the same data —
    // the WAL logs the spec, recovery rebuilds, and the deterministic
    // fingerprint is the byte-for-byte witness.
    use bda_storage::IndexKind;
    let dir = tmp_dir();
    let data = DataSet::from_columns(vec![
        ("k", Column::from(vec![5i64, 2, 9, 2, 5, 7])),
        ("v", Column::from(vec![1.5f64, -2.0, 0.0, 3.25, -2.0, 8.0])),
    ])
    .unwrap();
    {
        let (server, addr, _, _) = launch_durable_engine(&dir, "always", false, "relational");
        let remote = RemoteProvider::connect(addr).expect("connect");
        remote.store("t", data.clone()).unwrap();
        remote.build_index("t", "k", IndexKind::Hash).unwrap();
        remote.build_index("t", "v", IndexKind::Sorted).unwrap();
        // Both indexes are visible and fingerprinted before the crash.
        assert_eq!(remote.index_specs("t").len(), 2);
        let mut server = server;
        server.0.kill().expect("SIGKILL bda-served");
        server.0.wait().expect("reap");
    }

    // A from-scratch build on a *fresh* server over the same data: the
    // oracle fingerprints the recovered indexes must reproduce.
    let (want_k, want_v) = {
        let oracle_dir = tmp_dir();
        let (_server, addr, _, _) =
            launch_durable_engine(&oracle_dir, "always", false, "relational");
        let remote = RemoteProvider::connect(addr).expect("connect oracle");
        remote.store("t", data).unwrap();
        remote.build_index("t", "k", IndexKind::Hash).unwrap();
        remote.build_index("t", "v", IndexKind::Sorted).unwrap();
        let fps = (
            remote.index_fingerprint("t", "k").unwrap(),
            remote.index_fingerprint("t", "v").unwrap(),
        );
        std::fs::remove_dir_all(&oracle_dir).unwrap();
        fps
    };

    // Restart over the crashed directory: specs and fingerprints match
    // the from-scratch build exactly.
    let (_server, addr, recovered, _) = launch_durable_engine(&dir, "always", false, "relational");
    assert!(recovered.contains("recovered"), "{recovered}");
    let remote = RemoteProvider::connect(addr).expect("connect after restart");
    let mut specs = remote.index_specs("t");
    specs.sort_by(|a, b| a.column.cmp(&b.column));
    assert_eq!(specs.len(), 2, "both index specs must survive kill -9");
    assert_eq!((specs[0].column.as_str(), specs[0].kind), ("k", IndexKind::Hash));
    assert_eq!((specs[1].column.as_str(), specs[1].kind), ("v", IndexKind::Sorted));
    assert_eq!(remote.index_fingerprint("t", "k"), Some(want_k));
    assert_eq!(remote.index_fingerprint("t", "v"), Some(want_v));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fsync_never_still_survives_process_kill() {
    // `--fsync never` trades power-loss safety for throughput, but a
    // plain process kill must still lose nothing: the bytes are in the
    // OS page cache, not the process.
    let dir = tmp_dir();
    {
        let (server, addr, _, _) = launch_durable(&dir, "never", false);
        let remote = RemoteProvider::connect(addr).expect("connect");
        for i in 0..5i64 {
            remote.store(&format!("t{i}"), dataset(i)).unwrap();
        }
        let mut server = server;
        server.0.kill().expect("SIGKILL");
        server.0.wait().expect("reap");
    }
    let (_server, addr, recovered, _) = launch_durable(&dir, "never", false);
    assert!(recovered.contains("5 wal records"), "{recovered}");
    let remote = RemoteProvider::connect(addr).expect("connect after restart");
    for i in 0..5i64 {
        assert_recovered(&remote, &format!("t{i}"), i);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durable_server_exposes_wal_metrics_and_readiness() {
    use std::io::{Read, Write};
    let dir = tmp_dir();
    let (_server, addr, _, ops_addr) = launch_durable(&dir, "always", true);
    let ops_addr = ops_addr.expect("--http announces the ops address");
    let remote = RemoteProvider::connect(addr).expect("connect");
    remote.store("t", dataset(1)).unwrap();

    let http_get = |path: &str| -> (String, String) {
        let mut conn = std::net::TcpStream::connect(&ops_addr).expect("connect ops");
        conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: {ops_addr}\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw).unwrap();
        let status = raw.lines().next().unwrap_or_default().to_string();
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    };

    // Replay finished long ago: ready, and the WAL counters are live on
    // the shared hub.
    let (status, _) = http_get("/readyz");
    assert!(status.contains("200"), "{status}");
    let (status, metrics) = http_get("/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(
        metrics.contains("bda_durability_wal_records_total 1"),
        "{metrics}"
    );
    assert!(metrics.contains("bda_durability_fsyncs_total"), "{metrics}");
    std::fs::remove_dir_all(&dir).unwrap();
}
