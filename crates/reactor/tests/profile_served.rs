//! Acceptance test for persistent query profiles at the *process*
//! level (ISSUE 8): an in-process traced federated query writes its
//! profile to the JSONL log under `BDA_PROFILE_DIR`; a real
//! `bda-served` process launched over the same directory — once on the
//! blocking core, once on `--reactor` — recovers it on startup and
//! serves it back over `GET /queries`. That is the restart contract:
//! what the profiler learned survives the process that learned it.

use std::io::{BufRead, Read, Write};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bda_core::{Plan, Provider};
use bda_federation::Federation;
use bda_relational::RelationalEngine;
use bda_storage::{Column, DataSet};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bda-profile-served-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Served(Child);

impl Drop for Served {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Launch `bda-served --http 0` with `BDA_PROFILE_DIR` pointing at
/// `dir`; returns the process, the ops-endpoint address, and the
/// profile-recovery banner line.
fn launch(dir: &std::path::Path, reactor: bool) -> (Served, String, String) {
    let mut args = vec![
        "--engine",
        "reference",
        "--name",
        "prof",
        "--listen",
        "127.0.0.1:0",
        "--http",
        "0",
    ];
    if reactor {
        args.push("--reactor");
    }
    let mut child = Command::new(env!("CARGO_BIN_EXE_bda-served"))
        .args(&args)
        .env("BDA_PROFILE_DIR", dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn bda-served");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let mut banner = String::new();
    let ops_addr = loop {
        let line = lines
            .next()
            .expect("server prints its banners")
            .expect("readable banner");
        if line.contains("profile log persists to ") {
            banner = line.clone();
        }
        if let Some(rest) = line.rsplit("ops endpoint on ").next() {
            if line.contains("ops endpoint on ") {
                break rest.trim().to_string();
            }
        }
    };
    (Served(child), ops_addr, banner)
}

/// Minimal HTTP GET over loopback; returns (status line, body).
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut conn = std::net::TcpStream::connect(addr).expect("connect to ops endpoint");
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: bda\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    let status = raw.lines().next().unwrap_or_default().to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn profiles_persist_across_restart_on_both_serving_cores() {
    let dir = tmp_dir();
    // Route this process's global query log at the directory *before*
    // its first touch — exactly what bda-served does at startup.
    std::env::set_var(bda_obs::profile::PROFILE_DIR_ENV, &dir);

    let rel = RelationalEngine::new("rel");
    rel.store(
        "t",
        DataSet::from_columns(vec![
            ("k", Column::from(vec![1i64, 2, 3])),
            ("v", Column::from(vec![1.0f64, 2.0, 3.0])),
        ])
        .unwrap(),
    )
    .unwrap();
    let mut fed = Federation::new();
    fed.register(Arc::new(rel));
    let schema = fed.registry().schema_of("t").unwrap();
    let plan = Plan::scan("t", schema);
    let tracer = bda_obs::Tracer::new(0xCAFE);
    let trace_id = tracer.trace_id();
    fed.run_traced(&plan, &tracer).expect("traced query");

    let jsonl = std::fs::read_to_string(dir.join("profiles.jsonl")).expect("profile log written");
    let id_key = format!("\"trace_id\":\"{trace_id:#018x}\"");
    assert!(jsonl.contains(&id_key), "{jsonl}");

    // A fresh process over the same directory — each serving core in
    // turn — recovers the profile and serves it over HTTP.
    for reactor in [false, true] {
        let (server, ops_addr, banner) = launch(&dir, reactor);
        assert!(
            banner.contains("profiles recovered") && !banner.contains("(0 profiles"),
            "recovery banner (reactor={reactor}): {banner}"
        );
        let (status, body) = http_get(&ops_addr, "/queries");
        assert!(status.contains("200"), "{status} (reactor={reactor})");
        assert!(
            body.contains(&id_key),
            "recovered profile not served (reactor={reactor}): {body}"
        );
        let (status, book) = http_get(&ops_addr, "/calibration");
        assert!(status.contains("200"), "{status} (reactor={reactor})");
        assert!(book.contains("\"ns_per_row\""), "{book}");
        drop(server);
    }
}
