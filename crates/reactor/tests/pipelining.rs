//! Adversarial framing and pipelining tests against the reactor core:
//! byte-dribbling clients, interleaved tags, oversized frames, and
//! slow-loris connections. The reactor parses incrementally off a
//! readiness loop, so these are exactly the edges where it could differ
//! from the blocking server — they must behave identically (or better:
//! the loris is reaped instead of pinning a thread).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bda_core::{Plan, Provider, ReferenceProvider};
use bda_net::frame::read_message;
use bda_net::proto::{decode_response, encode_request};
use bda_net::{PipelinedClient, Request, Response};
use bda_reactor::{serve_reactor, ReactorHandle, ReactorOptions};
use bda_storage::{Column, DataSet};

fn sample() -> DataSet {
    DataSet::from_columns(vec![
        ("k", Column::from(vec![1i64, 2, 3, 4])),
        ("v", Column::from(vec![1.0f64, 2.0, 3.0, 4.0])),
    ])
    .unwrap()
}

fn reactor_with(opts: ReactorOptions) -> ReactorHandle {
    let engine = Arc::new(ReferenceProvider::new("ref"));
    engine.store("t", sample()).unwrap();
    serve_reactor(engine, "127.0.0.1:0", opts).unwrap()
}

fn wire_for(req: &Request) -> Vec<u8> {
    let (kind, payload) = encode_request(req);
    let mut wire = Vec::new();
    bda_net::frame::write_message(&mut wire, kind, &payload).unwrap();
    wire
}

#[test]
fn requests_split_at_every_byte_still_parse() {
    // A client that dribbles a request one byte at a time — every flush
    // lands a partial frame at the reactor, including splits inside the
    // 6-byte header. The incremental parser must reassemble exactly.
    let server = reactor_with(ReactorOptions::default());
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    let wire = wire_for(&Request::Catalog);
    for chunk in wire.chunks(1) {
        conn.write_all(chunk).unwrap();
        conn.flush().unwrap();
        // A pause every few bytes forces distinct reads server-side.
        std::thread::sleep(Duration::from_millis(1));
    }
    let (kind, payload, _) = read_message(&mut conn).unwrap();
    match decode_response(kind, &payload).unwrap() {
        Response::Catalog(entries) => assert_eq!(entries.len(), 1),
        other => panic!("expected catalog, got {other:?}"),
    }
}

#[test]
fn two_messages_in_one_write_both_answer() {
    // The opposite split: a single write carrying two complete framed
    // messages back to back. The parser must consume both and the
    // responses must release in order (both untagged).
    let server = reactor_with(ReactorOptions::default());
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    let mut batch = wire_for(&Request::Hello);
    batch.extend_from_slice(&wire_for(&Request::Catalog));
    conn.write_all(&batch).unwrap();
    conn.flush().unwrap();
    let (k1, p1, _) = read_message(&mut conn).unwrap();
    assert!(matches!(
        decode_response(k1, &p1).unwrap(),
        Response::Hello { .. }
    ));
    let (k2, p2, _) = read_message(&mut conn).unwrap();
    assert!(matches!(
        decode_response(k2, &p2).unwrap(),
        Response::Catalog(_)
    ));
}

#[test]
fn interleaved_tags_come_back_matched() {
    // Many tagged requests of mixed cost racing through the worker
    // pool: whatever order the responses arrive in, every tag must
    // match its request's reply type, and every request must answer.
    let server = reactor_with(ReactorOptions::default());
    let client = PipelinedClient::connect(&server.addr().to_string()).unwrap();
    let plan = Plan::scan("t", sample().schema().clone());
    let pending: Vec<(usize, bda_net::pipeline::Pending)> = (0..48)
        .map(|i| {
            let req = match i % 3 {
                0 => Request::Execute { plan: plan.clone() },
                1 => Request::Hello,
                _ => Request::Catalog,
            };
            (i, client.send(&req).unwrap())
        })
        .collect();
    for (i, p) in pending {
        let resp = p.wait(Duration::from_secs(30)).unwrap();
        match i % 3 {
            0 => assert!(matches!(resp, Response::DataSet(_)), "tag {i}: {resp:?}"),
            1 => assert!(matches!(resp, Response::Hello { .. }), "tag {i}: {resp:?}"),
            _ => assert!(matches!(resp, Response::Catalog(_)), "tag {i}: {resp:?}"),
        }
    }
}

#[test]
fn pipelined_errors_carry_their_tag() {
    // A failing request inside the pipeline must answer on its own tag
    // and leave neighbors untouched.
    let server = reactor_with(ReactorOptions::default());
    let client = PipelinedClient::connect(&server.addr().to_string()).unwrap();
    let good = client
        .send(&Request::Execute {
            plan: Plan::scan("t", sample().schema().clone()),
        })
        .unwrap();
    let bad = client
        .send(&Request::Execute {
            plan: Plan::scan("missing", sample().schema().clone()),
        })
        .unwrap();
    let good2 = client.send(&Request::Hello).unwrap();
    assert!(matches!(
        good.wait(Duration::from_secs(10)).unwrap(),
        Response::DataSet(_)
    ));
    match bad.wait(Duration::from_secs(10)).unwrap() {
        Response::Error { msg, .. } => assert!(msg.contains("missing"), "{msg}"),
        other => panic!("expected error, got {other:?}"),
    }
    assert!(matches!(
        good2.wait(Duration::from_secs(10)).unwrap(),
        Response::Hello { .. }
    ));
}

#[test]
fn oversized_frame_header_closes_the_connection() {
    // A header declaring a frame larger than MAX_FRAME_PAYLOAD is
    // hopeless — the reactor must drop the connection rather than
    // buffer toward a bogus 200 MB length.
    let server = reactor_with(ReactorOptions::default());
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    let mut header = Vec::new();
    header.push(0x02); // kind: execute
    header.push(0x00); // flags: final frame
    header.extend_from_slice(&(200u32 * 1024 * 1024).to_le_bytes());
    conn.write_all(&header).unwrap();
    conn.flush().unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 16];
    // Either a clean EOF (Ok(0)) or a reset — never a hang, never data.
    match conn.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("server answered an oversized frame with {n} bytes"),
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
            panic!("server sat on an oversized frame instead of closing")
        }
        Err(_) => {}
    }
}

#[test]
fn slow_loris_is_reaped_by_the_stall_deadline() {
    // Half a header, then silence. With a short stall timeout the
    // reactor must close the connection; the blocking server would have
    // pinned a thread on it until its own (much longer) read timeout.
    let server = reactor_with(ReactorOptions {
        stall_timeout: Duration::from_millis(400),
        ..ReactorOptions::default()
    });
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    conn.write_all(&[0x02, 0x00, 0x10]).unwrap(); // 3 of 6 header bytes
    conn.flush().unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let started = Instant::now();
    let mut buf = [0u8; 16];
    match conn.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("loris got {n} bytes of response"),
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(20),
        "loris lingered {elapsed:?} — reaping did not engage"
    );

    // An *idle* connection (no partial message) must NOT be reaped:
    // pooled clients park healthy connections far longer than any
    // stall deadline.
    let mut idle = TcpStream::connect(server.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(900)); // >> stall_timeout
    let wire = wire_for(&Request::Hello);
    idle.write_all(&wire).unwrap();
    idle.flush().unwrap();
    let (kind, payload, _) = read_message(&mut idle).unwrap();
    assert!(matches!(
        decode_response(kind, &payload).unwrap(),
        Response::Hello { .. }
    ));
}

#[test]
fn deep_pipelining_is_paced_not_dropped() {
    // Push far more requests than max_inflight_per_conn in one burst:
    // backpressure pauses reading, but every request must eventually
    // answer correctly — pacing, not dropping.
    let server = reactor_with(ReactorOptions {
        max_inflight_per_conn: 4,
        ..ReactorOptions::default()
    });
    let client = PipelinedClient::connect(&server.addr().to_string()).unwrap();
    let pending: Vec<_> = (0..64)
        .map(|_| client.send(&Request::Catalog).unwrap())
        .collect();
    for p in pending {
        assert!(matches!(
            p.wait(Duration::from_secs(30)).unwrap(),
            Response::Catalog(_)
        ));
    }
}
