//! End-to-end test of the `bda-served` **binary**: two genuinely
//! separate OS processes serve engines over loopback TCP, and a client
//! in this process queries them and triggers a direct process-to-process
//! transfer. This is the README quick-start, automated.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};

use bda_core::{col, lit, Plan, Provider};
use bda_net::RemoteProvider;

struct Served(Child);

impl Served {
    /// Launch `bda-served` on an OS-assigned port and wait for its
    /// "listening on" line to learn the address.
    fn launch(engine: &str, name: &str) -> (Served, String) {
        let (served, addr, _) = Served::launch_with(engine, name, false);
        (served, addr)
    }

    /// [`Served::launch`] on the reactor core.
    fn launch_reactor(engine: &str, name: &str) -> (Served, String) {
        let (served, addr, _) = Served::launch_full(engine, name, false, true);
        (served, addr)
    }

    /// [`Served::launch`], optionally with `--http 0`; the third return
    /// is the ops-endpoint address from the second banner line.
    fn launch_with(engine: &str, name: &str, http: bool) -> (Served, String, Option<String>) {
        Served::launch_full(engine, name, http, false)
    }

    fn launch_full(
        engine: &str,
        name: &str,
        http: bool,
        reactor: bool,
    ) -> (Served, String, Option<String>) {
        let mut args = vec![
            "--engine",
            engine,
            "--name",
            name,
            "--listen",
            "127.0.0.1:0",
            "--demo",
        ];
        if http {
            args.extend(["--http", "0"]);
        }
        if reactor {
            args.push("--reactor");
        }
        let mut child = Command::new(env!("CARGO_BIN_EXE_bda-served"))
            .args(&args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn bda-served");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("server prints a banner")
            .expect("readable banner");
        let addr = banner
            .rsplit("listening on ")
            .next()
            .expect("banner names the address")
            .split_whitespace()
            .next()
            .expect("address precedes any core tag")
            .to_string();
        let ops_addr = http.then(|| {
            let ops_banner = lines
                .next()
                .expect("--http prints a second banner")
                .expect("readable ops banner");
            ops_banner
                .rsplit("ops endpoint on ")
                .next()
                .expect("ops banner names the address")
                .trim()
                .to_string()
        });
        (Served(child), addr, ops_addr)
    }
}

/// Minimal HTTP GET over loopback; returns (status line, body).
fn http_get(addr: &str, path: &str) -> (String, String) {
    use std::io::{Read, Write};
    let mut conn = std::net::TcpStream::connect(addr).expect("connect to ops endpoint");
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    let status = raw.lines().next().unwrap_or_default().to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

impl Drop for Served {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn two_server_processes_answer_queries_and_push_directly() {
    let (_rel_proc, rel_addr) = Served::launch("relational", "rel");
    let (_la_proc, la_addr) = Served::launch("linalg", "la");

    let rel = RemoteProvider::connect(rel_addr).expect("connect to rel process");
    let la = RemoteProvider::connect(la_addr).expect("connect to la process");
    assert_eq!(rel.name(), "rel");
    assert_eq!(la.name(), "la");

    // Query the relational process's demo table.
    let sales_schema = rel.schema_of("sales").expect("demo table present");
    let out = rel
        .execute(&Plan::scan("sales", sales_schema).select(col("v").gt(lit(15.0))))
        .expect("remote filter");
    assert_eq!(out.num_rows(), 3);

    // Query the linalg process's demo matrix.
    let m_schema = la.schema_of("m").expect("demo matrix present");
    let m = la.execute(&Plan::scan("m", m_schema.clone())).unwrap();
    assert_eq!(m.num_rows(), 6);

    // Direct process-to-process transfer: la pushes its matrix to rel
    // without the bytes passing through this (client) process.
    let pushed = la
        .execute_push(&Plan::scan("m", m_schema), rel.addr(), "m_copy")
        .expect("remote providers support push")
        .expect("push succeeds");
    assert!(pushed > 0, "push reports wire bytes");
    let copied = rel
        .execute(&Plan::scan("m_copy", rel.schema_of("m_copy").unwrap()))
        .unwrap();
    assert_eq!(copied.num_rows(), 6);
}

#[test]
fn reactor_mode_serves_the_same_protocol_and_pushes_across_cores() {
    // One process on each core: the reactor process and the classic
    // thread-per-connection process must interoperate fully, including
    // the direct server-to-server push in both directions.
    let (_rel_proc, rel_addr) = Served::launch_reactor("relational", "rel");
    let (_la_proc, la_addr) = Served::launch("linalg", "la");

    let rel = RemoteProvider::connect(rel_addr).expect("connect to reactor process");
    let la = RemoteProvider::connect(la_addr).expect("connect to la process");
    assert_eq!(rel.name(), "rel");

    let sales_schema = rel.schema_of("sales").expect("demo table present");
    let out = rel
        .execute(&Plan::scan("sales", sales_schema).select(col("v").gt(lit(15.0))))
        .expect("remote filter against the reactor core");
    assert_eq!(out.num_rows(), 3);

    // Classic core pushes INTO the reactor core...
    let m_schema = la.schema_of("m").expect("demo matrix present");
    let pushed = la
        .execute_push(&Plan::scan("m", m_schema), rel.addr(), "m_copy")
        .expect("remote providers support push")
        .expect("push into the reactor succeeds");
    assert!(pushed > 0);
    let copied = rel
        .execute(&Plan::scan("m_copy", rel.schema_of("m_copy").unwrap()))
        .unwrap();
    assert_eq!(copied.num_rows(), 6);

    // ...and the reactor core pushes back out.
    let back = rel
        .execute_push(
            &Plan::scan("m_copy", rel.schema_of("m_copy").unwrap()),
            la.addr(),
            "m_back",
        )
        .expect("push supported")
        .expect("push out of the reactor succeeds");
    assert!(back > 0);
    assert!(la.schema_of("m_back").is_some(), "pushed dataset landed");
}

#[test]
fn reactor_http_readyz_reports_admission_state() {
    let (_proc, addr, ops_addr) = Served::launch_full("relational", "rel", true, true);
    let ops_addr = ops_addr.expect("--http announces the ops address");

    let (status, body) = http_get(&ops_addr, "/readyz");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("reactor: queued"), "{body}");

    // Protocol traffic shows up in the shared hub.
    let rel = RemoteProvider::connect(addr).expect("connect");
    let sales_schema = rel.schema_of("sales").expect("demo table present");
    rel.execute(&Plan::scan("sales", sales_schema)).unwrap();
    let (status, metrics) = http_get(&ops_addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(
        metrics.contains("bda_net_requests_total{kind=\"execute\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("bda_reactor_connections_total"),
        "{metrics}"
    );
}

#[test]
fn http_flag_serves_live_metrics_and_health() {
    let (_proc, addr, ops_addr) = Served::launch_with("relational", "rel", true);
    let ops_addr = ops_addr.expect("--http announces the ops address");

    // Health before any protocol traffic.
    let (status, body) = http_get(&ops_addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("ok"), "{body}");
    let (status, _) = http_get(&ops_addr, "/readyz");
    assert!(status.contains("200"), "{status}");

    // Drive one protocol request, then scrape: the HTTP endpoint shares
    // the protocol server's hub, so the request must be visible.
    let rel = RemoteProvider::connect(addr).expect("connect to rel process");
    let sales_schema = rel.schema_of("sales").expect("demo table present");
    rel.execute(&Plan::scan("sales", sales_schema)).unwrap();
    let (status, metrics) = http_get(&ops_addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(
        metrics.contains("bda_net_requests_total{kind=\"execute\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("bda_net_request_duration_seconds_count"),
        "{metrics}"
    );

    // Unknown paths 404; unknown trace ids 404.
    let (status, _) = http_get(&ops_addr, "/nope");
    assert!(status.contains("404"), "{status}");
    let (status, _) = http_get(&ops_addr, "/traces/0xdeadbeef");
    assert!(status.contains("404"), "{status}");
}
