//! Lowering: rewriting intent operators into the base algebra.
//!
//! Desideratum 2 (*translatability*) demands that "every algebra operator
//! should be translatable to a back-end system (or a combination of such
//! systems)". Intent operators (`MatMul`, `ElemWise`, `Window`, `Fill`,
//! `SliceAt`, graph analytics) have native implementations only on
//! specialized providers; this module gives each of them a semantics-
//! preserving rewrite into `Select`/`Project`/`Join`/`Aggregate`/
//! `Union`/`Distinct`/`Iterate` + retagging, which *every* provider (and
//! the reference evaluator) can run.
//!
//! Naming: intermediate columns are prefixed `__` (reserved); lowered
//! plans restore the original output names with final `Rename`/`TagDims`
//! steps so lowering is transparent to the rest of the plan.
//!
//! Precondition for `Fill` and `ElemWise`: array inputs hold at most one
//! row per coordinate (the array invariant). With duplicate coordinates
//! the lowered and native forms may disagree.

use bda_storage::Value;

use crate::agg::{AggExpr, AggFunc};
use crate::error::CoreError;
use crate::expr::{col, lit, BinOp, Expr};
use crate::infer::{bfs_schema, infer_schema, pagerank_schema};
use crate::plan::{GraphOp, JoinType, Plan};

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Lower a single node if it is an intent operator; `Ok(None)` means the
/// node is already base algebra.
pub fn lower_node(plan: &Plan) -> Result<Option<Plan>> {
    match plan {
        Plan::MatMul { left, right } => Ok(Some(lower_matmul(left, right)?)),
        Plan::ElemWise { op, left, right } => Ok(Some(lower_elemwise(*op, left, right)?)),
        Plan::Window { input, radii, aggs } => Ok(Some(lower_window(input, radii, aggs)?)),
        Plan::Fill { input, fill } => Ok(Some(lower_fill(input, fill)?)),
        Plan::SliceAt { input, dim, index } => Ok(Some(lower_slice(input, dim, *index)?)),
        Plan::Permute { input, order } => Ok(Some(lower_permute(input, order)?)),
        Plan::Graph(g) => Ok(Some(lower_graph(g)?)),
        _ => Ok(None),
    }
}

/// Recursively lower every intent operator in the tree to base algebra.
/// The result contains no intent nodes (verified by a debug assertion).
pub fn lower_all(plan: &Plan) -> Result<Plan> {
    let children: Vec<Plan> = plan
        .children()
        .iter()
        .map(|c| lower_all(c))
        .collect::<Result<_>>()?;
    let rebuilt = plan.with_children(children);
    let out = match lower_node(&rebuilt)? {
        // A lowering may itself contain intent ops (e.g. graph lowerings
        // do not, but be safe): lower again.
        Some(lowered) => lower_all(&lowered)?,
        None => rebuilt,
    };
    debug_assert!(
        out.op_kinds().iter().all(|k| k.is_base()),
        "lower_all left intent ops in {out}"
    );
    Ok(out)
}

// ---------------------------------------------------------------------------
// Array intent lowerings
// ---------------------------------------------------------------------------

/// `(name, optional extent)` per dimension.
type DimSpecs = Vec<(String, Option<(i64, i64)>)>;

/// Canonical names for an array's dimensions and single value attribute.
fn array_parts(plan: &Plan, what: &str) -> Result<(DimSpecs, String)> {
    let schema = infer_schema(plan)?;
    let dims: Vec<(String, Option<(i64, i64)>)> = schema
        .dimensions()
        .iter()
        .map(|f| (f.name.clone(), f.extent()))
        .collect();
    let vals = schema.values();
    if vals.len() != 1 {
        return Err(CoreError::Lower(format!(
            "{what}: lowering requires exactly one value attribute"
        )));
    }
    Ok((dims, vals[0].name.clone()))
}

fn lower_matmul(left: &Plan, right: &Plan) -> Result<Plan> {
    let out_schema = infer_schema(&Plan::MatMul {
        left: left.clone().boxed(),
        right: right.clone().boxed(),
    })?;
    let (l_dims, l_val) = array_parts(left, "matmul left")?;
    let (r_dims, r_val) = array_parts(right, "matmul right")?;
    let out_dims: Vec<&bda_storage::Field> = out_schema.dimensions();

    // Flatten both sides to relations with canonical column names.
    let l_flat = Plan::UntagDims {
        input: left.clone().boxed(),
    }
    .project(vec![
        ("__i", col(&l_dims[0].0)),
        ("__k", col(&l_dims[1].0)),
        ("__lv", col(&l_val).cast(bda_storage::DataType::Float64)),
    ]);
    let r_flat = Plan::UntagDims {
        input: right.clone().boxed(),
    }
    .project(vec![
        ("__k2", col(&r_dims[0].0)),
        ("__j", col(&r_dims[1].0)),
        ("__rv", col(&r_val).cast(bda_storage::DataType::Float64)),
    ]);

    // join on the contraction dimension, multiply, sum per output cell.
    let joined = l_flat.join(r_flat, vec![("__k", "__k2")]);
    let products = joined.project(vec![
        ("__i", col("__i")),
        ("__j", col("__j")),
        ("__p", col("__lv").mul(col("__rv"))),
    ]);
    let summed = products.aggregate(
        vec!["__i", "__j"],
        vec![AggExpr::new(AggFunc::Sum, col("__p"), "v")],
    );
    // Groups whose products were all null would surface as null cells that
    // the native operator never emits; drop them.
    let non_null = summed.select(col("v").is_null().not());
    let renamed = non_null.rename(vec![
        ("__i", out_dims[0].name.as_str()),
        ("__j", out_dims[1].name.as_str()),
    ]);
    Ok(Plan::TagDims {
        input: renamed.boxed(),
        dims: out_dims
            .iter()
            .map(|f| (f.name.clone(), f.extent()))
            .collect(),
    })
}

fn lower_elemwise(op: BinOp, left: &Plan, right: &Plan) -> Result<Plan> {
    let out_schema = infer_schema(&Plan::ElemWise {
        op,
        left: left.clone().boxed(),
        right: right.clone().boxed(),
    })?;
    let (dims, l_val) = array_parts(left, "elemwise left")?;
    let (_, r_val) = array_parts(right, "elemwise right")?;

    let mut l_proj: Vec<(String, Expr)> = Vec::new();
    let mut r_proj: Vec<(String, Expr)> = Vec::new();
    let mut on: Vec<(String, String)> = Vec::new();
    for (idx, (d, _)) in dims.iter().enumerate() {
        l_proj.push((format!("__l{idx}"), col(d)));
        r_proj.push((format!("__r{idx}"), col(d)));
        on.push((format!("__l{idx}"), format!("__r{idx}")));
    }
    l_proj.push(("__lv".into(), col(&l_val)));
    r_proj.push(("__rv".into(), col(&r_val)));

    let l_flat = Plan::Project {
        input: Plan::UntagDims {
            input: left.clone().boxed(),
        }
        .boxed(),
        exprs: l_proj,
    };
    let r_flat = Plan::Project {
        input: Plan::UntagDims {
            input: right.clone().boxed(),
        }
        .boxed(),
        exprs: r_proj,
    };
    let joined = Plan::Join {
        left: l_flat.boxed(),
        right: r_flat.boxed(),
        on,
        join_type: JoinType::Inner,
        suffix: "_r".into(),
    };
    let mut out_exprs: Vec<(String, Expr)> = dims
        .iter()
        .enumerate()
        .map(|(idx, (d, _))| (d.clone(), col(format!("__l{idx}"))))
        .collect();
    out_exprs.push((
        "v".into(),
        Expr::Binary {
            op,
            left: col("__lv").boxed_expr(),
            right: col("__rv").boxed_expr(),
        },
    ));
    let projected = Plan::Project {
        input: joined.boxed(),
        exprs: out_exprs,
    };
    Ok(Plan::TagDims {
        input: projected.boxed(),
        dims: out_schema
            .dimensions()
            .iter()
            .map(|f| (f.name.clone(), f.extent()))
            .collect(),
    })
}

fn lower_window(input: &Plan, radii: &[(String, i64)], aggs: &[AggExpr]) -> Result<Plan> {
    let in_schema = infer_schema(input)?;
    let dims: Vec<(String, Option<(i64, i64)>)> = in_schema
        .dimensions()
        .iter()
        .map(|f| (f.name.clone(), f.extent()))
        .collect();
    let radius_of = |d: &str| -> i64 {
        radii
            .iter()
            .find(|(n, _)| n == d)
            .map(|(_, r)| *r)
            .expect("validated by infer")
    };

    // Offsets: the cross product of per-dimension ranges [-r, r].
    let mut offsets: Option<Plan> = None;
    for (idx, (d, _)) in dims.iter().enumerate() {
        let r = radius_of(d);
        let range = Plan::Range {
            name: format!("__o{idx}"),
            lo: -r,
            hi: r + 1,
        };
        // Offsets are plain values, not dimensions of the result.
        let range = Plan::UntagDims {
            input: range.boxed(),
        };
        offsets = Some(match offsets {
            None => range,
            Some(acc) => Plan::Join {
                left: acc.boxed(),
                right: range.boxed(),
                on: vec![],
                join_type: JoinType::Inner,
                suffix: "_r".into(),
            },
        });
    }
    let offsets = offsets.expect("window has at least one dimension");

    // Every cell × every offset: the cell contributes to the window
    // centred at coord + offset.
    let cells = Plan::UntagDims {
        input: input.clone().boxed(),
    };
    let spread = Plan::Join {
        left: cells.clone().boxed(),
        right: offsets.boxed(),
        on: vec![],
        join_type: JoinType::Inner,
        suffix: "_o".into(),
    };
    // Keep neighbour attribute values under their original names for the
    // aggregate arguments; add shifted centre coordinates.
    let mut exprs: Vec<(String, Expr)> = in_schema
        .fields()
        .iter()
        .map(|f| (f.name.clone(), col(&f.name)))
        .collect();
    for (idx, (d, _)) in dims.iter().enumerate() {
        exprs.push((format!("__c{idx}"), col(d).add(col(format!("__o{idx}")))));
    }
    let shifted = Plan::Project {
        input: spread.boxed(),
        exprs,
    };
    let group: Vec<String> = (0..dims.len()).map(|i| format!("__c{i}")).collect();
    let grouped = Plan::Aggregate {
        input: shifted.boxed(),
        group_by: group.clone(),
        aggs: aggs.to_vec(),
    };
    // Only centres that are present cells of the input survive.
    let centre_coords = Plan::Project {
        input: Plan::UntagDims {
            input: input.clone().boxed(),
        }
        .boxed(),
        exprs: dims.iter().map(|(d, _)| (d.clone(), col(d))).collect(),
    };
    let on: Vec<(String, String)> = group
        .iter()
        .zip(&dims)
        .map(|(c, (d, _))| (c.clone(), d.clone()))
        .collect();
    let present_only = Plan::Join {
        left: grouped.boxed(),
        right: centre_coords.boxed(),
        on,
        join_type: JoinType::Semi,
        suffix: "_s".into(),
    };
    let renamed = Plan::Rename {
        input: present_only.boxed(),
        mapping: group
            .iter()
            .zip(&dims)
            .map(|(c, (d, _))| (c.clone(), d.clone()))
            .collect(),
    };
    Ok(Plan::TagDims {
        input: renamed.boxed(),
        dims,
    })
}

fn lower_fill(input: &Plan, fill: &Value) -> Result<Plan> {
    let in_schema = infer_schema(input)?;
    let dims: Vec<(String, i64, i64)> = in_schema
        .dimensions()
        .iter()
        .map(|f| {
            let (lo, hi) = f.extent().expect("fill requires bounded dims (infer)");
            (f.name.clone(), lo, hi)
        })
        .collect();
    // The full coordinate domain: cross product of dimension ranges
    // (Range leaves are dimension-tagged, and inner join preserves tags).
    let mut domain: Option<Plan> = None;
    for (d, lo, hi) in &dims {
        let r = Plan::Range {
            name: d.clone(),
            lo: *lo,
            hi: *hi,
        };
        domain = Some(match domain {
            None => r,
            Some(acc) => Plan::Join {
                left: acc.boxed(),
                right: r.boxed(),
                on: vec![],
                join_type: JoinType::Inner,
                suffix: "_r".into(),
            },
        });
    }
    let domain = domain.ok_or_else(|| CoreError::Lower("fill: no dimensions".into()))?;

    // Mark present cells, left-join the domain against them.
    let mut cell_exprs: Vec<(String, Expr)> = Vec::new();
    for (d, _, _) in &dims {
        cell_exprs.push((format!("__c_{d}"), col(d)));
    }
    for f in in_schema.values() {
        cell_exprs.push((format!("__v_{}", f.name), col(&f.name)));
    }
    cell_exprs.push(("__present".into(), lit(true)));
    let cells = Plan::Project {
        input: Plan::UntagDims {
            input: input.clone().boxed(),
        }
        .boxed(),
        exprs: cell_exprs,
    };
    let on: Vec<(String, String)> = dims
        .iter()
        .map(|(d, _, _)| (d.clone(), format!("__c_{d}")))
        .collect();
    let joined = Plan::Join {
        left: domain.boxed(),
        right: cells.boxed(),
        on,
        join_type: JoinType::Left,
        suffix: "_r".into(),
    };
    // Rebuild the original schema: dims pass through (keeping their tags),
    // values take the stored value when present, else the fill constant.
    let mut out_exprs: Vec<(String, Expr)> = Vec::new();
    for f in in_schema.fields() {
        if f.is_dimension() {
            out_exprs.push((f.name.clone(), col(&f.name)));
        } else {
            let stored = col(format!("__v_{}", f.name));
            let filler = Expr::Literal(fill.cast(f.dtype));
            out_exprs.push((
                f.name.clone(),
                Expr::Case {
                    branches: vec![(col("__present").eq(lit(true)), stored)],
                    otherwise: Some(filler.boxed_expr()),
                },
            ));
        }
    }
    Ok(Plan::Project {
        input: joined.boxed(),
        exprs: out_exprs,
    })
}

/// Permute lowers to a projection listing the fields in the permuted
/// order: bare dimension references keep their tags, so the projection's
/// output schema is exactly the permuted schema.
fn lower_permute(input: &Plan, order: &[String]) -> Result<Plan> {
    let in_schema = infer_schema(input)?;
    let mut exprs: Vec<(String, Expr)> = Vec::with_capacity(in_schema.len());
    for d in order {
        exprs.push((d.clone(), col(d)));
    }
    for f in in_schema.values() {
        exprs.push((f.name.clone(), col(&f.name)));
    }
    // Validate against the intent's own schema rules.
    infer_schema(&Plan::Permute {
        input: input.clone().boxed(),
        order: order.to_vec(),
    })?;
    Ok(Plan::Project {
        input: input.clone().boxed(),
        exprs,
    })
}

fn lower_slice(input: &Plan, dim: &str, index: i64) -> Result<Plan> {
    let in_schema = infer_schema(input)?;
    let diced = Plan::Dice {
        input: input.clone().boxed(),
        ranges: vec![(dim.to_string(), index, index + 1)],
    };
    let exprs: Vec<(String, Expr)> = in_schema
        .fields()
        .iter()
        .filter(|f| f.name != dim)
        .map(|f| (f.name.clone(), col(&f.name)))
        .collect();
    Ok(Plan::Project {
        input: diced.boxed(),
        exprs,
    })
}

// ---------------------------------------------------------------------------
// Graph intent lowerings
// ---------------------------------------------------------------------------

/// The canonical (distinct) edge set of a graph input.
fn canonical_edges(edges: &Plan) -> Plan {
    edges
        .clone()
        .project(vec![("src", col("src")), ("dst", col("dst"))])
        .select(col("src").is_null().not().and(col("dst").is_null().not()))
        .distinct()
}

/// The vertex set `(vertex: i64)` of a graph input.
fn vertices(edges: &Plan) -> Plan {
    let e = canonical_edges(edges);
    e.clone()
        .project(vec![("vertex", col("src"))])
        .union(e.project(vec![("vertex", col("dst"))]))
        .distinct()
}

fn lower_graph(g: &GraphOp) -> Result<Plan> {
    // Graph inputs are validated by infer before lowering.
    infer_schema(&Plan::Graph(g.clone()))?;
    match g {
        GraphOp::Degrees { edges } => Ok(lower_degrees(edges)),
        GraphOp::TriangleCount { edges } => Ok(lower_triangles(edges)),
        GraphOp::ConnectedComponents { edges, max_iters } => {
            Ok(lower_components(edges, *max_iters))
        }
        GraphOp::PageRank {
            edges,
            damping,
            max_iters,
            epsilon,
        } => Ok(lower_pagerank(edges, *damping, *max_iters, *epsilon)),
        GraphOp::BfsLevels { edges, source } => Ok(lower_bfs(edges, *source)),
    }
}

/// BFS levels as a fixpoint: the reached set grows by one hop per
/// iteration, each vertex keeping its minimum level. The bound is the
/// vertex count (the longest possible shortest path), discovered with a
/// static bound of usize::MAX truncated by fixpoint detection — we use a
/// generous constant because the fixpoint always fires first on finite
/// graphs.
fn lower_bfs(edges: &Plan, source: i64) -> Plan {
    let e = canonical_edges(edges);
    // The source, if present in the graph, at level 0.
    let init = vertices(edges)
        .select(col("vertex").eq(lit(source)))
        .project(vec![("vertex", col("vertex")), ("level", lit(0i64))]);
    let state = Plan::IterState {
        schema: bfs_schema(),
    };
    // One-hop expansion: neighbours of reached vertices at level+1.
    let expanded = e.join(state.clone(), vec![("src", "vertex")]).project(vec![
        ("vertex", col("dst")),
        ("level", col("level").add(lit(1i64))),
    ]);
    let body = state.union(expanded).aggregate(
        vec!["vertex"],
        vec![AggExpr::new(AggFunc::Min, col("level"), "level")],
    );
    Plan::Iterate {
        init: init.boxed(),
        body: body.boxed(),
        max_iters: 1_000_000,
        epsilon: None,
    }
}

fn lower_degrees(edges: &Plan) -> Plan {
    let out_counts = canonical_edges(edges)
        .aggregate(vec!["src"], vec![AggExpr::count_star("__n")])
        .rename(vec![("src", "__v")]);
    vertices(edges)
        .join_as(out_counts, vec![("vertex", "__v")], JoinType::Left)
        .project(vec![
            ("vertex", col("vertex")),
            ("degree", Expr::Coalesce(vec![col("__n"), lit(0i64)])),
        ])
}

fn lower_triangles(edges: &Plan) -> Plan {
    let e = canonical_edges(edges);
    let e1 = e.clone().rename(vec![("src", "__a"), ("dst", "__b")]);
    let e2 = e.clone().rename(vec![("src", "__b2"), ("dst", "__c")]);
    let e3 = e.rename(vec![("src", "__c2"), ("dst", "__a2")]);
    // a → b → c → a; each cycle appears once per rotation, so divide by 3.
    e1.join(e2, vec![("__b", "__b2")])
        .join(e3, vec![("__c", "__c2"), ("__a", "__a2")])
        .aggregate(vec![], vec![AggExpr::count_star("__cnt")])
        .project(vec![("triangles", col("__cnt").div(lit(3i64)))])
}

fn lower_components(edges: &Plan, max_iters: usize) -> Plan {
    let e = canonical_edges(edges);
    // Undirected view.
    let und = e
        .clone()
        .project(vec![("__s", col("src")), ("__d", col("dst"))])
        .union(e.project(vec![("__s", col("dst")), ("__d", col("src"))]))
        .distinct();
    let schema = crate::infer::components_schema();
    let init = vertices(edges).project(vec![
        ("vertex", col("vertex")),
        ("component", col("vertex")),
    ]);
    let state = Plan::IterState {
        schema: schema.clone(),
    };
    // Minimum neighbour label per vertex.
    let neighbour_min = und.join(state.clone(), vec![("__s", "vertex")]).aggregate(
        vec!["__d"],
        vec![AggExpr::new(AggFunc::Min, col("component"), "__nm")],
    );
    let body = state
        .join_as(neighbour_min, vec![("vertex", "__d")], JoinType::Left)
        .project(vec![
            ("vertex", col("vertex")),
            (
                "component",
                Expr::Case {
                    branches: vec![(
                        col("__nm")
                            .is_null()
                            .not()
                            .and(col("__nm").lt(col("component"))),
                        col("__nm"),
                    )],
                    otherwise: Some(col("component").boxed_expr()),
                },
            ),
        ]);
    Plan::Iterate {
        init: init.boxed(),
        body: body.boxed(),
        max_iters,
        epsilon: None,
    }
}

fn lower_pagerank(edges: &Plan, damping: f64, max_iters: usize, epsilon: f64) -> Plan {
    let e = canonical_edges(edges);
    let verts = vertices(edges);
    // 1/N, attached to every vertex by a cross join with the global count.
    let verts_with_invn = verts
        .clone()
        .join_as(
            verts
                .clone()
                .aggregate(vec![], vec![AggExpr::count_star("__n")]),
            vec![],
            JoinType::Inner,
        )
        .project(vec![
            ("vertex", col("vertex")),
            (
                "__invn",
                lit(1.0).div(col("__n").cast(bda_storage::DataType::Float64)),
            ),
        ]);
    let init = verts_with_invn
        .clone()
        .project(vec![("vertex", col("vertex")), ("rank", col("__invn"))]);
    // Edges with the source's out-degree.
    let outdeg = e
        .clone()
        .aggregate(vec!["src"], vec![AggExpr::count_star("__od")])
        .rename(vec![("src", "__s")]);
    let e_od = e.join(outdeg, vec![("src", "__s")]);
    let state = Plan::IterState {
        schema: pagerank_schema(),
    };
    // Contribution flowing along each edge, summed per destination.
    let sums = e_od
        .join(state, vec![("src", "vertex")])
        .project(vec![
            ("__dst", col("dst")),
            (
                "__c",
                col("rank").div(col("__od").cast(bda_storage::DataType::Float64)),
            ),
        ])
        .aggregate(
            vec!["__dst"],
            vec![AggExpr::new(AggFunc::Sum, col("__c"), "__s")],
        );
    let body = verts_with_invn
        .join_as(sums, vec![("vertex", "__dst")], JoinType::Left)
        .project(vec![
            ("vertex", col("vertex")),
            (
                "rank",
                lit(1.0 - damping)
                    .mul(col("__invn"))
                    .add(lit(damping).mul(Expr::Coalesce(vec![col("__s"), lit(0.0)]))),
            ),
        ]);
    Plan::Iterate {
        init: init.boxed(),
        body: body.boxed(),
        max_iters,
        epsilon: Some(epsilon),
    }
}

// Small helper so expression construction reads naturally above.
trait BoxedExpr {
    fn boxed_expr(self) -> Box<Expr>;
}

impl BoxedExpr for Expr {
    fn boxed_expr(self) -> Box<Expr> {
        Box::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::edge_schema;
    use crate::plan::OpKind;
    use crate::reference::{evaluate, DataSource};
    use bda_storage::dataset::matrix_dataset;
    use bda_storage::{DataSet, DataType, Field, Row, Schema};
    use std::collections::HashMap;

    fn assert_equiv(plan: &Plan, src: &dyn DataSource) {
        let native = evaluate(plan, src).expect("native evaluation");
        let lowered_plan = lower_all(plan).expect("lowering");
        assert!(
            lowered_plan.op_kinds().iter().all(|k| k.is_base()),
            "lowering left intent ops"
        );
        let lowered = evaluate(&lowered_plan, src).expect("lowered evaluation");
        assert_eq!(native.schema(), lowered.schema(), "schemas must agree");
        // Compare with float tolerance.
        let a = native.sorted_rows().unwrap();
        let b = lowered.sorted_rows().unwrap();
        assert_eq!(a.len(), b.len(), "row counts differ");
        for (x, y) in a.iter().zip(&b) {
            for (vx, vy) in x.0.iter().zip(&y.0) {
                match (vx, vy) {
                    (Value::Float(fx), Value::Float(fy)) => {
                        assert!(
                            (fx - fy).abs() <= 1e-9 * (1.0 + fx.abs()),
                            "float mismatch {fx} vs {fy} in {x} vs {y}"
                        )
                    }
                    _ => assert_eq!(vx, vy, "row mismatch {x} vs {y}"),
                }
            }
        }
    }

    fn matrices() -> (HashMap<String, DataSet>, Plan, Plan) {
        let a = matrix_dataset(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = matrix_dataset(2, 4, (0..8).map(|i| i as f64 - 3.0).collect()).unwrap();
        let mut src = HashMap::new();
        src.insert("a".into(), a.clone());
        src.insert("b".into(), b.clone());
        let pa = Plan::scan("a", a.schema().clone());
        let pb = Plan::scan("b", b.schema().clone()).rename(vec![("row", "k"), ("col", "j")]);
        (src, pa, pb)
    }

    #[test]
    fn matmul_lowering_equivalent() {
        let (src, a, b) = matrices();
        assert_equiv(&a.matmul(b), &src);
    }

    #[test]
    fn matmul_lowering_is_base_only() {
        let (_, a, b) = matrices();
        let lowered = lower_all(&a.matmul(b)).unwrap();
        let kinds = lowered.op_kinds();
        assert!(kinds.contains(&OpKind::Join) && kinds.contains(&OpKind::Aggregate));
        assert!(!kinds.contains(&OpKind::MatMul));
    }

    #[test]
    fn elemwise_lowering_equivalent() {
        let (src, a, _) = matrices();
        for op in [BinOp::Add, BinOp::Mul, BinOp::Sub, BinOp::Lt] {
            assert_equiv(&a.clone().elemwise(op, a.clone()), &src);
        }
    }

    #[test]
    fn window_lowering_equivalent() {
        let schema = Schema::new(vec![
            Field::dimension_bounded("i", 0, 5),
            Field::value("v", DataType::Float64),
        ])
        .unwrap();
        // Sparse: cells 0, 1, 3.
        let ds = DataSet::from_rows(
            schema.clone(),
            &[
                Row(vec![Value::Int(0), Value::Float(1.0)]),
                Row(vec![Value::Int(1), Value::Float(10.0)]),
                Row(vec![Value::Int(3), Value::Float(100.0)]),
            ],
        )
        .unwrap();
        let mut src = HashMap::new();
        src.insert("x".to_string(), ds);
        let p = Plan::Window {
            input: Plan::scan("x", schema).boxed(),
            radii: vec![("i".into(), 1)],
            aggs: vec![
                AggExpr::new(AggFunc::Sum, col("v"), "s"),
                AggExpr::count_star("n"),
            ],
        };
        assert_equiv(&p, &src);
    }

    #[test]
    fn window_2d_lowering_equivalent() {
        let ds = matrix_dataset(3, 3, (0..9).map(|i| i as f64).collect()).unwrap();
        let mut src = HashMap::new();
        src.insert("m".to_string(), ds.clone());
        let p = Plan::Window {
            input: Plan::scan("m", ds.schema().clone()).boxed(),
            radii: vec![("row".into(), 1), ("col".into(), 0)],
            aggs: vec![AggExpr::new(AggFunc::Avg, col("v"), "m")],
        };
        assert_equiv(&p, &src);
    }

    #[test]
    fn fill_lowering_equivalent() {
        let schema = Schema::new(vec![
            Field::dimension_bounded("i", 0, 4),
            Field::value("v", DataType::Int64),
            Field::value("w", DataType::Float64),
        ])
        .unwrap();
        let ds = DataSet::from_rows(
            schema.clone(),
            &[
                Row(vec![Value::Int(2), Value::Int(5), Value::Null]),
                Row(vec![Value::Int(0), Value::Null, Value::Float(1.5)]),
            ],
        )
        .unwrap();
        let mut src = HashMap::new();
        src.insert("x".to_string(), ds);
        let p = Plan::Fill {
            input: Plan::scan("x", schema).boxed(),
            fill: Value::Int(0),
        };
        assert_equiv(&p, &src);
    }

    #[test]
    fn slice_lowering_equivalent() {
        let (src, a, _) = matrices();
        let p = Plan::SliceAt {
            input: a.boxed(),
            dim: "row".into(),
            index: 1,
        };
        assert_equiv(&p, &src);
    }

    fn graph_src() -> (HashMap<String, DataSet>, Plan) {
        let edges = DataSet::from_rows(
            edge_schema(),
            &[
                Row(vec![Value::Int(0), Value::Int(1)]),
                Row(vec![Value::Int(1), Value::Int(2)]),
                Row(vec![Value::Int(2), Value::Int(0)]),
                Row(vec![Value::Int(2), Value::Int(3)]),
                Row(vec![Value::Int(3), Value::Int(2)]),
                Row(vec![Value::Int(0), Value::Int(1)]), // duplicate edge
                Row(vec![Value::Int(5), Value::Int(6)]),
                Row(vec![Value::Int(6), Value::Int(5)]),
            ],
        )
        .unwrap();
        let mut src = HashMap::new();
        src.insert("edges".to_string(), edges);
        (src, Plan::scan("edges", edge_schema()))
    }

    #[test]
    fn degrees_lowering_equivalent() {
        let (src, e) = graph_src();
        assert_equiv(&Plan::Graph(GraphOp::Degrees { edges: e.boxed() }), &src);
    }

    #[test]
    fn triangles_lowering_equivalent() {
        let (src, e) = graph_src();
        assert_equiv(
            &Plan::Graph(GraphOp::TriangleCount { edges: e.boxed() }),
            &src,
        );
    }

    #[test]
    fn components_lowering_equivalent() {
        let (src, e) = graph_src();
        assert_equiv(
            &Plan::Graph(GraphOp::ConnectedComponents {
                edges: e.boxed(),
                max_iters: 20,
            }),
            &src,
        );
    }

    #[test]
    fn bfs_lowering_equivalent() {
        let (src, e) = graph_src();
        assert_equiv(
            &Plan::Graph(GraphOp::BfsLevels {
                edges: e.clone().boxed(),
                source: 0,
            }),
            &src,
        );
        // A source outside the graph reaches nothing.
        assert_equiv(
            &Plan::Graph(GraphOp::BfsLevels {
                edges: e.boxed(),
                source: 999,
            }),
            &src,
        );
    }

    #[test]
    fn pagerank_lowering_equivalent() {
        let (src, e) = graph_src();
        assert_equiv(
            &Plan::Graph(GraphOp::PageRank {
                edges: e.boxed(),
                damping: 0.85,
                max_iters: 60,
                epsilon: 1e-10,
            }),
            &src,
        );
    }

    #[test]
    fn lower_is_idempotent_on_base_plans() {
        let schema = Schema::new(vec![Field::value("k", DataType::Int64)]).unwrap();
        let p = Plan::scan("t", schema).select(col("k").gt(lit(0i64)));
        assert_eq!(lower_all(&p).unwrap(), p);
        assert!(lower_node(&p).unwrap().is_none());
    }

    #[test]
    fn nested_intents_fully_lowered() {
        // A matmul whose input is an elemwise sum: both must lower.
        let (src, a, b) = matrices();
        let p = a.clone().elemwise(BinOp::Add, a).matmul(b);
        let lowered = lower_all(&p).unwrap();
        assert!(lowered.op_kinds().iter().all(|k| k.is_base()));
        assert_equiv(&p, &src);
    }

    #[test]
    fn matmul_with_multiple_values_rejected() {
        let schema = Schema::new(vec![
            Field::dimension_bounded("i", 0, 2),
            Field::dimension_bounded("j", 0, 2),
            Field::value("v", DataType::Float64),
            Field::value("w", DataType::Float64),
        ])
        .unwrap();
        let p = Plan::scan("m", schema.clone()).matmul(Plan::scan("m", schema));
        assert!(lower_all(&p).is_err());
    }
}
