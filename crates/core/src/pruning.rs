//! Predicate analysis for statistics-driven pruning.
//!
//! [`analyze`] decomposes a `Select` predicate into per-conjunct
//! [`Test`]s that zone maps can answer — and refuses (returns `None`)
//! whenever *any* conjunct falls outside the recognized, provably
//! error-free forms. That refusal is a correctness requirement, not a
//! convenience: evaluating a predicate can raise a type error, and a
//! pruning layer that skips rows also skips the error the engine would
//! have raised on them. Restricting pruning to conjuncts the schema
//! proves total (comparisons between compatible types, null tests,
//! boolean literals) keeps the stats-on and stats-off paths
//! observationally identical — the property the differential suite in
//! `tests/property_pruning.rs` enforces.
//!
//! Soundness of the comparisons rests on one fact: the expression
//! engine ([`crate::eval`]) compares with [`Value::total_cmp`], the
//! same total order zone maps are built with. A zone's min/max
//! therefore bound exactly what execution would see — NaN included (it
//! sorts last, so it lands in `max`).

use bda_storage::stats::{CmpOp, ZoneMap};
use bda_storage::{Schema, Value};

use crate::expr::{BinOp, Expr, UnOp};

/// Environment variable gating the statistics layer. Statistics are on
/// by default; set to `0`, `false`, or `off` to bypass zone-map
/// pruning, index lowering, and stats-driven planning everywhere (the
/// differential harness and the F11 ablation flip exactly this switch).
pub const STATS_ENV: &str = "BDA_STATS";

/// Read [`STATS_ENV`]: `true` unless explicitly disabled.
pub fn stats_from_env() -> bool {
    match std::env::var(STATS_ENV) {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "0" || v == "false" || v == "off")
        }
        Err(_) => true,
    }
}

/// One conjunct, reduced to a form zone maps can answer.
#[derive(Debug, Clone)]
pub enum Test {
    /// Trivially true (`true` literal): satisfiable everywhere.
    True,
    /// Trivially false (`false` literal): satisfiable nowhere.
    Never,
    /// `column OP literal` with a non-null literal of a type the
    /// column provably compares with.
    Cmp {
        /// The column name.
        column: String,
        /// The comparison, normalized to column-on-the-left.
        op: CmpOp,
        /// The literal.
        lit: Value,
    },
    /// `column IS NULL`.
    IsNull(String),
    /// `NOT (column IS NULL)`.
    NotNull(String),
}

impl Test {
    /// The column this test constrains, if any.
    pub fn column(&self) -> Option<&str> {
        match self {
            Test::True | Test::Never => None,
            Test::Cmp { column, .. } => Some(column),
            Test::IsNull(c) | Test::NotNull(c) => Some(c),
        }
    }

    /// Could any row of a zone satisfy this conjunct? `zone_of` maps a
    /// column name to its zone map; an unknown column is conservatively
    /// satisfiable.
    pub fn may_match<'a>(&self, zone_of: impl Fn(&str) -> Option<&'a ZoneMap>) -> bool {
        match self {
            Test::True => true,
            Test::Never => false,
            Test::Cmp { column, op, lit } => zone_of(column)
                .map(|z| z.may_match_cmp(*op, lit))
                .unwrap_or(true),
            Test::IsNull(c) => zone_of(c).map(ZoneMap::may_match_is_null).unwrap_or(true),
            Test::NotNull(c) => zone_of(c).map(ZoneMap::may_match_not_null).unwrap_or(true),
        }
    }
}

/// True when every test in the list stays satisfiable for the zone
/// maps `zone_of` describes — i.e. the chunk/table **cannot** be
/// skipped. A single disproved conjunct proves emptiness.
pub fn may_match_all<'a>(
    tests: &[Test],
    zone_of: impl Fn(&str) -> Option<&'a ZoneMap> + Copy,
) -> bool {
    tests.iter().all(|t| t.may_match(zone_of))
}

/// Decompose `pred` into per-conjunct tests, or `None` when any
/// conjunct is outside the recognized forms (the caller must bypass
/// pruning entirely — see the module docs for why partial recognition
/// would be unsound).
pub fn analyze(pred: &Expr, schema: &Schema) -> Option<Vec<Test>> {
    pred.conjuncts()
        .iter()
        .map(|c| analyze_conjunct(c, schema))
        .collect()
}

fn analyze_conjunct(e: &Expr, schema: &Schema) -> Option<Test> {
    match e {
        Expr::Literal(Value::Bool(true)) => Some(Test::True),
        Expr::Literal(Value::Bool(false)) => Some(Test::Never),
        Expr::Unary {
            op: UnOp::IsNull,
            input,
        } => Some(Test::IsNull(known_column(input, schema)?)),
        Expr::Unary {
            op: UnOp::Not,
            input,
        } => match &**input {
            Expr::Unary {
                op: UnOp::IsNull,
                input,
            } => Some(Test::NotNull(known_column(input, schema)?)),
            _ => None,
        },
        Expr::Binary { op, left, right } if op.is_comparison() => {
            let cmp = cmp_of(*op)?;
            match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(v)) => comparison(c, cmp, v, schema),
                (Expr::Literal(v), Expr::Column(c)) => comparison(c, cmp.flipped(), v, schema),
                _ => None,
            }
        }
        _ => None,
    }
}

/// The column's name, if `e` is a reference to a column the schema has.
fn known_column(e: &Expr, schema: &Schema) -> Option<String> {
    match e {
        Expr::Column(name) if schema.index_of(name).is_ok() => Some(name.clone()),
        _ => None,
    }
}

fn cmp_of(op: BinOp) -> Option<CmpOp> {
    match op {
        BinOp::Eq => Some(CmpOp::Eq),
        BinOp::Ne => Some(CmpOp::Ne),
        BinOp::Lt => Some(CmpOp::Lt),
        BinOp::Le => Some(CmpOp::Le),
        BinOp::Gt => Some(CmpOp::Gt),
        BinOp::Ge => Some(CmpOp::Ge),
        _ => None,
    }
}

fn comparison(column: &str, op: CmpOp, lit: &Value, schema: &Schema) -> Option<Test> {
    if lit.is_null() {
        // `col OP null` is three-valued null everywhere — but the
        // columnar kernels are the authority on its shape, so leave it
        // to them rather than claim Never here.
        return None;
    }
    let idx = schema.index_of(column).ok()?;
    let col_dt = schema.field_at(idx).dtype;
    let lit_dt = lit.dtype()?;
    // Mirror eval::compare's compatibility rule: equal types, or both
    // numeric. Anything else would *error* at evaluation time, and
    // pruning must never suppress an error.
    let compatible = col_dt == lit_dt || (col_dt.is_numeric() && lit_dt.is_numeric());
    if !compatible {
        return None;
    }
    Some(Test::Cmp {
        column: column.to_string(),
        op,
        lit: lit.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, null};
    use bda_storage::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::value("k", DataType::Int64),
            Field::value("v", DataType::Float64),
            Field::value("s", DataType::Utf8),
        ])
        .unwrap()
    }

    #[test]
    fn recognizes_comparisons_and_null_tests() {
        let s = schema();
        let pred = col("k")
            .gt(lit(1i64))
            .and(lit(2.5f64).le(col("v")))
            .and(col("s").is_null())
            .and(col("k").is_null().not());
        let tests = analyze(&pred, &s).unwrap();
        assert_eq!(tests.len(), 4);
        assert!(matches!(
            &tests[0],
            Test::Cmp { column, op: CmpOp::Gt, .. } if column == "k"
        ));
        // `2.5 <= v` normalizes to `v >= 2.5`.
        assert!(matches!(
            &tests[1],
            Test::Cmp { column, op: CmpOp::Ge, .. } if column == "v"
        ));
        assert!(matches!(&tests[2], Test::IsNull(c) if c == "s"));
        assert!(matches!(&tests[3], Test::NotNull(c) if c == "k"));
    }

    #[test]
    fn refuses_unrecognized_or_unsafe_conjuncts() {
        let s = schema();
        // String column vs int literal would error at eval — refused.
        assert!(analyze(&col("s").gt(lit(1i64)), &s).is_none());
        // Unknown column — refused.
        assert!(analyze(&col("zz").gt(lit(1i64)), &s).is_none());
        // Arithmetic on the column — refused (not a plain comparison).
        assert!(analyze(&col("k").add(lit(1i64)).gt(lit(2i64)), &s).is_none());
        // Null literal comparison — refused.
        assert!(analyze(&col("k").gt(null()), &s).is_none());
        // OR is one opaque conjunct — refused.
        assert!(analyze(&col("k").gt(lit(1i64)).or(col("k").lt(lit(0i64))), &s).is_none());
        // One bad conjunct poisons the whole predicate.
        assert!(analyze(&col("k").gt(lit(1i64)).and(col("s").gt(lit(1i64))), &s).is_none());
    }

    #[test]
    fn cross_numeric_comparison_is_safe() {
        let s = schema();
        assert!(analyze(&col("k").lt(lit(2.5f64)), &s).is_some());
        assert!(analyze(&col("v").ge(lit(3i64)), &s).is_some());
        assert!(analyze(&col("s").eq(lit("x")), &s).is_some());
    }

    #[test]
    fn boolean_literals_fold_to_true_and_never() {
        let s = schema();
        let tests = analyze(&lit(true).and(lit(false)), &s).unwrap();
        assert!(matches!(tests[0], Test::True));
        assert!(matches!(tests[1], Test::Never));
        assert!(!may_match_all(&tests, |_| None));
    }

    #[test]
    fn may_match_all_consults_zones() {
        use bda_storage::Column;
        let s = schema();
        let zone = bda_storage::stats::ZoneMap::of(&Column::from(vec![5i64, 9]));
        let zone_of = |name: &str| (name == "k").then_some(&zone);
        let sat = analyze(&col("k").ge(lit(7i64)), &s).unwrap();
        assert!(may_match_all(&sat, zone_of));
        let unsat = analyze(&col("k").gt(lit(9i64)), &s).unwrap();
        assert!(!may_match_all(&unsat, zone_of));
        // Unknown-column stats stay satisfiable.
        let other = analyze(&col("v").gt(lit(1e9f64)), &s).unwrap();
        assert!(may_match_all(&other, zone_of));
    }
}
