//! A small scoped worker pool for partition-parallel kernels.
//!
//! The pool is deliberately minimal: callers hand over a vector of
//! closures, the pool runs them on `n` scoped threads, and the results
//! come back **in submission order** regardless of which worker finished
//! first. That ordering guarantee is what lets partitioned kernels
//! produce byte-identical output no matter how many workers ran.
//!
//! Worker count resolution, in priority order:
//!
//! 1. a thread-local override installed with [`with_workers`] (the
//!    federation executor uses this so every provider call inside a
//!    query sees the query's `ExecOptions::workers`),
//! 2. the `BDA_WORKERS` environment variable,
//! 3. `1` (fully sequential; the pool runs closures inline).

use std::cell::Cell;
use std::sync::Mutex;
use std::sync::OnceLock;

use crossbeam::channel;

thread_local! {
    static WORKER_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Parse `BDA_WORKERS` once per process. Unset, empty, unparsable, or
/// zero values all fall back to 1 worker (sequential).
pub fn workers_from_env() -> usize {
    static ENV_WORKERS: OnceLock<usize> = OnceLock::new();
    *ENV_WORKERS.get_or_init(|| {
        std::env::var("BDA_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// The worker count in effect on this thread: the [`with_workers`]
/// override if one is installed, otherwise the `BDA_WORKERS` default.
pub fn workers() -> usize {
    WORKER_OVERRIDE
        .with(|c| c.get())
        .unwrap_or_else(workers_from_env)
}

/// Run `f` with the worker count pinned to `n` on this thread.
///
/// The override is scoped: it is restored on exit even if `f` panics.
/// Tests and the executor use this instead of mutating the environment
/// so concurrently running queries with different worker counts never
/// race.
pub fn with_workers<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = WORKER_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Run `tasks` on up to `workers` scoped threads and return the results
/// in submission order.
///
/// With `workers <= 1` (or fewer than two tasks) the closures run inline
/// on the calling thread — no threads are spawned, so the sequential
/// path has zero overhead and identical panic behavior.
pub fn run_with<T: Send>(workers: usize, tasks: Vec<Box<dyn FnOnce() -> T + Send + '_>>) -> Vec<T> {
    let n = workers.min(tasks.len()).max(1);
    if n <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }

    let total = tasks.len();
    let (job_tx, job_rx) = channel::unbounded::<(usize, Box<dyn FnOnce() -> T + Send + '_>)>();
    for job in tasks.into_iter().enumerate() {
        if job_tx.send(job).is_err() {
            unreachable!("pool job channel closed before workers started");
        }
    }
    drop(job_tx);
    let job_rx = Mutex::new(job_rx);

    let (out_tx, out_rx) = channel::unbounded::<(usize, T)>();
    std::thread::scope(|s| {
        for _ in 0..n {
            let out_tx = out_tx.clone();
            let job_rx = &job_rx;
            s.spawn(move || loop {
                let job = { job_rx.lock().expect("pool job lock").try_recv() };
                match job {
                    Ok((idx, task)) => {
                        if out_tx.send((idx, task())).is_err() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            });
        }
        drop(out_tx);
    });

    let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
    while let Ok((idx, value)) = out_rx.recv() {
        slots[idx] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("pool worker panicked; result missing"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed_tasks(n: usize) -> Vec<Box<dyn FnOnce() -> usize + Send + 'static>> {
        (0..n)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for workers in [1, 2, 4, 7] {
            let got = run_with(workers, boxed_tasks(13));
            let want: Vec<usize> = (0..13).map(|i| i * i).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_singleton_task_lists() {
        assert_eq!(run_with(4, boxed_tasks(0)), Vec::<usize>::new());
        assert_eq!(run_with(4, boxed_tasks(1)), vec![0]);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        assert_eq!(run_with(64, boxed_tasks(3)), vec![0, 1, 4]);
    }

    #[test]
    fn tasks_can_borrow_from_the_caller() {
        let data: Vec<i64> = (0..100).collect();
        let chunks: Vec<&[i64]> = data.chunks(17).collect();
        let tasks: Vec<Box<dyn FnOnce() -> i64 + Send + '_>> = chunks
            .iter()
            .map(|c| {
                let c = *c;
                Box::new(move || c.iter().sum::<i64>()) as Box<dyn FnOnce() -> i64 + Send + '_>
            })
            .collect();
        let partials = run_with(3, tasks);
        assert_eq!(partials.iter().sum::<i64>(), data.iter().sum::<i64>());
    }

    #[test]
    fn override_is_scoped_and_nested() {
        assert_eq!(workers(), workers_from_env());
        with_workers(4, || {
            assert_eq!(workers(), 4);
            with_workers(2, || assert_eq!(workers(), 2));
            assert_eq!(workers(), 4);
        });
        assert_eq!(workers(), workers_from_env());
    }

    #[test]
    fn override_clamps_zero_to_one() {
        with_workers(0, || assert_eq!(workers(), 1));
    }
}
