//! Expression evaluation: scalar semantics and the columnar evaluator.
//!
//! The scalar functions ([`binary_scalar`], [`unary_scalar`]) are the single
//! source of truth for the algebra's null/overflow semantics; both the
//! row-wise reference evaluator and the engines' columnar kernels are built
//! on them, so the oracle and the fast paths cannot drift apart.

use std::cmp::Ordering;

use bda_storage::{Column, DataType, RowsChunk, Schema, Value};

use crate::error::CoreError;
use crate::expr::{BinOp, Expr, UnOp};

/// Result alias for this module.
pub type Result<T> = std::result::Result<T, CoreError>;

// ---------------------------------------------------------------------------
// Scalar semantics
// ---------------------------------------------------------------------------

/// Apply a binary operator to two scalars.
///
/// Semantics: SQL-style null propagation for arithmetic and comparisons,
/// Kleene three-valued logic for `AND`/`OR`, null on integer overflow and
/// division by zero (keeping evaluation total so optimizer reorderings
/// cannot change whether a query errors).
pub fn binary_scalar(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    if op.is_logical() {
        return kleene(op, a, b);
    }
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        return compare(op, a, b);
    }
    arithmetic(op, a, b)
}

fn kleene(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    let as_tv = |v: &Value| -> Result<Option<bool>> {
        match v {
            Value::Null => Ok(None),
            Value::Bool(x) => Ok(Some(*x)),
            other => Err(CoreError::Expr(format!(
                "logical operand must be bool, got {other}"
            ))),
        }
    };
    let (x, y) = (as_tv(a)?, as_tv(b)?);
    let r = match op {
        BinOp::And => match (x, y) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinOp::Or => match (x, y) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!("kleene called with non-logical op"),
    };
    Ok(r.map(Value::Bool).unwrap_or(Value::Null))
}

fn compare(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    let comparable = match (a.dtype(), b.dtype()) {
        (Some(x), Some(y)) => x == y || (x.is_numeric() && y.is_numeric()),
        _ => true,
    };
    if !comparable {
        return Err(CoreError::Expr(format!(
            "cannot compare {a} with {b}: incompatible types"
        )));
    }
    let ord = a.total_cmp(b);
    let r = match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!("compare called with non-comparison op"),
    };
    Ok(Value::Bool(r))
}

fn arithmetic(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(int_arith(op, *x, *y)),
        (Value::Float(_) | Value::Int(_), Value::Float(_) | Value::Int(_)) => {
            let (x, y) = (a.as_float()?, b.as_float()?);
            Ok(float_arith(op, x, y))
        }
        _ => Err(CoreError::Expr(format!(
            "arithmetic `{}` requires numeric operands, got {a} and {b}",
            op.symbol()
        ))),
    }
}

fn int_arith(op: BinOp, x: i64, y: i64) -> Value {
    let r = match op {
        BinOp::Add => x.checked_add(y),
        BinOp::Sub => x.checked_sub(y),
        BinOp::Mul => x.checked_mul(y),
        BinOp::Div => {
            if y == 0 {
                None
            } else {
                x.checked_div(y)
            }
        }
        BinOp::Mod => {
            if y == 0 {
                None
            } else {
                x.checked_rem(y)
            }
        }
        _ => unreachable!(),
    };
    r.map(Value::Int).unwrap_or(Value::Null)
}

fn float_arith(op: BinOp, x: f64, y: f64) -> Value {
    match op {
        BinOp::Add => Value::Float(x + y),
        BinOp::Sub => Value::Float(x - y),
        BinOp::Mul => Value::Float(x * y),
        BinOp::Div => Value::Float(x / y),
        BinOp::Mod => {
            if y == 0.0 {
                Value::Null
            } else {
                Value::Float(x % y)
            }
        }
        _ => unreachable!(),
    }
}

/// Apply a unary operator to a scalar.
pub fn unary_scalar(op: UnOp, v: &Value) -> Result<Value> {
    if op == UnOp::IsNull {
        return Ok(Value::Bool(v.is_null()));
    }
    if v.is_null() {
        return Ok(Value::Null);
    }
    match op {
        UnOp::Not => Ok(Value::Bool(!v.as_bool().map_err(expr_err)?)),
        UnOp::Neg => match v {
            Value::Int(x) => Ok(x.checked_neg().map(Value::Int).unwrap_or(Value::Null)),
            Value::Float(x) => Ok(Value::Float(-x)),
            other => Err(CoreError::Expr(format!("cannot negate {other}"))),
        },
        UnOp::Abs => match v {
            Value::Int(x) => Ok(x.checked_abs().map(Value::Int).unwrap_or(Value::Null)),
            Value::Float(x) => Ok(Value::Float(x.abs())),
            other => Err(CoreError::Expr(format!("abs of non-numeric {other}"))),
        },
        UnOp::Sqrt => {
            let x = v.as_float().map_err(expr_err)?;
            if x < 0.0 {
                Ok(Value::Null)
            } else {
                Ok(Value::Float(x.sqrt()))
            }
        }
        UnOp::Floor => match v {
            Value::Int(x) => Ok(Value::Int(*x)),
            Value::Float(x) => {
                let f = x.floor();
                if f.is_finite() && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Ok(Value::Int(f as i64))
                } else {
                    Ok(Value::Null)
                }
            }
            other => Err(CoreError::Expr(format!("floor of non-numeric {other}"))),
        },
        UnOp::Exp => Ok(Value::Float(v.as_float().map_err(expr_err)?.exp())),
        UnOp::Ln => {
            let x = v.as_float().map_err(expr_err)?;
            if x <= 0.0 {
                Ok(Value::Null)
            } else {
                Ok(Value::Float(x.ln()))
            }
        }
        UnOp::IsNull => unreachable!("handled above"),
    }
}

fn expr_err(e: bda_storage::StorageError) -> CoreError {
    CoreError::Expr(e.to_string())
}

// ---------------------------------------------------------------------------
// Type inference
// ---------------------------------------------------------------------------

/// Infer the type of an expression against a schema. `Ok(None)` means the
/// expression is the untyped null (e.g. a bare `null` literal).
pub fn infer_expr(expr: &Expr, schema: &Schema) -> Result<Option<DataType>> {
    match expr {
        Expr::Column(name) => Ok(Some(
            schema
                .field(name)
                .map_err(|_| CoreError::Expr(format!("unknown column `{name}`")))?
                .dtype,
        )),
        Expr::Literal(v) => Ok(v.dtype()),
        Expr::Binary { op, left, right } => {
            let l = infer_expr(left, schema)?;
            let r = infer_expr(right, schema)?;
            infer_binary(*op, l, r)
        }
        Expr::Unary { op, input } => {
            let t = infer_expr(input, schema)?;
            infer_unary(*op, t)
        }
        Expr::Cast { input, to } => {
            infer_expr(input, schema)?;
            Ok(Some(*to))
        }
        Expr::Coalesce(args) => {
            if args.is_empty() {
                return Err(CoreError::Expr("coalesce needs arguments".into()));
            }
            let mut acc: Option<DataType> = None;
            for a in args {
                let t = infer_expr(a, schema)?;
                acc = unify(acc, t).ok_or_else(|| {
                    CoreError::Expr(format!(
                        "coalesce arguments have incompatible types ({acc:?} vs {t:?})"
                    ))
                })?;
            }
            Ok(acc)
        }
        Expr::Case {
            branches,
            otherwise,
        } => {
            if branches.is_empty() {
                return Err(CoreError::Expr("case needs at least one branch".into()));
            }
            let mut acc: Option<DataType> = None;
            for (w, t) in branches {
                let wt = infer_expr(w, schema)?;
                if !matches!(wt, Some(DataType::Bool) | None) {
                    return Err(CoreError::Expr(format!(
                        "case condition must be bool, got {wt:?}"
                    )));
                }
                let tt = infer_expr(t, schema)?;
                acc = unify(acc, tt).ok_or_else(|| {
                    CoreError::Expr("case branches have incompatible types".into())
                })?;
            }
            if let Some(e) = otherwise {
                let tt = infer_expr(e, schema)?;
                acc = unify(acc, tt).ok_or_else(|| {
                    CoreError::Expr("case else branch has incompatible type".into())
                })?;
            }
            Ok(acc)
        }
    }
}

/// Unify two optional types: `None` (untyped null) adopts the other side;
/// equal types unify; numeric types unify to their join.
fn unify(a: Option<DataType>, b: Option<DataType>) -> Option<Option<DataType>> {
    match (a, b) {
        (None, t) | (t, None) => Some(t),
        (Some(x), Some(y)) if x == y => Some(Some(x)),
        (Some(x), Some(y)) => x.numeric_join(y).map(Some),
    }
}

fn infer_binary(op: BinOp, l: Option<DataType>, r: Option<DataType>) -> Result<Option<DataType>> {
    if op.is_logical() {
        for t in [l, r].into_iter().flatten() {
            if t != DataType::Bool {
                return Err(CoreError::Expr(format!(
                    "`{}` requires bool operands, got {t}",
                    op.symbol()
                )));
            }
        }
        return Ok(Some(DataType::Bool));
    }
    if op.is_comparison() {
        let ok = match (l, r) {
            (Some(x), Some(y)) => x == y || (x.is_numeric() && y.is_numeric()),
            _ => true,
        };
        if !ok {
            return Err(CoreError::Expr(format!(
                "`{}` cannot compare {l:?} with {r:?}",
                op.symbol()
            )));
        }
        return Ok(Some(DataType::Bool));
    }
    // Arithmetic.
    for t in [l, r].into_iter().flatten() {
        if !t.is_numeric() {
            return Err(CoreError::Expr(format!(
                "`{}` requires numeric operands, got {t}",
                op.symbol()
            )));
        }
    }
    Ok(match (l, r) {
        (Some(x), Some(y)) => Some(x.numeric_join(y).expect("both numeric")),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    })
}

fn infer_unary(op: UnOp, t: Option<DataType>) -> Result<Option<DataType>> {
    let require_numeric = |t: Option<DataType>| -> Result<()> {
        if let Some(t) = t {
            if !t.is_numeric() {
                return Err(CoreError::Expr(format!(
                    "expected numeric operand, got {t}"
                )));
            }
        }
        Ok(())
    };
    match op {
        UnOp::IsNull => Ok(Some(DataType::Bool)),
        UnOp::Not => {
            if let Some(t) = t {
                if t != DataType::Bool {
                    return Err(CoreError::Expr(format!("`not` requires bool, got {t}")));
                }
            }
            Ok(Some(DataType::Bool))
        }
        UnOp::Neg | UnOp::Abs => {
            require_numeric(t)?;
            Ok(t)
        }
        UnOp::Floor => {
            require_numeric(t)?;
            Ok(Some(DataType::Int64))
        }
        UnOp::Sqrt | UnOp::Exp | UnOp::Ln => {
            require_numeric(t)?;
            Ok(Some(DataType::Float64))
        }
    }
}

// ---------------------------------------------------------------------------
// Evaluation over chunks (columnar) and rows
// ---------------------------------------------------------------------------

/// Evaluate an expression over every row of a chunk, producing one column.
///
/// The `schema` describes the chunk's columns positionally.
pub fn eval_chunk(expr: &Expr, schema: &Schema, chunk: &RowsChunk) -> Result<Column> {
    let n = chunk.len();
    match expr {
        Expr::Column(name) => {
            let idx = schema
                .index_of(name)
                .map_err(|_| CoreError::Expr(format!("unknown column `{name}`")))?;
            Ok(chunk.column(idx).clone())
        }
        Expr::Literal(v) => {
            let dtype = v.dtype().unwrap_or(DataType::Int64);
            if v.is_null() {
                return Ok(Column::nulls(typed_or_int(infer_expr(expr, schema)?), n));
            }
            let mut c = Column::new_empty(dtype);
            for _ in 0..n {
                c.push(v).map_err(expr_err)?;
            }
            Ok(c)
        }
        Expr::Binary { op, left, right } => {
            let l = eval_chunk(left, schema, chunk)?;
            let r = eval_chunk(right, schema, chunk)?;
            binary_columns(*op, &l, &r)
        }
        Expr::Unary { op, input } => {
            let c = eval_chunk(input, schema, chunk)?;
            let out_t = infer_unary(*op, Some(c.dtype()))?;
            let mut out = Column::new_empty(typed_or_int(out_t));
            for i in 0..c.len() {
                out.push(&unary_scalar(*op, &c.get(i))?).map_err(expr_err)?;
            }
            Ok(out)
        }
        Expr::Cast { input, to } => {
            let c = eval_chunk(input, schema, chunk)?;
            Ok(c.cast(*to))
        }
        Expr::Coalesce(args) => {
            let cols: Vec<Column> = args
                .iter()
                .map(|a| eval_chunk(a, schema, chunk))
                .collect::<Result<_>>()?;
            let out_t = typed_or_int(infer_expr(expr, schema)?);
            let mut out = Column::new_empty(out_t);
            for i in 0..n {
                let mut v = Value::Null;
                for c in &cols {
                    let x = c.get(i);
                    if !x.is_null() {
                        v = x;
                        break;
                    }
                }
                out.push(&coerce(&v, out_t)).map_err(expr_err)?;
            }
            Ok(out)
        }
        Expr::Case {
            branches,
            otherwise,
        } => {
            let out_t = typed_or_int(infer_expr(expr, schema)?);
            let whens: Vec<Column> = branches
                .iter()
                .map(|(w, _)| eval_chunk(w, schema, chunk))
                .collect::<Result<_>>()?;
            let thens: Vec<Column> = branches
                .iter()
                .map(|(_, t)| eval_chunk(t, schema, chunk))
                .collect::<Result<_>>()?;
            let else_col = otherwise
                .as_ref()
                .map(|e| eval_chunk(e, schema, chunk))
                .transpose()?;
            let mut out = Column::new_empty(out_t);
            for i in 0..n {
                let mut v = Value::Null;
                let mut matched = false;
                for (w, t) in whens.iter().zip(&thens) {
                    if w.get(i) == Value::Bool(true) {
                        v = t.get(i);
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    if let Some(e) = &else_col {
                        v = e.get(i);
                    }
                }
                out.push(&coerce(&v, out_t)).map_err(expr_err)?;
            }
            Ok(out)
        }
    }
}

/// Coerce a scalar into the target type for storage in a typed column
/// (identity or int→float widening; anything else is left alone and will
/// surface a type error on push, which indicates an inference bug).
fn coerce(v: &Value, to: DataType) -> Value {
    match (v, to) {
        (Value::Int(x), DataType::Float64) => Value::Float(*x as f64),
        _ => v.clone(),
    }
}

fn typed_or_int(t: Option<DataType>) -> DataType {
    t.unwrap_or(DataType::Int64)
}

/// Columnar binary kernel with fast paths for the all-valid numeric cases.
pub fn binary_columns(op: BinOp, l: &Column, r: &Column) -> Result<Column> {
    if l.len() != r.len() {
        return Err(CoreError::Expr(format!(
            "binary operand length mismatch: {} vs {}",
            l.len(),
            r.len()
        )));
    }
    // Fast path: f64 ⊕ f64, no nulls, arithmetic.
    if op.is_arithmetic() && l.validity().is_none() && r.validity().is_none() {
        if let (Ok(a), Ok(b)) = (l.f64_data(), r.f64_data()) {
            if op != BinOp::Mod {
                let data: Vec<f64> = match op {
                    BinOp::Add => a.iter().zip(b).map(|(x, y)| x + y).collect(),
                    BinOp::Sub => a.iter().zip(b).map(|(x, y)| x - y).collect(),
                    BinOp::Mul => a.iter().zip(b).map(|(x, y)| x * y).collect(),
                    BinOp::Div => a.iter().zip(b).map(|(x, y)| x / y).collect(),
                    _ => unreachable!(),
                };
                kernel_stats::record(kernel_stats::Path::FastArith, data.len());
                return Ok(Column::Float64(data, None));
            }
        }
    }
    // Fast path: i64 comparison, no nulls.
    if op.is_comparison() && l.validity().is_none() && r.validity().is_none() {
        if let (Ok(a), Ok(b)) = (l.i64_data(), r.i64_data()) {
            let data: Vec<bool> = a
                .iter()
                .zip(b)
                .map(|(x, y)| match op {
                    BinOp::Eq => x == y,
                    BinOp::Ne => x != y,
                    BinOp::Lt => x < y,
                    BinOp::Le => x <= y,
                    BinOp::Gt => x > y,
                    BinOp::Ge => x >= y,
                    _ => unreachable!(),
                })
                .collect();
            kernel_stats::record(kernel_stats::Path::FastCompare, data.len());
            return Ok(Column::Bool(data, None));
        }
    }
    // General path via scalar semantics.
    kernel_stats::record(kernel_stats::Path::General, l.len());
    let out_t = infer_binary(op, Some(l.dtype()), Some(r.dtype()))?;
    let mut out = Column::new_empty(typed_or_int(out_t));
    for i in 0..l.len() {
        let v = binary_scalar(op, &l.get(i), &r.get(i))?;
        out.push(&coerce(&v, typed_or_int(out_t)))
            .map_err(expr_err)?;
    }
    Ok(out)
}

/// Per-operator kernel profiling: process-wide counters of which
/// [`binary_columns`] path ran and how many rows it covered, gated on
/// [`bda_obs::prof`]. When profiling is off, each hook is one relaxed
/// atomic load — cheap enough to leave compiled into release kernels.
pub mod kernel_stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    static FAST_ARITH: AtomicU64 = AtomicU64::new(0);
    static FAST_COMPARE: AtomicU64 = AtomicU64::new(0);
    static GENERAL: AtomicU64 = AtomicU64::new(0);
    static ROWS: AtomicU64 = AtomicU64::new(0);

    /// Which kernel implementation handled a call.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Path {
        /// The all-valid `f64 ⊕ f64` vectorized arithmetic path.
        FastArith,
        /// The all-valid `i64 ⊗ i64` vectorized comparison path.
        FastCompare,
        /// The row-at-a-time scalar-semantics fallback.
        General,
    }

    /// A snapshot of the kernel counters.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct KernelStats {
        /// Calls taking the vectorized arithmetic path.
        pub fast_arith: u64,
        /// Calls taking the vectorized comparison path.
        pub fast_compare: u64,
        /// Calls falling back to scalar semantics.
        pub general: u64,
        /// Total rows processed by binary kernels.
        pub rows: u64,
    }

    #[inline]
    pub(crate) fn record(path: Path, rows: usize) {
        if !bda_obs::prof::enabled() {
            return;
        }
        match path {
            Path::FastArith => FAST_ARITH.fetch_add(1, Ordering::Relaxed),
            Path::FastCompare => FAST_COMPARE.fetch_add(1, Ordering::Relaxed),
            Path::General => GENERAL.fetch_add(1, Ordering::Relaxed),
        };
        ROWS.fetch_add(rows as u64, Ordering::Relaxed);
    }

    /// Read the counters.
    pub fn snapshot() -> KernelStats {
        KernelStats {
            fast_arith: FAST_ARITH.load(Ordering::Relaxed),
            fast_compare: FAST_COMPARE.load(Ordering::Relaxed),
            general: GENERAL.load(Ordering::Relaxed),
            rows: ROWS.load(Ordering::Relaxed),
        }
    }

    /// Zero the counters (between profiled sections).
    pub fn reset() {
        FAST_ARITH.store(0, Ordering::Relaxed);
        FAST_COMPARE.store(0, Ordering::Relaxed);
        GENERAL.store(0, Ordering::Relaxed);
        ROWS.store(0, Ordering::Relaxed);
    }
}

/// Evaluate an expression against a single materialized row.
pub fn eval_row(expr: &Expr, schema: &Schema, row: &bda_storage::Row) -> Result<Value> {
    match expr {
        Expr::Column(name) => {
            let idx = schema
                .index_of(name)
                .map_err(|_| CoreError::Expr(format!("unknown column `{name}`")))?;
            Ok(row.get(idx).clone())
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { op, left, right } => {
            // Short-circuit-free: Kleene logic needs both sides anyway.
            let l = eval_row(left, schema, row)?;
            let r = eval_row(right, schema, row)?;
            binary_scalar(*op, &l, &r)
        }
        Expr::Unary { op, input } => {
            let v = eval_row(input, schema, row)?;
            unary_scalar(*op, &v)
        }
        Expr::Cast { input, to } => Ok(eval_row(input, schema, row)?.cast(*to)),
        Expr::Coalesce(args) => {
            for a in args {
                let v = eval_row(a, schema, row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        Expr::Case {
            branches,
            otherwise,
        } => {
            for (w, t) in branches {
                if eval_row(w, schema, row)? == Value::Bool(true) {
                    return eval_row(t, schema, row);
                }
            }
            match otherwise {
                Some(e) => eval_row(e, schema, row),
                None => Ok(Value::Null),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, null};
    use bda_storage::{chunk::rows_chunk_of, Field, Row};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::value("a", DataType::Int64),
            Field::value("b", DataType::Float64),
            Field::value("s", DataType::Utf8),
            Field::value("p", DataType::Bool),
        ])
        .unwrap()
    }

    fn row(a: Value, b: Value, s: Value, p: Value) -> Row {
        Row(vec![a, b, s, p])
    }

    #[test]
    fn arithmetic_promotion() {
        let s = schema();
        let r = row(Value::Int(3), Value::Float(0.5), Value::Null, Value::Null);
        let v = eval_row(&col("a").add(col("b")), &s, &r).unwrap();
        assert_eq!(v, Value::Float(3.5));
        let v = eval_row(&col("a").mul(col("a")), &s, &r).unwrap();
        assert_eq!(v, Value::Int(9));
    }

    #[test]
    fn null_propagation_and_kleene() {
        let s = schema();
        let r = row(
            Value::Null,
            Value::Float(1.0),
            Value::Null,
            Value::Bool(true),
        );
        assert_eq!(
            eval_row(&col("a").add(lit(1i64)), &s, &r).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_row(&col("a").eq(lit(1i64)), &s, &r).unwrap(),
            Value::Null
        );
        // true OR null = true; false AND null = false.
        assert_eq!(
            eval_row(&col("p").or(null()), &s, &r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_row(&col("p").not().and(null()), &s, &r).unwrap(),
            Value::Bool(false)
        );
        // true AND null = null.
        assert_eq!(
            eval_row(&col("p").and(null()), &s, &r).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn division_and_overflow_yield_null() {
        assert_eq!(
            binary_scalar(BinOp::Div, &Value::Int(1), &Value::Int(0)).unwrap(),
            Value::Null
        );
        assert_eq!(
            binary_scalar(BinOp::Add, &Value::Int(i64::MAX), &Value::Int(1)).unwrap(),
            Value::Null
        );
        assert_eq!(
            binary_scalar(BinOp::Div, &Value::Float(1.0), &Value::Float(0.0)).unwrap(),
            Value::Float(f64::INFINITY)
        );
        assert_eq!(
            binary_scalar(BinOp::Mod, &Value::Int(7), &Value::Int(3)).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn string_comparison() {
        let v = binary_scalar(BinOp::Lt, &Value::from("abc"), &Value::from("abd")).unwrap();
        assert_eq!(v, Value::Bool(true));
        assert!(binary_scalar(BinOp::Lt, &Value::from("a"), &Value::Int(1)).is_err());
    }

    #[test]
    fn unary_functions() {
        assert_eq!(
            unary_scalar(UnOp::Abs, &Value::Int(-3)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            unary_scalar(UnOp::Sqrt, &Value::Float(9.0)).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            unary_scalar(UnOp::Sqrt, &Value::Float(-1.0)).unwrap(),
            Value::Null
        );
        assert_eq!(
            unary_scalar(UnOp::Floor, &Value::Float(2.7)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            unary_scalar(UnOp::Ln, &Value::Float(0.0)).unwrap(),
            Value::Null
        );
        assert_eq!(
            unary_scalar(UnOp::IsNull, &Value::Null).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(unary_scalar(UnOp::Not, &Value::Null).unwrap(), Value::Null);
    }

    #[test]
    fn inference_rules() {
        let s = schema();
        assert_eq!(
            infer_expr(&col("a").add(col("b")), &s).unwrap(),
            Some(DataType::Float64)
        );
        assert_eq!(
            infer_expr(&col("a").add(lit(1i64)), &s).unwrap(),
            Some(DataType::Int64)
        );
        assert_eq!(
            infer_expr(&col("a").gt(col("b")), &s).unwrap(),
            Some(DataType::Bool)
        );
        assert_eq!(infer_expr(&null(), &s).unwrap(), None);
        assert_eq!(
            infer_expr(&Expr::Coalesce(vec![null(), col("a")]), &s).unwrap(),
            Some(DataType::Int64)
        );
        assert!(infer_expr(&col("s").add(lit(1i64)), &s).is_err());
        assert!(infer_expr(&col("a").and(col("p")), &s).is_err());
        assert!(infer_expr(&col("missing"), &s).is_err());
    }

    #[test]
    fn case_expression() {
        let s = schema();
        let e = Expr::Case {
            branches: vec![
                (col("a").gt(lit(10i64)), lit("big")),
                (col("a").gt(lit(0i64)), lit("small")),
            ],
            otherwise: Some(Box::new(lit("neg"))),
        };
        let r = |a: i64| row(Value::Int(a), Value::Null, Value::Null, Value::Null);
        assert_eq!(eval_row(&e, &s, &r(11)).unwrap(), Value::from("big"));
        assert_eq!(eval_row(&e, &s, &r(5)).unwrap(), Value::from("small"));
        assert_eq!(eval_row(&e, &s, &r(-1)).unwrap(), Value::from("neg"));
        assert_eq!(infer_expr(&e, &s).unwrap(), Some(DataType::Utf8));
    }

    #[test]
    fn chunk_eval_matches_row_eval() {
        let s = schema();
        let chunk = rows_chunk_of(
            &s,
            &[
                vec![
                    Value::Int(1),
                    Value::Float(0.5),
                    Value::from("x"),
                    Value::Bool(true),
                ],
                vec![
                    Value::Null,
                    Value::Float(2.0),
                    Value::Null,
                    Value::Bool(false),
                ],
                vec![Value::Int(-3), Value::Null, Value::from("y"), Value::Null],
            ],
        )
        .unwrap();
        let exprs = [
            col("a").add(col("b")),
            col("a").gt(lit(0i64)),
            col("p").or(col("a").is_null()),
            col("a").cast(DataType::Float64).mul(lit(2.0)),
            Expr::Coalesce(vec![col("a"), lit(0i64)]),
        ];
        for e in &exprs {
            let c = eval_chunk(e, &s, &chunk).unwrap();
            for (i, r) in chunk.rows().enumerate() {
                let expect = eval_row(e, &s, &r).unwrap();
                let got = c.get(i);
                // coerce for typed-column storage (int widened to float).
                let expect = match (expect.clone(), c.dtype()) {
                    (Value::Int(x), DataType::Float64) => Value::Float(x as f64),
                    _ => expect,
                };
                assert_eq!(got, expect, "expr {e} row {i}");
            }
        }
    }

    #[test]
    fn fast_path_float_kernel() {
        let l = Column::from(vec![1.0f64, 2.0, 3.0]);
        let r = Column::from(vec![10.0f64, 20.0, 30.0]);
        let out = binary_columns(BinOp::Mul, &l, &r).unwrap();
        assert_eq!(out.f64_data().unwrap(), &[10.0, 40.0, 90.0]);
    }

    #[test]
    fn fast_path_int_comparison() {
        let l = Column::from(vec![1i64, 5, 3]);
        let r = Column::from(vec![2i64, 2, 3]);
        let out = binary_columns(BinOp::Le, &l, &r).unwrap();
        assert_eq!(out.bool_data().unwrap(), &[true, false, true]);
    }

    #[test]
    fn math_functions_columnar() {
        let s = schema();
        let chunk = rows_chunk_of(
            &s,
            &[
                vec![Value::Int(4), Value::Float(1.0), Value::Null, Value::Null],
                vec![Value::Int(-2), Value::Float(0.0), Value::Null, Value::Null],
            ],
        )
        .unwrap();
        let sqrt = eval_chunk(&col("a").unary(UnOp::Sqrt), &s, &chunk).unwrap();
        assert_eq!(sqrt.get(0), Value::Float(2.0));
        let exp = eval_chunk(&col("b").unary(UnOp::Exp), &s, &chunk).unwrap();
        assert!((exp.get(0).as_float().unwrap() - std::f64::consts::E).abs() < 1e-12);
        assert_eq!(exp.get(1), Value::Float(1.0));
        let ln = eval_chunk(&col("b").unary(UnOp::Ln), &s, &chunk).unwrap();
        assert_eq!(ln.get(0), Value::Float(0.0));
        assert_eq!(ln.get(1), Value::Null, "ln(0) is null");
        let floor = eval_chunk(&col("b").mul(lit(2.5)).unary(UnOp::Floor), &s, &chunk).unwrap();
        assert_eq!(floor.get(0), Value::Int(2));
        assert_eq!(floor.dtype(), DataType::Int64);
    }

    #[test]
    fn float_modulo_and_negation() {
        assert_eq!(
            binary_scalar(BinOp::Mod, &Value::Float(7.5), &Value::Float(2.0)).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            binary_scalar(BinOp::Mod, &Value::Float(7.5), &Value::Float(0.0)).unwrap(),
            Value::Null
        );
        assert_eq!(
            unary_scalar(UnOp::Neg, &Value::Int(i64::MIN)).unwrap(),
            Value::Null,
            "negating i64::MIN overflows to null"
        );
    }

    #[test]
    fn cast_bool_and_string_columnar() {
        let s = schema();
        let chunk = rows_chunk_of(
            &s,
            &[vec![
                Value::Int(1),
                Value::Null,
                Value::from("2.5"),
                Value::Bool(true),
            ]],
        )
        .unwrap();
        let parsed = eval_chunk(&col("s").cast(DataType::Float64), &s, &chunk).unwrap();
        assert_eq!(parsed.get(0), Value::Float(2.5));
        let as_str = eval_chunk(&col("p").cast(DataType::Utf8), &s, &chunk).unwrap();
        assert_eq!(as_str.get(0), Value::from("true"));
    }

    #[test]
    fn binary_columns_length_check() {
        let l = Column::from(vec![1i64]);
        let r = Column::from(vec![1i64, 2]);
        assert!(binary_columns(BinOp::Add, &l, &r).is_err());
    }
}
