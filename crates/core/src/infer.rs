//! Schema inference: the static semantics of the algebra.
//!
//! Every operator's output schema — including how dimension tags flow
//! through it — is defined here. This is where the fused tabular/array
//! model earns its keep: projection, aggregation and join are all
//! *dimension-aware*.

use bda_storage::{DataType, Field, Role, Schema};

use crate::agg::AggExpr;
use crate::error::CoreError;
use crate::eval::infer_expr;
use crate::expr::Expr;
use crate::plan::{GraphOp, JoinType, Plan};

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Schema of an edge-list dataset: `(src: i64, dst: i64)`.
pub fn edge_schema() -> Schema {
    Schema::new(vec![
        Field::value("src", DataType::Int64),
        Field::value("dst", DataType::Int64),
    ])
    .expect("static schema")
}

/// Schema of a PageRank result: `(vertex: i64, rank: f64)`.
pub fn pagerank_schema() -> Schema {
    Schema::new(vec![
        Field::value("vertex", DataType::Int64),
        Field::value("rank", DataType::Float64),
    ])
    .expect("static schema")
}

/// Schema of a connected-components result: `(vertex: i64, component: i64)`.
pub fn components_schema() -> Schema {
    Schema::new(vec![
        Field::value("vertex", DataType::Int64),
        Field::value("component", DataType::Int64),
    ])
    .expect("static schema")
}

/// Schema of a triangle-count result: `(triangles: i64)`.
pub fn triangles_schema() -> Schema {
    Schema::new(vec![Field::value("triangles", DataType::Int64)]).expect("static schema")
}

/// Schema of a BFS-levels result: `(vertex: i64, level: i64)`.
pub fn bfs_schema() -> Schema {
    Schema::new(vec![
        Field::value("vertex", DataType::Int64),
        Field::value("level", DataType::Int64),
    ])
    .expect("static schema")
}

/// Schema of a degree result: `(vertex: i64, degree: i64)`.
pub fn degrees_schema() -> Schema {
    Schema::new(vec![
        Field::value("vertex", DataType::Int64),
        Field::value("degree", DataType::Int64),
    ])
    .expect("static schema")
}

/// Infer the output schema of a plan, validating it along the way.
pub fn infer_schema(plan: &Plan) -> Result<Schema> {
    match plan {
        Plan::Scan { schema, .. } | Plan::IterState { schema } => Ok(schema.clone()),
        Plan::Values { schema, rows } => {
            for (i, r) in rows.iter().enumerate() {
                if r.len() != schema.len() {
                    return Err(CoreError::Plan(format!(
                        "values row {i} has {} fields, schema has {}",
                        r.len(),
                        schema.len()
                    )));
                }
                for (j, v) in r.0.iter().enumerate() {
                    if let Some(dt) = v.dtype() {
                        if dt != schema.field_at(j).dtype {
                            return Err(CoreError::Plan(format!(
                                "values row {i} field {j}: expected {}, got {dt}",
                                schema.field_at(j).dtype
                            )));
                        }
                    }
                }
            }
            Ok(schema.clone())
        }
        Plan::Range { name, lo, hi } => {
            if lo >= hi {
                return Err(CoreError::Plan(format!("empty range [{lo}, {hi})")));
            }
            Schema::new(vec![Field::dimension_bounded(name.clone(), *lo, *hi)]).map_err(Into::into)
        }
        Plan::Select { input, predicate } => {
            let schema = infer_schema(input)?;
            let t = infer_expr(predicate, &schema)?;
            if !matches!(t, Some(DataType::Bool) | None) {
                return Err(CoreError::Plan(format!(
                    "select predicate must be bool, got {t:?}"
                )));
            }
            Ok(schema)
        }
        Plan::Project { input, exprs } => {
            let input_schema = infer_schema(input)?;
            let mut fields = Vec::with_capacity(exprs.len());
            for (name, e) in exprs {
                // A bare dimension reference keeps its dimension role.
                if let Expr::Column(c) = e {
                    let f = input_schema
                        .field(c)
                        .map_err(|_| CoreError::Plan(format!("unknown column `{c}`")))?;
                    if f.is_dimension() {
                        fields.push(Field {
                            name: name.clone(),
                            dtype: f.dtype,
                            role: f.role,
                        });
                        continue;
                    }
                }
                let t = infer_expr(e, &input_schema)?.ok_or_else(|| {
                    CoreError::Plan(format!(
                        "projection `{name}` is an untyped null; add a cast"
                    ))
                })?;
                fields.push(Field::value(name.clone(), t));
            }
            Schema::new(fields).map_err(Into::into)
        }
        Plan::Join {
            left,
            right,
            on,
            join_type,
            suffix,
        } => {
            let ls = infer_schema(left)?;
            let rs = infer_schema(right)?;
            for (lc, rc) in on {
                let lf = ls
                    .field(lc)
                    .map_err(|_| CoreError::Plan(format!("join: unknown left column `{lc}`")))?;
                let rf = rs
                    .field(rc)
                    .map_err(|_| CoreError::Plan(format!("join: unknown right column `{rc}`")))?;
                let compatible =
                    lf.dtype == rf.dtype || (lf.dtype.is_numeric() && rf.dtype.is_numeric());
                if !compatible {
                    return Err(CoreError::Plan(format!(
                        "join key type mismatch: {lc}: {} vs {rc}: {}",
                        lf.dtype, rf.dtype
                    )));
                }
            }
            match join_type {
                JoinType::Semi | JoinType::Anti => Ok(ls),
                JoinType::Inner => ls.join(&rs, suffix).map_err(Into::into),
                JoinType::Left => {
                    // Right-side dimensions may be null-padded, which breaks
                    // the coordinate invariant: demote them to values.
                    let rs_values = rs.untagged();
                    ls.join(&rs_values, suffix).map_err(Into::into)
                }
            }
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let input_schema = infer_schema(input)?;
            let mut fields = Vec::new();
            for g in group_by {
                let f = input_schema
                    .field(g)
                    .map_err(|_| CoreError::Plan(format!("group by unknown column `{g}`")))?;
                fields.push(f.clone());
            }
            for a in aggs {
                fields.push(agg_field(a, &input_schema)?);
            }
            Schema::new(fields).map_err(Into::into)
        }
        Plan::Union { left, right } => {
            let ls = infer_schema(left)?;
            let rs = infer_schema(right)?;
            if ls != rs {
                return Err(CoreError::Plan(format!(
                    "union schema mismatch: {ls} vs {rs}"
                )));
            }
            Ok(ls)
        }
        Plan::Distinct { input } => infer_schema(input),
        Plan::Sort { input, keys } => {
            let schema = infer_schema(input)?;
            for (k, _) in keys {
                schema
                    .field(k)
                    .map_err(|_| CoreError::Plan(format!("sort by unknown column `{k}`")))?;
            }
            Ok(schema)
        }
        Plan::Limit { input, .. } => infer_schema(input),
        Plan::Rename { input, mapping } => {
            let schema = infer_schema(input)?;
            let mut fields = schema.fields().to_vec();
            for (old, new) in mapping {
                let idx = schema
                    .index_of(old)
                    .map_err(|_| CoreError::Plan(format!("rename unknown column `{old}`")))?;
                fields[idx].name = new.clone();
            }
            Schema::new(fields).map_err(Into::into)
        }
        Plan::Dice { input, ranges } => {
            let schema = infer_schema(input)?;
            let mut fields = schema.fields().to_vec();
            for (dim, lo, hi) in ranges {
                if lo >= hi {
                    return Err(CoreError::Plan(format!("dice: empty range on `{dim}`")));
                }
                let idx = schema
                    .index_of(dim)
                    .map_err(|_| CoreError::Plan(format!("dice unknown dimension `{dim}`")))?;
                let f = &mut fields[idx];
                match f.role {
                    Role::Dimension {
                        lo: old_lo,
                        hi: old_hi,
                    } => {
                        let new_lo = old_lo.map_or(*lo, |l| l.max(*lo));
                        let new_hi = old_hi.map_or(*hi, |h| h.min(*hi));
                        if new_lo >= new_hi {
                            return Err(CoreError::Plan(format!(
                                "dice on `{dim}` yields empty extent [{new_lo}, {new_hi})"
                            )));
                        }
                        f.role = Role::dim_bounded(new_lo, new_hi);
                    }
                    Role::Value => {
                        return Err(CoreError::Plan(format!(
                            "dice target `{dim}` is not a dimension"
                        )))
                    }
                }
            }
            Schema::new(fields).map_err(Into::into)
        }
        Plan::SliceAt { input, dim, .. } => {
            let schema = infer_schema(input)?;
            let idx = schema
                .index_of(dim)
                .map_err(|_| CoreError::Plan(format!("slice unknown dimension `{dim}`")))?;
            if !schema.field_at(idx).is_dimension() {
                return Err(CoreError::Plan(format!(
                    "slice target `{dim}` is not a dimension"
                )));
            }
            let fields = schema
                .fields()
                .iter()
                .filter(|f| f.name != *dim)
                .cloned()
                .collect();
            Schema::new(fields).map_err(Into::into)
        }
        Plan::Permute { input, order } => {
            let schema = infer_schema(input)?;
            let dims: Vec<String> = schema.dimensions().iter().map(|f| f.name.clone()).collect();
            let mut sorted_order = order.clone();
            sorted_order.sort();
            let mut sorted_dims = dims.clone();
            sorted_dims.sort();
            if sorted_order != sorted_dims {
                return Err(CoreError::Plan(format!(
                    "permute order {order:?} is not a permutation of dimensions {dims:?}"
                )));
            }
            let mut fields: Vec<Field> = Vec::with_capacity(schema.len());
            for d in order {
                fields.push(schema.field(d)?.clone());
            }
            for f in schema.fields() {
                if !f.is_dimension() {
                    fields.push(f.clone());
                }
            }
            Schema::new(fields).map_err(Into::into)
        }
        Plan::Window { input, radii, aggs } => {
            let schema = infer_schema(input)?;
            let dims: Vec<String> = schema.dimensions().iter().map(|f| f.name.clone()).collect();
            if dims.is_empty() {
                return Err(CoreError::Plan(
                    "window over a dataset with no dimensions".into(),
                ));
            }
            let mut listed: Vec<&String> = radii.iter().map(|(d, _)| d).collect();
            listed.sort();
            listed.dedup();
            let mut want: Vec<&String> = dims.iter().collect();
            want.sort();
            if listed != want {
                return Err(CoreError::Plan(format!(
                    "window must list each dimension exactly once; got {radii:?} for dims {dims:?}"
                )));
            }
            for (d, r) in radii {
                if *r < 0 {
                    return Err(CoreError::Plan(format!(
                        "window radius on `{d}` is negative"
                    )));
                }
            }
            let mut fields: Vec<Field> = schema
                .fields()
                .iter()
                .filter(|f| f.is_dimension())
                .cloned()
                .collect();
            for a in aggs {
                fields.push(agg_field(a, &schema)?);
            }
            Schema::new(fields).map_err(Into::into)
        }
        Plan::Fill { input, .. } => {
            let schema = infer_schema(input)?;
            if schema.ndims() == 0 {
                return Err(CoreError::Plan("fill requires dimensions".into()));
            }
            if !schema.is_bounded() {
                return Err(CoreError::Plan(
                    "fill requires all dimensions bounded".into(),
                ));
            }
            Ok(schema)
        }
        Plan::TagDims { input, dims } => {
            let schema = infer_schema(input)?;
            for (d, _) in dims {
                let f = schema
                    .field(d)
                    .map_err(|_| CoreError::Plan(format!("tag_dims unknown column `{d}`")))?;
                if f.is_dimension() {
                    return Err(CoreError::Plan(format!("`{d}` is already a dimension")));
                }
                if f.dtype != DataType::Int64 {
                    return Err(CoreError::Plan(format!(
                        "cannot tag `{d}` as dimension: type is {}",
                        f.dtype
                    )));
                }
            }
            let spec: Vec<(&str, Option<(i64, i64)>)> =
                dims.iter().map(|(d, e)| (d.as_str(), *e)).collect();
            // Existing dimensions keep their tags.
            let mut fields = Vec::with_capacity(schema.len());
            for f in schema.fields() {
                if let Some((_, extent)) = spec.iter().find(|(n, _)| *n == f.name) {
                    let role = match extent {
                        Some((lo, hi)) => Role::dim_bounded(*lo, *hi),
                        None => Role::dim(),
                    };
                    fields.push(Field {
                        name: f.name.clone(),
                        dtype: DataType::Int64,
                        role,
                    });
                } else {
                    fields.push(f.clone());
                }
            }
            Schema::new(fields).map_err(Into::into)
        }
        Plan::UntagDims { input } => Ok(infer_schema(input)?.untagged()),
        Plan::MatMul { left, right } => {
            let (l_dims, _) = matrix_shape(left, "matmul left")?;
            let (r_dims, _) = matrix_shape(right, "matmul right")?;
            let (li, lk) = (&l_dims[0], &l_dims[1]);
            let (rk, rj) = (&r_dims[0], &r_dims[1]);
            match (lk.extent(), rk.extent()) {
                (Some(a), Some(b)) if a != b => {
                    return Err(CoreError::Plan(format!(
                        "matmul inner extents differ: {a:?} vs {b:?}"
                    )))
                }
                _ => {}
            }
            let mut out_j = rj.clone();
            if out_j.name == li.name {
                out_j.name = format!("{}_r", out_j.name);
            }
            Schema::new(vec![
                li.clone(),
                out_j,
                Field::value("v", DataType::Float64),
            ])
            .map_err(Into::into)
        }
        Plan::ElemWise { left, right, op } => {
            if !op.is_arithmetic() && !op.is_comparison() {
                return Err(CoreError::Plan(format!(
                    "elemwise operator `{}` must be arithmetic or comparison",
                    op.symbol()
                )));
            }
            let ls = infer_schema(left)?;
            let rs = infer_schema(right)?;
            let lv = single_numeric_value(&ls, "elemwise left")?;
            let rv = single_numeric_value(&rs, "elemwise right")?;
            let l_dims: Vec<&Field> = ls.dimensions();
            let r_dims: Vec<&Field> = rs.dimensions();
            if l_dims.len() != r_dims.len()
                || l_dims.iter().zip(&r_dims).any(|(a, b)| a.name != b.name)
            {
                return Err(CoreError::Plan(format!(
                    "elemwise dimension mismatch: {:?} vs {:?}",
                    l_dims.iter().map(|f| &f.name).collect::<Vec<_>>(),
                    r_dims.iter().map(|f| &f.name).collect::<Vec<_>>()
                )));
            }
            let out_t = if op.is_comparison() {
                DataType::Bool
            } else {
                lv.numeric_join(rv).expect("both numeric")
            };
            let mut fields: Vec<Field> = l_dims.into_iter().cloned().collect();
            fields.push(Field::value("v", out_t));
            Schema::new(fields).map_err(Into::into)
        }
        Plan::Exchange { input, parts, key } => {
            if *parts == 0 {
                return Err(CoreError::Plan(
                    "exchange needs at least 1 partition".into(),
                ));
            }
            let schema = infer_schema(input)?;
            if let Some(k) = key {
                schema
                    .field(k)
                    .map_err(|_| CoreError::Plan(format!("exchange unknown key column `{k}`")))?;
            }
            Ok(schema)
        }
        Plan::Merge { input } => infer_schema(input),
        Plan::Graph(g) => {
            let es = infer_schema(g.edges())?;
            for c in ["src", "dst"] {
                let f = es
                    .field(c)
                    .map_err(|_| CoreError::Plan(format!("graph op input needs column `{c}`")))?;
                if f.dtype != DataType::Int64 {
                    return Err(CoreError::Plan(format!(
                        "graph op column `{c}` must be i64, got {}",
                        f.dtype
                    )));
                }
            }
            match g {
                GraphOp::PageRank {
                    damping, epsilon, ..
                } => {
                    if !(0.0..1.0).contains(damping) {
                        return Err(CoreError::Plan(format!(
                            "pagerank damping must be in [0, 1), got {damping}"
                        )));
                    }
                    if *epsilon <= 0.0 {
                        return Err(CoreError::Plan("pagerank epsilon must be positive".into()));
                    }
                    Ok(pagerank_schema())
                }
                GraphOp::ConnectedComponents { .. } => Ok(components_schema()),
                GraphOp::TriangleCount { .. } => Ok(triangles_schema()),
                GraphOp::Degrees { .. } => Ok(degrees_schema()),
                GraphOp::BfsLevels { .. } => Ok(bfs_schema()),
            }
        }
        Plan::Iterate {
            init,
            body,
            max_iters,
            epsilon,
        } => {
            if *max_iters == 0 {
                return Err(CoreError::Plan("iterate max_iters must be positive".into()));
            }
            if let Some(e) = epsilon {
                if *e <= 0.0 {
                    return Err(CoreError::Plan("iterate epsilon must be positive".into()));
                }
            }
            let init_schema = infer_schema(init)?;
            check_iter_state(body, &init_schema)?;
            let body_schema = infer_schema(body)?;
            if body_schema != init_schema {
                return Err(CoreError::Plan(format!(
                    "iterate body schema {body_schema} differs from init schema {init_schema}"
                )));
            }
            Ok(init_schema)
        }
    }
}

fn agg_field(a: &AggExpr, input: &Schema) -> Result<Field> {
    let arg_t = match &a.arg {
        Some(e) => infer_expr(e, input)?,
        None => None,
    };
    // count(*) has no arg; count(expr) requires one.
    if a.arg.is_none() && a.func != crate::agg::AggFunc::Count {
        return Err(CoreError::Plan(format!(
            "{} requires an argument",
            a.func.name()
        )));
    }
    let out_t = a.func.output_type(arg_t)?;
    Ok(Field::value(a.name.clone(), out_t))
}

/// Validate that a plan is a 2-D matrix: two dimensions, one numeric value
/// attribute. Returns (the two dimension fields, the value field).
fn matrix_shape(plan: &Plan, what: &str) -> Result<([Field; 2], Field)> {
    let schema = infer_schema(plan)?;
    let dims = schema.dimensions();
    if dims.len() != 2 {
        return Err(CoreError::Plan(format!(
            "{what} must be 2-dimensional, got {} dims",
            dims.len()
        )));
    }
    let vals = schema.values();
    if vals.len() != 1 || !vals[0].dtype.is_numeric() {
        return Err(CoreError::Plan(format!(
            "{what} must have exactly one numeric value attribute"
        )));
    }
    Ok(([dims[0].clone(), dims[1].clone()], vals[0].clone()))
}

fn single_numeric_value(schema: &Schema, what: &str) -> Result<DataType> {
    let vals = schema.values();
    if vals.len() != 1 || !vals[0].dtype.is_numeric() {
        return Err(CoreError::Plan(format!(
            "{what} must have exactly one numeric value attribute"
        )));
    }
    Ok(vals[0].dtype)
}

/// Every `IterState` leaf in `body` must carry exactly `expected`.
fn check_iter_state(body: &Plan, expected: &Schema) -> Result<()> {
    if let Plan::IterState { schema } = body {
        if schema != expected {
            return Err(CoreError::Plan(format!(
                "iter_state schema {schema} differs from loop state {expected}"
            )));
        }
    }
    for c in body.children() {
        check_iter_state(c, expected)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggExpr, AggFunc};
    use crate::expr::{col, lit};
    use bda_storage::Row;
    use bda_storage::Value;

    fn matrix(name: &str, n: i64, m: i64) -> Plan {
        Plan::scan(
            name,
            Schema::new(vec![
                Field::dimension_bounded("i", 0, n),
                Field::dimension_bounded("j", 0, m),
                Field::value("v", DataType::Float64),
            ])
            .unwrap(),
        )
    }

    fn rel() -> Plan {
        Plan::scan(
            "t",
            Schema::new(vec![
                Field::value("k", DataType::Int64),
                Field::value("v", DataType::Float64),
                Field::value("tag", DataType::Utf8),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn project_preserves_dimension_tags() {
        let p = matrix("m", 3, 4).project(vec![("row", col("i")), ("x", col("v"))]);
        let s = infer_schema(&p).unwrap();
        assert_eq!(s.ndims(), 1);
        assert_eq!(s.field("row").unwrap().extent(), Some((0, 3)));
        assert!(!s.field("x").unwrap().is_dimension());
    }

    #[test]
    fn project_computed_expr_is_value() {
        let p = matrix("m", 3, 4).project(vec![("i2", col("i").add(lit(0i64)))]);
        let s = infer_schema(&p).unwrap();
        assert!(!s.field("i2").unwrap().is_dimension());
    }

    #[test]
    fn select_requires_bool() {
        assert!(infer_schema(&rel().select(col("k").gt(lit(0i64)))).is_ok());
        assert!(infer_schema(&rel().select(col("k"))).is_err());
    }

    #[test]
    fn aggregate_group_by_dims_is_reduction() {
        let p = matrix("m", 3, 4).aggregate(
            vec!["i"],
            vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
        );
        let s = infer_schema(&p).unwrap();
        assert_eq!(s.ndims(), 1, "grouping by dim i keeps it a dimension");
        assert_eq!(s.field("i").unwrap().extent(), Some((0, 3)));
        assert_eq!(s.field("total").unwrap().dtype, DataType::Float64);
    }

    #[test]
    fn join_schemas() {
        let j = rel().join(rel(), vec![("k", "k")]);
        let s = infer_schema(&j).unwrap();
        assert_eq!(s.names(), vec!["k", "v", "tag", "k_r", "v_r", "tag_r"]);
        let semi = rel().join_as(rel(), vec![("k", "k")], JoinType::Semi);
        assert_eq!(infer_schema(&semi).unwrap().names(), vec!["k", "v", "tag"]);
    }

    #[test]
    fn left_join_demotes_right_dims() {
        let j = rel().join_as(
            matrix("m", 2, 2).rename(vec![("v", "mv")]),
            vec![("k", "i")],
            JoinType::Left,
        );
        let s = infer_schema(&j).unwrap();
        assert_eq!(s.ndims(), 0, "right dims must be demoted under left join");
    }

    #[test]
    fn join_key_type_check() {
        let j = rel().join(rel(), vec![("k", "tag")]);
        assert!(infer_schema(&j).is_err());
    }

    #[test]
    fn dice_tightens_extents() {
        let p = Plan::Dice {
            input: matrix("m", 10, 10).boxed(),
            ranges: vec![("i".into(), 2, 5)],
        };
        let s = infer_schema(&p).unwrap();
        assert_eq!(s.field("i").unwrap().extent(), Some((2, 5)));
        assert_eq!(s.field("j").unwrap().extent(), Some((0, 10)));
        let bad = Plan::Dice {
            input: matrix("m", 10, 10).boxed(),
            ranges: vec![("i".into(), 20, 30)],
        };
        assert!(infer_schema(&bad).is_err());
    }

    #[test]
    fn slice_drops_dimension() {
        let p = Plan::SliceAt {
            input: matrix("m", 10, 10).boxed(),
            dim: "i".into(),
            index: 3,
        };
        let s = infer_schema(&p).unwrap();
        assert_eq!(s.ndims(), 1);
        assert!(s.field("i").is_err());
    }

    #[test]
    fn permute_reorders() {
        let p = Plan::Permute {
            input: matrix("m", 2, 3).boxed(),
            order: vec!["j".into(), "i".into()],
        };
        let s = infer_schema(&p).unwrap();
        assert_eq!(s.names(), vec!["j", "i", "v"]);
        let bad = Plan::Permute {
            input: matrix("m", 2, 3).boxed(),
            order: vec!["j".into()],
        };
        assert!(infer_schema(&bad).is_err());
    }

    #[test]
    fn window_schema() {
        let p = Plan::Window {
            input: matrix("m", 5, 5).boxed(),
            radii: vec![("i".into(), 1), ("j".into(), 1)],
            aggs: vec![AggExpr::new(AggFunc::Avg, col("v"), "smooth")],
        };
        let s = infer_schema(&p).unwrap();
        assert_eq!(s.ndims(), 2);
        assert_eq!(s.field("smooth").unwrap().dtype, DataType::Float64);
        let missing_dim = Plan::Window {
            input: matrix("m", 5, 5).boxed(),
            radii: vec![("i".into(), 1)],
            aggs: vec![],
        };
        assert!(infer_schema(&missing_dim).is_err());
    }

    #[test]
    fn matmul_schema_and_shape_checks() {
        let p = matrix("a", 2, 3).matmul(matrix("b", 3, 4).rename(vec![("i", "j0"), ("j", "jj")]));
        let s = infer_schema(&p).unwrap();
        assert_eq!(s.ndims(), 2);
        assert_eq!(s.field("i").unwrap().extent(), Some((0, 2)));
        assert_eq!(s.field("jj").unwrap().extent(), Some((0, 4)));
        // Inner extent mismatch is an error.
        let bad = matrix("a", 2, 3).matmul(matrix("b", 9, 4));
        assert!(infer_schema(&bad).is_err());
        // Name collision on output dims gets suffixed.
        let square = matrix("a", 3, 3);
        let collide = square
            .clone()
            .matmul(square.rename(vec![("i", "j"), ("j", "i")]));
        let s = infer_schema(&collide).unwrap();
        assert_eq!(s.names(), vec!["i", "i_r", "v"]);
    }

    #[test]
    fn elemwise_requires_matching_dims() {
        let ok = matrix("a", 2, 2).elemwise(crate::expr::BinOp::Add, matrix("b", 2, 2));
        assert_eq!(infer_schema(&ok).unwrap().ndims(), 2);
        let bad = matrix("a", 2, 2).elemwise(
            crate::expr::BinOp::Add,
            matrix("b", 2, 2).rename(vec![("i", "x")]),
        );
        assert!(infer_schema(&bad).is_err());
    }

    #[test]
    fn graph_ops_validate_edges() {
        let edges = Plan::scan("e", edge_schema());
        let pr = Plan::Graph(GraphOp::PageRank {
            edges: edges.clone().boxed(),
            damping: 0.85,
            max_iters: 50,
            epsilon: 1e-6,
        });
        assert_eq!(infer_schema(&pr).unwrap(), pagerank_schema());
        let bad_damping = Plan::Graph(GraphOp::PageRank {
            edges: edges.clone().boxed(),
            damping: 1.5,
            max_iters: 50,
            epsilon: 1e-6,
        });
        assert!(infer_schema(&bad_damping).is_err());
        let not_edges = Plan::Graph(GraphOp::Degrees {
            edges: rel().boxed(),
        });
        assert!(infer_schema(&not_edges).is_err());
    }

    #[test]
    fn iterate_checks_schemas() {
        let init = Plan::Values {
            schema: pagerank_schema(),
            rows: vec![Row(vec![Value::Int(0), Value::Float(1.0)])],
        };
        let good = Plan::Iterate {
            init: init.clone().boxed(),
            body: Plan::IterState {
                schema: pagerank_schema(),
            }
            .boxed(),
            max_iters: 10,
            epsilon: Some(1e-6),
        };
        assert_eq!(infer_schema(&good).unwrap(), pagerank_schema());
        let bad_body = Plan::Iterate {
            init: init.clone().boxed(),
            body: Plan::IterState {
                schema: edge_schema(),
            }
            .boxed(),
            max_iters: 10,
            epsilon: None,
        };
        assert!(infer_schema(&bad_body).is_err());
        let bad_iters = Plan::Iterate {
            init: init.boxed(),
            body: Plan::IterState {
                schema: pagerank_schema(),
            }
            .boxed(),
            max_iters: 0,
            epsilon: None,
        };
        assert!(infer_schema(&bad_iters).is_err());
    }

    #[test]
    fn values_rows_validated() {
        let bad = Plan::Values {
            schema: edge_schema(),
            rows: vec![Row(vec![Value::Int(0), Value::from("oops")])],
        };
        assert!(infer_schema(&bad).is_err());
    }

    #[test]
    fn tag_untag_roundtrip() {
        let p = Plan::UntagDims {
            input: matrix("m", 2, 2).boxed(),
        };
        let s = infer_schema(&p).unwrap();
        assert!(s.is_relation());
        let back = Plan::TagDims {
            input: p.boxed(),
            dims: vec![("i".into(), Some((0, 2))), ("j".into(), Some((0, 2)))],
        };
        assert_eq!(infer_schema(&back).unwrap().ndims(), 2);
    }
}
