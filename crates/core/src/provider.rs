//! The provider model: what it means to be a back-end server.
//!
//! A [`Provider`] is the paper's "LINQ Provider" analogue: it advertises a
//! catalog of datasets and a [`CapabilitySet`] of algebra operators it can
//! execute natively, accepts whole plan trees, and returns materialized
//! collections. The federation layer composes providers; nothing in this
//! trait assumes a particular engine technology.

use std::collections::BTreeSet;
use std::fmt;

use bda_storage::{DataSet, IndexKind, IndexSpec, Schema, TableStats};

use crate::error::CoreError;
use crate::plan::{OpKind, Plan};

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// The set of operator kinds a provider executes natively.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CapabilitySet {
    ops: BTreeSet<OpKind>,
}

impl CapabilitySet {
    /// The empty capability set.
    pub fn new() -> CapabilitySet {
        CapabilitySet::default()
    }

    /// Build from a list of kinds.
    pub fn from_ops(ops: &[OpKind]) -> CapabilitySet {
        CapabilitySet {
            ops: ops.iter().copied().collect(),
        }
    }

    /// Every base (non-intent) operator — the common relational/array core.
    pub fn all_base() -> CapabilitySet {
        CapabilitySet {
            ops: OpKind::ALL
                .iter()
                .copied()
                .filter(|k| k.is_base())
                .collect(),
        }
    }

    /// Every operator, intent included.
    pub fn all() -> CapabilitySet {
        CapabilitySet {
            ops: OpKind::ALL.iter().copied().collect(),
        }
    }

    /// Add a capability.
    pub fn with(mut self, op: OpKind) -> CapabilitySet {
        self.ops.insert(op);
        self
    }

    /// Remove a capability.
    pub fn without(mut self, op: OpKind) -> CapabilitySet {
        self.ops.remove(&op);
        self
    }

    /// Does this set include `op`?
    pub fn supports(&self, op: OpKind) -> bool {
        self.ops.contains(&op)
    }

    /// Does this set cover every node of `plan`?
    pub fn supports_plan(&self, plan: &Plan) -> bool {
        plan.op_kinds().iter().all(|k| self.supports(*k))
    }

    /// The operator kinds in `plan` that this set does *not* cover.
    pub fn unsupported_in(&self, plan: &Plan) -> Vec<OpKind> {
        let mut out: Vec<OpKind> = plan
            .op_kinds()
            .into_iter()
            .filter(|k| !self.supports(*k))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Iterate over the kinds.
    pub fn iter(&self) -> impl Iterator<Item = OpKind> + '_ {
        self.ops.iter().copied()
    }

    /// Number of supported kinds.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no kinds are supported.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl fmt::Display for CapabilitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.ops.iter().map(|k| k.name()).collect();
        write!(f, "{{{}}}", names.join(", "))
    }
}

/// A back-end server: catalog + capabilities + plan execution.
///
/// `execute` and `store` take `&self`: providers are shared across threads
/// by the simulated cluster, so implementations use interior mutability
/// for their catalogs.
pub trait Provider: Send + Sync {
    /// Stable provider name (used for site annotations and metrics).
    fn name(&self) -> &str;

    /// Operators this provider executes natively.
    fn capabilities(&self) -> CapabilitySet;

    /// The datasets this provider holds, with their schemas.
    fn catalog(&self) -> Vec<(String, Schema)>;

    /// Execute a plan tree whose scans all resolve in this provider's
    /// catalog, returning a materialized collection (no cursors).
    fn execute(&self, plan: &Plan) -> Result<DataSet>;

    /// Ingest a dataset (used for loading and for direct server-to-server
    /// transfer of intermediate results — desideratum 4).
    fn store(&self, name: &str, data: DataSet) -> Result<()>;

    /// Drop a dataset if present (cleanup of shipped intermediates).
    fn remove(&self, name: &str);

    /// Schema of a named dataset, if present.
    fn schema_of(&self, name: &str) -> Option<Schema> {
        self.catalog()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Row count of a named dataset, if known. Drives the federation's
    /// data-locality heuristic; `None` means "no statistics".
    fn row_count_of(&self, name: &str) -> Option<usize> {
        let _ = name;
        None
    }

    /// Table-level statistics (row count, per-column zone maps and NDV
    /// estimates) for a named dataset. `None` means the provider keeps
    /// no statistics; planners must fall back to [`Provider::row_count_of`]
    /// or heuristics.
    fn table_stats(&self, name: &str) -> Option<TableStats> {
        let _ = name;
        None
    }

    /// Build (or rebuild) a secondary index of `kind` on `column` of the
    /// named dataset. Providers without index support return an error;
    /// callers treat that as "lower onto a scan instead".
    fn build_index(&self, dataset: &str, column: &str, kind: IndexKind) -> Result<()> {
        Err(CoreError::Unsupported {
            provider: self.name().to_string(),
            op: format!("secondary indexes ({} on {dataset}.{column})", kind.name()),
        })
    }

    /// The secondary indexes currently built on a named dataset.
    fn index_specs(&self, dataset: &str) -> Vec<IndexSpec> {
        let _ = dataset;
        Vec::new()
    }

    /// A deterministic fingerprint of the index on `dataset.column`, if
    /// one exists. Two indexes over identical data built by identical
    /// specs fingerprint identically — the recovery tests compare a
    /// post-crash rebuild against a from-scratch build through this.
    fn index_fingerprint(&self, dataset: &str, column: &str) -> Option<u64> {
        let _ = (dataset, column);
        None
    }

    /// Network address (`host:port`) at which this provider's server can
    /// be reached by *other providers*, or `None` for in-process
    /// providers. A `Some` endpoint enables direct server-to-server
    /// intermediate transfer (desideratum 4) over a real transport.
    fn endpoint(&self) -> Option<String> {
        None
    }

    /// Execute `plan` and push the result directly to the peer provider
    /// listening at `peer_addr`, storing it there under `dest_name` —
    /// without the bytes ever touching the application tier. Returns
    /// `None` when this provider has no transport (in-process providers);
    /// `Some(Ok(bytes))` with the pushed payload size on success.
    fn execute_push(&self, plan: &Plan, peer_addr: &str, dest_name: &str) -> Option<Result<u64>> {
        let _ = (plan, peer_addr, dest_name);
        None
    }

    /// Cumulative real transport traffic `(sent, received)` in bytes for
    /// requests issued through this provider. Zero for in-process
    /// providers; remote providers count actual framed wire bytes.
    fn wire_bytes(&self) -> (u64, u64) {
        (0, 0)
    }

    /// [`Provider::execute`] attached to a distributed trace: the
    /// provider may additionally return spans describing its internal
    /// work (per-operator timings, server-side handling), expressed in
    /// the provider's own clock and id space. The caller stitches them
    /// under `ctx.parent_span` via `Tracer::absorb_remote`. The default
    /// executes untraced and returns no spans.
    fn execute_traced(
        &self,
        plan: &Plan,
        ctx: &bda_obs::TraceContext,
    ) -> Result<(DataSet, Vec<bda_obs::Span>)> {
        let _ = ctx;
        Ok((self.execute(plan)?, Vec::new()))
    }

    /// [`Provider::execute_push`] attached to a distributed trace; the
    /// returned spans cover this provider's execution and the peer store.
    fn execute_push_traced(
        &self,
        plan: &Plan,
        peer_addr: &str,
        dest_name: &str,
        ctx: &bda_obs::TraceContext,
    ) -> Option<Result<(u64, Vec<bda_obs::Span>)>> {
        let _ = ctx;
        self.execute_push(plan, peer_addr, dest_name)
            .map(|r| r.map(|bytes| (bytes, Vec::new())))
    }

    /// This provider's own Prometheus exposition, if it serves one. The
    /// fleet view (`/cluster/metrics`) pulls every registered provider's
    /// exposition and merges them under per-instance labels; in-process
    /// providers have no server of their own and return `None`.
    fn metrics_text(&self) -> Option<String> {
        None
    }
}

/// A provider backed by the reference evaluator: supports the entire
/// algebra (intent operators included) at oracle speed. Useful in tests,
/// as the portability baseline, and as the federation's fallback site.
pub struct ReferenceProvider {
    name: String,
    data: parking_lot_free_lock::Lock<std::collections::HashMap<String, DataSet>>,
}

/// Minimal internal RwLock wrapper so `bda-core` does not need a lock
/// dependency (engine crates use `parking_lot`; the reference provider is
/// cold-path only).
mod parking_lot_free_lock {
    use std::sync::RwLock;

    #[derive(Default)]
    pub struct Lock<T>(RwLock<T>);

    impl<T> Lock<T> {
        pub fn new(v: T) -> Lock<T> {
            Lock(RwLock::new(v))
        }

        pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
            f(&self.0.read().expect("reference provider lock poisoned"))
        }

        pub fn write<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
            f(&mut self.0.write().expect("reference provider lock poisoned"))
        }
    }
}

impl ReferenceProvider {
    /// An empty reference provider with the given name.
    pub fn new(name: impl Into<String>) -> ReferenceProvider {
        ReferenceProvider {
            name: name.into(),
            data: parking_lot_free_lock::Lock::new(Default::default()),
        }
    }
}

impl Provider for ReferenceProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> CapabilitySet {
        CapabilitySet::all()
    }

    fn catalog(&self) -> Vec<(String, Schema)> {
        self.data.read(|m| {
            let mut out: Vec<(String, Schema)> = m
                .iter()
                .map(|(n, ds)| (n.clone(), ds.schema().clone()))
                .collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            out
        })
    }

    fn execute(&self, plan: &Plan) -> Result<DataSet> {
        self.data.read(|m| crate::reference::evaluate(plan, m))
    }

    fn store(&self, name: &str, data: DataSet) -> Result<()> {
        self.data.write(|m| {
            m.insert(name.to_string(), data);
        });
        Ok(())
    }

    fn remove(&self, name: &str) {
        self.data.write(|m| {
            m.remove(name);
        });
    }

    fn row_count_of(&self, name: &str) -> Option<usize> {
        self.data.read(|m| m.get(name).map(|ds| ds.num_rows()))
    }

    fn execute_traced(
        &self,
        plan: &Plan,
        ctx: &bda_obs::TraceContext,
    ) -> Result<(DataSet, Vec<bda_obs::Span>)> {
        let tracer = bda_obs::Tracer::with_trace_id(ctx.trace_id);
        let out = self
            .data
            .read(|m| crate::reference::evaluate_traced(plan, m, &tracer, None, &self.name))?;
        Ok((out, tracer.take_spans()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use bda_storage::Column;

    #[test]
    fn capability_set_operations() {
        let base = CapabilitySet::all_base();
        assert!(base.supports(OpKind::Join));
        assert!(!base.supports(OpKind::MatMul));
        let with_mm = base.clone().with(OpKind::MatMul);
        assert!(with_mm.supports(OpKind::MatMul));
        let without_join = with_mm.without(OpKind::Join);
        assert!(!without_join.supports(OpKind::Join));
        assert!(CapabilitySet::all().len() == OpKind::ALL.len());
        assert!(CapabilitySet::new().is_empty());
    }

    #[test]
    fn supports_plan_and_unsupported_in() {
        let schema = bda_storage::Schema::new(vec![bda_storage::Field::value(
            "k",
            bda_storage::DataType::Int64,
        )])
        .unwrap();
        let plan = Plan::scan("t", schema.clone()).select(col("k").gt(lit(0i64)));
        let caps = CapabilitySet::from_ops(&[OpKind::Scan, OpKind::Select]);
        assert!(caps.supports_plan(&plan));
        let bigger = plan.distinct();
        assert!(!caps.supports_plan(&bigger));
        assert_eq!(caps.unsupported_in(&bigger), vec![OpKind::Distinct]);
    }

    #[test]
    fn reference_provider_end_to_end() {
        let p = ReferenceProvider::new("ref");
        let ds = DataSet::from_columns(vec![("k", Column::from(vec![1i64, 2, 3]))]).unwrap();
        p.store("t", ds.clone()).unwrap();
        assert_eq!(p.catalog().len(), 1);
        assert_eq!(p.schema_of("t"), Some(ds.schema().clone()));
        let plan = Plan::scan("t", ds.schema().clone()).select(col("k").gt(lit(1i64)));
        let out = p.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 2);
        p.remove("t");
        assert!(p.catalog().is_empty());
        assert!(p.execute(&plan).is_err());
    }

    #[test]
    fn display_capabilities() {
        let caps = CapabilitySet::from_ops(&[OpKind::MatMul, OpKind::Scan]);
        let s = caps.to_string();
        assert!(s.contains("matmul") && s.contains("scan"), "{s}");
    }
}
