//! Splitting a dataset into partitions for parallel execution.
//!
//! A [`Partitioner`] describes *how* rows are routed to partitions; the
//! split itself is a pure function of the data and the partitioner, so
//! the same input always produces the same partitions regardless of how
//! many workers later consume them. That property is what makes
//! partition-parallel kernels deterministic.
//!
//! Three strategies cover the engines' needs:
//!
//! - **hash**: route each row by a deterministic hash of one or more key
//!   columns. Co-partitions join inputs and disjointly partitions
//!   group-by keys. Rows whose key is entirely null go to partition 0
//!   (they still have to appear in e.g. left-join output).
//! - **range**: equal-width numeric ranges over a key column between the
//!   observed min and max. Nulls go to partition 0.
//! - **block**: contiguous row blocks, ignoring values entirely. Used
//!   for dense array/matrix row-band splitting and cross joins.
//!
//! Empty partitions are legal output: a skewed or tiny input may leave
//! some of the `parts` datasets empty, and downstream kernels must cope
//! (the regression tests in this module pin that down).

use std::hash::{Hash, Hasher};

use bda_storage::{Chunk, DataSet, RowsChunk, Value};

use crate::error::CoreError;
use crate::Result;

/// A deterministic routing of rows to `parts` partitions.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitioner {
    /// Hash of the named key columns, modulo `parts`.
    Hash {
        /// Key column names (all must exist in the schema).
        keys: Vec<String>,
        /// Number of partitions (>= 1).
        parts: usize,
    },
    /// Equal-width numeric ranges over `key` between observed min/max.
    Range {
        /// Key column name (numeric).
        key: String,
        /// Number of partitions (>= 1).
        parts: usize,
    },
    /// Contiguous row blocks of near-equal size.
    Block {
        /// Number of partitions (>= 1).
        parts: usize,
    },
}

/// Deterministic hash of a slice of values. Uses `DefaultHasher` with
/// its fixed default keys, so the routing is stable across processes —
/// required for byte-identical results under different worker counts.
pub fn hash_values(values: &[&Value]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

impl Partitioner {
    /// Hash partitioner over one key column.
    pub fn hash(key: impl Into<String>, parts: usize) -> Partitioner {
        Partitioner::Hash {
            keys: vec![key.into()],
            parts,
        }
    }

    /// Hash partitioner over several key columns (join co-partitioning).
    pub fn hash_keys(keys: &[&str], parts: usize) -> Partitioner {
        Partitioner::Hash {
            keys: keys.iter().map(|k| k.to_string()).collect(),
            parts,
        }
    }

    /// Range partitioner over one numeric key column.
    pub fn range(key: impl Into<String>, parts: usize) -> Partitioner {
        Partitioner::Range {
            key: key.into(),
            parts,
        }
    }

    /// Block partitioner: contiguous row bands.
    pub fn block(parts: usize) -> Partitioner {
        Partitioner::Block { parts }
    }

    /// The number of partitions this partitioner produces.
    pub fn parts(&self) -> usize {
        match self {
            Partitioner::Hash { parts, .. }
            | Partitioner::Range { parts, .. }
            | Partitioner::Block { parts } => *parts,
        }
    }

    /// Split `ds` into exactly `parts` datasets (some possibly empty).
    ///
    /// The result depends only on the input data and the partitioner —
    /// never on worker counts or scheduling — and multi-chunk inputs are
    /// folded through [`DataSet::to_rows_chunk`] first, so chunk layout
    /// does not affect routing either.
    pub fn split(&self, ds: &DataSet) -> Result<Vec<DataSet>> {
        let parts = self.parts();
        if parts == 0 {
            return Err(CoreError::Plan(
                "partitioner needs at least 1 partition".into(),
            ));
        }
        let schema = ds.schema().clone();
        let chunk = ds.to_rows_chunk()?;

        if parts == 1 {
            let out = DataSet::new(schema, vec![Chunk::Rows(chunk)]);
            return Ok(vec![out]);
        }

        let mut buckets: Vec<RowsChunk> = (0..parts).map(|_| RowsChunk::empty(&schema)).collect();
        match self {
            Partitioner::Hash { keys, .. } => {
                let idx: Vec<usize> = keys
                    .iter()
                    .map(|k| {
                        schema.index_of(k).map_err(|_| {
                            CoreError::Plan(format!("hash partitioner: unknown key column `{k}`"))
                        })
                    })
                    .collect::<Result<_>>()?;
                for i in 0..chunk.len() {
                    let row = chunk.row(i);
                    let key_vals: Vec<&Value> = idx.iter().map(|&j| row.get(j)).collect();
                    let b = if key_vals.iter().all(|v| v.is_null()) {
                        0
                    } else {
                        (hash_values(&key_vals) % parts as u64) as usize
                    };
                    buckets[b].push_row(&row)?;
                }
            }
            Partitioner::Range { key, .. } => {
                let j = schema.index_of(key).map_err(|_| {
                    CoreError::Plan(format!("range partitioner: unknown key column `{key}`"))
                })?;
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for i in 0..chunk.len() {
                    if let Ok(v) = chunk.row(i).get(j).as_float() {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
                let width = if hi > lo {
                    (hi - lo) / parts as f64
                } else {
                    0.0
                };
                for i in 0..chunk.len() {
                    let row = chunk.row(i);
                    let b = match row.get(j).as_float() {
                        Ok(v) if width > 0.0 => (((v - lo) / width) as usize).min(parts - 1),
                        // All-equal keys (width 0) collapse into one
                        // partition; nulls and non-numerics go to 0.
                        _ => 0,
                    };
                    buckets[b].push_row(&row)?;
                }
            }
            Partitioner::Block { .. } => {
                let n = chunk.len();
                // Near-equal contiguous blocks: the first `n % parts`
                // blocks get one extra row.
                let base = n / parts;
                let extra = n % parts;
                let mut start = 0;
                for (b, bucket) in buckets.iter_mut().enumerate() {
                    let len = base + usize::from(b < extra);
                    for i in start..start + len {
                        bucket.push_row(&chunk.row(i))?;
                    }
                    start += len;
                }
            }
        }

        Ok(buckets
            .into_iter()
            .map(|b| DataSet::new(schema.clone(), vec![Chunk::Rows(b)]))
            .collect())
    }
}

/// Concatenate partition outputs back into one dataset, one chunk per
/// non-empty partition, preserving partition order. The inverse of a
/// split for bag semantics (row order follows partition order).
pub fn merge_partitions(schema: bda_storage::Schema, parts: Vec<DataSet>) -> Result<DataSet> {
    let mut out = DataSet::empty(schema);
    for p in parts {
        let chunk = p.to_rows_chunk()?;
        if !chunk.is_empty() {
            out.push_chunk(Chunk::Rows(chunk));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_storage::{DataType, Field, Row, Schema};

    fn kv_schema() -> Schema {
        Schema::new(vec![
            Field::value("k", DataType::Int64),
            Field::value("v", DataType::Float64),
        ])
        .unwrap()
    }

    fn kv_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row(vec![
                    Value::Int((i % 5) as i64),
                    Value::Float(i as f64 * 0.5),
                ])
            })
            .collect()
    }

    fn dataset(rows: &[Row]) -> DataSet {
        DataSet::from_rows(kv_schema(), rows).unwrap()
    }

    fn total_rows(parts: &[DataSet]) -> usize {
        parts.iter().map(|p| p.num_rows()).sum()
    }

    #[test]
    fn hash_split_is_exhaustive_and_deterministic() {
        let ds = dataset(&kv_rows(57));
        let p = Partitioner::hash("k", 4);
        let a = p.split(&ds).unwrap();
        let b = p.split(&ds).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(total_rows(&a), 57);
        for (x, y) in a.iter().zip(&b) {
            assert!(x.same_bag(y).unwrap());
        }
        // Same key always lands in the same bucket.
        for part in &a {
            let chunk = part.to_rows_chunk().unwrap();
            for i in 0..chunk.len() {
                let row = chunk.row(i);
                let expect = (hash_values(&[row.get(0)]) % 4) as usize;
                let actual = a.iter().position(|q| std::ptr::eq(q, part)).unwrap();
                assert_eq!(actual, expect);
            }
        }
    }

    #[test]
    fn empty_input_yields_all_empty_partitions() {
        let ds = dataset(&[]);
        for p in [
            Partitioner::hash("k", 3),
            Partitioner::range("v", 3),
            Partitioner::block(3),
        ] {
            let parts = p.split(&ds).unwrap();
            assert_eq!(parts.len(), 3);
            assert_eq!(total_rows(&parts), 0);
        }
    }

    #[test]
    fn singleton_input_leaves_empty_partitions() {
        let ds = dataset(&kv_rows(1));
        let parts = Partitioner::hash("k", 7).split(&ds).unwrap();
        assert_eq!(parts.len(), 7);
        assert_eq!(total_rows(&parts), 1);
        assert_eq!(parts.iter().filter(|p| p.num_rows() == 0).count(), 6);
    }

    #[test]
    fn all_equal_keys_skew_into_one_partition() {
        let rows: Vec<Row> = (0..20)
            .map(|i| Row(vec![Value::Int(42), Value::Float(i as f64)]))
            .collect();
        let ds = dataset(&rows);
        let parts = Partitioner::hash("k", 4).split(&ds).unwrap();
        assert_eq!(total_rows(&parts), 20);
        assert_eq!(
            parts.iter().filter(|p| p.num_rows() == 20).count(),
            1,
            "all-equal keys must all land in exactly one partition"
        );
        // Range split over all-equal numeric keys likewise collapses.
        let parts = Partitioner::range("k", 4).split(&ds).unwrap();
        assert_eq!(parts[0].num_rows(), 20);
    }

    #[test]
    fn null_keys_go_to_partition_zero() {
        let rows = vec![
            Row(vec![Value::Null, Value::Float(1.0)]),
            Row(vec![Value::Int(1), Value::Float(2.0)]),
            Row(vec![Value::Null, Value::Float(3.0)]),
        ];
        let parts = Partitioner::hash("k", 3).split(&dataset(&rows)).unwrap();
        assert_eq!(total_rows(&parts), 3);
        let p0 = parts[0].to_rows_chunk().unwrap();
        let nulls_in_p0 = (0..p0.len())
            .filter(|&i| p0.row(i).get(0).is_null())
            .count();
        assert_eq!(nulls_in_p0, 2);
    }

    #[test]
    fn block_split_preserves_order_and_balances() {
        let ds = dataset(&kv_rows(10));
        let parts = Partitioner::block(3).split(&ds).unwrap();
        let sizes: Vec<usize> = parts.iter().map(|p| p.num_rows()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let merged = merge_partitions(kv_schema(), parts).unwrap();
        let chunk = merged.to_rows_chunk().unwrap();
        let rows: Vec<Row> = (0..chunk.len()).map(|i| chunk.row(i)).collect();
        assert_eq!(rows, kv_rows(10));
    }

    #[test]
    fn range_split_orders_rows_by_key() {
        let ds = dataset(&kv_rows(40));
        let parts = Partitioner::range("v", 4).split(&ds).unwrap();
        assert_eq!(total_rows(&parts), 40);
        // Every value in partition i is <= every value in partition i+1.
        let max_of = |p: &DataSet| -> f64 {
            let c = p.to_rows_chunk().unwrap();
            (0..c.len())
                .map(|i| c.row(i).get(1).as_float().unwrap())
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let min_of = |p: &DataSet| -> f64 {
            let c = p.to_rows_chunk().unwrap();
            (0..c.len())
                .map(|i| c.row(i).get(1).as_float().unwrap())
                .fold(f64::INFINITY, f64::min)
        };
        for w in parts.windows(2) {
            if w[0].num_rows() > 0 && w[1].num_rows() > 0 {
                assert!(max_of(&w[0]) <= min_of(&w[1]));
            }
        }
    }

    #[test]
    fn multi_chunk_input_routes_identically_to_single_chunk() {
        let rows = kv_rows(30);
        let single = dataset(&rows);
        let mut multi = DataSet::empty(kv_schema());
        for half in rows.chunks(11) {
            let mut c = RowsChunk::empty(&kv_schema());
            for r in half {
                c.push_row(r).unwrap();
            }
            multi.push_chunk(Chunk::Rows(c));
        }
        let p = Partitioner::hash("k", 4);
        let a = p.split(&single).unwrap();
        let b = p.split(&multi).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!(x.same_bag(y).unwrap());
        }
    }

    #[test]
    fn zero_parts_is_an_error_and_unknown_key_is_an_error() {
        let ds = dataset(&kv_rows(3));
        assert!(Partitioner::hash("k", 0).split(&ds).is_err());
        assert!(Partitioner::hash("nope", 2).split(&ds).is_err());
        assert!(Partitioner::range("nope", 2).split(&ds).is_err());
    }

    #[test]
    fn multi_key_hash_co_partitions() {
        let ds = dataset(&kv_rows(25));
        let parts = Partitioner::hash_keys(&["k", "v"], 5).split(&ds).unwrap();
        assert_eq!(total_rows(&parts), 25);
        // Identical (k, v) pairs land together: re-split a partition and
        // its rows stay put.
        for (i, part) in parts.iter().enumerate() {
            let again = Partitioner::hash_keys(&["k", "v"], 5).split(part).unwrap();
            assert_eq!(again[i].num_rows(), part.num_rows());
        }
    }
}
