//! Binary encoding of plans and expressions.
//!
//! The paper highlights that LINQ "can pass queries to Providers in the
//! form of an expression tree, rather than as a series of remote function
//! calls". This codec is that capability: a whole plan tree serializes
//! into one message, so a pipeline of k operators costs one round trip
//! instead of k (experiment F3 measures exactly this difference).

use bytes::{BufMut, BytesMut};

use bda_storage::wire::{decode_schema, decode_value, encode_schema, encode_value, Reader};
use bda_storage::{Row, StorageError};

use crate::agg::{AggExpr, AggFunc};
use crate::error::CoreError;
use crate::expr::{BinOp, Expr, UnOp};
use crate::plan::{GraphOp, JoinType, Plan};

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

fn corrupt(msg: impl Into<String>) -> CoreError {
    CoreError::Corrupt(msg.into())
}

fn wire_err(e: StorageError) -> CoreError {
    CoreError::Corrupt(e.to_string())
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(r: &mut Reader<'_>, what: &str) -> Result<String> {
    r.string(what).map_err(wire_err)
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// Encode an expression.
pub fn encode_expr(e: &Expr, buf: &mut BytesMut) {
    match e {
        Expr::Column(name) => {
            buf.put_u8(0);
            put_string(buf, name);
        }
        Expr::Literal(v) => {
            buf.put_u8(1);
            encode_value(v, buf);
        }
        Expr::Binary { op, left, right } => {
            buf.put_u8(2);
            buf.put_u8(bin_tag(*op));
            encode_expr(left, buf);
            encode_expr(right, buf);
        }
        Expr::Unary { op, input } => {
            buf.put_u8(3);
            buf.put_u8(un_tag(*op));
            encode_expr(input, buf);
        }
        Expr::Cast { input, to } => {
            buf.put_u8(4);
            buf.put_u8(to.wire_tag());
            encode_expr(input, buf);
        }
        Expr::Coalesce(args) => {
            buf.put_u8(5);
            buf.put_u32_le(args.len() as u32);
            for a in args {
                encode_expr(a, buf);
            }
        }
        Expr::Case {
            branches,
            otherwise,
        } => {
            buf.put_u8(6);
            buf.put_u32_le(branches.len() as u32);
            for (w, t) in branches {
                encode_expr(w, buf);
                encode_expr(t, buf);
            }
            match otherwise {
                Some(e) => {
                    buf.put_u8(1);
                    encode_expr(e, buf);
                }
                None => buf.put_u8(0),
            }
        }
    }
}

/// Decode an expression.
pub fn decode_expr(r: &mut Reader<'_>) -> Result<Expr> {
    match r.u8("expr tag").map_err(wire_err)? {
        0 => Ok(Expr::Column(get_string(r, "column name")?)),
        1 => Ok(Expr::Literal(decode_value(r).map_err(wire_err)?)),
        2 => {
            let op = bin_from_tag(r.u8("binop tag").map_err(wire_err)?)?;
            let left = Box::new(decode_expr(r)?);
            let right = Box::new(decode_expr(r)?);
            Ok(Expr::Binary { op, left, right })
        }
        3 => {
            let op = un_from_tag(r.u8("unop tag").map_err(wire_err)?)?;
            let input = Box::new(decode_expr(r)?);
            Ok(Expr::Unary { op, input })
        }
        4 => {
            let to = bda_storage::DataType::from_wire_tag(r.u8("cast tag").map_err(wire_err)?)
                .ok_or_else(|| corrupt("bad cast dtype"))?;
            let input = Box::new(decode_expr(r)?);
            Ok(Expr::Cast { input, to })
        }
        5 => {
            let n = r.u32("coalesce arity").map_err(wire_err)? as usize;
            check_arity(r, n)?;
            let mut args = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                args.push(decode_expr(r)?);
            }
            Ok(Expr::Coalesce(args))
        }
        6 => {
            let n = r.u32("case arity").map_err(wire_err)? as usize;
            check_arity(r, n)?;
            let mut branches = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                let w = decode_expr(r)?;
                let t = decode_expr(r)?;
                branches.push((w, t));
            }
            let otherwise = match r.u8("case else flag").map_err(wire_err)? {
                0 => None,
                1 => Some(Box::new(decode_expr(r)?)),
                t => return Err(corrupt(format!("bad case else flag {t}"))),
            };
            Ok(Expr::Case {
                branches,
                otherwise,
            })
        }
        t => Err(corrupt(format!("bad expr tag {t}"))),
    }
}

fn check_arity(r: &Reader<'_>, n: usize) -> Result<()> {
    if n > r.remaining() + 16 {
        return Err(corrupt(format!("implausible arity {n}")));
    }
    Ok(())
}

fn bin_tag(op: BinOp) -> u8 {
    BinOp::ALL.iter().position(|&o| o == op).unwrap() as u8
}

fn bin_from_tag(t: u8) -> Result<BinOp> {
    BinOp::ALL
        .get(t as usize)
        .copied()
        .ok_or_else(|| corrupt(format!("bad binop tag {t}")))
}

fn un_tag(op: UnOp) -> u8 {
    UnOp::ALL.iter().position(|&o| o == op).unwrap() as u8
}

fn un_from_tag(t: u8) -> Result<UnOp> {
    UnOp::ALL
        .get(t as usize)
        .copied()
        .ok_or_else(|| corrupt(format!("bad unop tag {t}")))
}

fn agg_tag(f: AggFunc) -> u8 {
    AggFunc::ALL.iter().position(|&o| o == f).unwrap() as u8
}

fn agg_from_tag(t: u8) -> Result<AggFunc> {
    AggFunc::ALL
        .get(t as usize)
        .copied()
        .ok_or_else(|| corrupt(format!("bad agg tag {t}")))
}

fn join_tag(j: JoinType) -> u8 {
    JoinType::ALL.iter().position(|&o| o == j).unwrap() as u8
}

fn join_from_tag(t: u8) -> Result<JoinType> {
    JoinType::ALL
        .get(t as usize)
        .copied()
        .ok_or_else(|| corrupt(format!("bad join tag {t}")))
}

fn encode_agg(a: &AggExpr, buf: &mut BytesMut) {
    buf.put_u8(agg_tag(a.func));
    match &a.arg {
        Some(e) => {
            buf.put_u8(1);
            encode_expr(e, buf);
        }
        None => buf.put_u8(0),
    }
    put_string(buf, &a.name);
}

fn decode_agg(r: &mut Reader<'_>) -> Result<AggExpr> {
    let func = agg_from_tag(r.u8("agg tag").map_err(wire_err)?)?;
    let arg = match r.u8("agg arg flag").map_err(wire_err)? {
        0 => None,
        1 => Some(decode_expr(r)?),
        t => return Err(corrupt(format!("bad agg arg flag {t}"))),
    };
    let name = get_string(r, "agg name")?;
    Ok(AggExpr { func, arg, name })
}

fn encode_rows(rows: &[Row], buf: &mut BytesMut) {
    buf.put_u32_le(rows.len() as u32);
    for row in rows {
        buf.put_u32_le(row.len() as u32);
        for v in &row.0 {
            encode_value(v, buf);
        }
    }
}

fn decode_rows(r: &mut Reader<'_>) -> Result<Vec<Row>> {
    let n = r.u32("row count").map_err(wire_err)? as usize;
    check_arity(r, n)?;
    let mut rows = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let m = r.u32("row arity").map_err(wire_err)? as usize;
        check_arity(r, m)?;
        let mut vals = Vec::with_capacity(m.min(256));
        for _ in 0..m {
            vals.push(decode_value(r).map_err(wire_err)?);
        }
        rows.push(Row(vals));
    }
    Ok(rows)
}

fn encode_opt_extent(e: &Option<(i64, i64)>, buf: &mut BytesMut) {
    match e {
        Some((lo, hi)) => {
            buf.put_u8(1);
            buf.put_i64_le(*lo);
            buf.put_i64_le(*hi);
        }
        None => buf.put_u8(0),
    }
}

fn decode_opt_extent(r: &mut Reader<'_>) -> Result<Option<(i64, i64)>> {
    match r.u8("extent flag").map_err(wire_err)? {
        0 => Ok(None),
        1 => {
            let lo = r.i64("extent lo").map_err(wire_err)?;
            let hi = r.i64("extent hi").map_err(wire_err)?;
            Ok(Some((lo, hi)))
        }
        t => Err(corrupt(format!("bad extent flag {t}"))),
    }
}

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

/// Magic prefix for plan messages.
const PLAN_MAGIC: &[u8; 4] = b"BDAP";

/// Encode a full plan tree into a fresh buffer.
pub fn encode_plan(plan: &Plan) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(256);
    buf.put_slice(PLAN_MAGIC);
    encode_plan_node(plan, &mut buf);
    buf.to_vec()
}

/// Decode a plan; consumes the whole input.
pub fn decode_plan(bytes: &[u8]) -> Result<Plan> {
    let mut r = Reader::new(bytes);
    let magic = r.bytes(4, "plan magic").map_err(wire_err)?;
    if magic != PLAN_MAGIC {
        return Err(corrupt("bad plan magic"));
    }
    let plan = decode_plan_node(&mut r)?;
    if r.remaining() != 0 {
        return Err(corrupt(format!(
            "{} trailing bytes after plan",
            r.remaining()
        )));
    }
    Ok(plan)
}

fn encode_plan_node(plan: &Plan, buf: &mut BytesMut) {
    match plan {
        Plan::Scan { dataset, schema } => {
            buf.put_u8(0);
            put_string(buf, dataset);
            encode_schema(schema, buf);
        }
        Plan::Values { schema, rows } => {
            buf.put_u8(1);
            encode_schema(schema, buf);
            encode_rows(rows, buf);
        }
        Plan::Range { name, lo, hi } => {
            buf.put_u8(2);
            put_string(buf, name);
            buf.put_i64_le(*lo);
            buf.put_i64_le(*hi);
        }
        Plan::IterState { schema } => {
            buf.put_u8(3);
            encode_schema(schema, buf);
        }
        Plan::Select { input, predicate } => {
            buf.put_u8(4);
            encode_expr(predicate, buf);
            encode_plan_node(input, buf);
        }
        Plan::Project { input, exprs } => {
            buf.put_u8(5);
            buf.put_u32_le(exprs.len() as u32);
            for (n, e) in exprs {
                put_string(buf, n);
                encode_expr(e, buf);
            }
            encode_plan_node(input, buf);
        }
        Plan::Join {
            left,
            right,
            on,
            join_type,
            suffix,
        } => {
            buf.put_u8(6);
            buf.put_u8(join_tag(*join_type));
            put_string(buf, suffix);
            buf.put_u32_le(on.len() as u32);
            for (a, b) in on {
                put_string(buf, a);
                put_string(buf, b);
            }
            encode_plan_node(left, buf);
            encode_plan_node(right, buf);
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            buf.put_u8(7);
            buf.put_u32_le(group_by.len() as u32);
            for g in group_by {
                put_string(buf, g);
            }
            buf.put_u32_le(aggs.len() as u32);
            for a in aggs {
                encode_agg(a, buf);
            }
            encode_plan_node(input, buf);
        }
        Plan::Union { left, right } => {
            buf.put_u8(8);
            encode_plan_node(left, buf);
            encode_plan_node(right, buf);
        }
        Plan::Distinct { input } => {
            buf.put_u8(9);
            encode_plan_node(input, buf);
        }
        Plan::Sort { input, keys } => {
            buf.put_u8(10);
            buf.put_u32_le(keys.len() as u32);
            for (k, d) in keys {
                put_string(buf, k);
                buf.put_u8(*d as u8);
            }
            encode_plan_node(input, buf);
        }
        Plan::Limit { input, skip, fetch } => {
            buf.put_u8(11);
            buf.put_u64_le(*skip as u64);
            match fetch {
                Some(n) => {
                    buf.put_u8(1);
                    buf.put_u64_le(*n as u64);
                }
                None => buf.put_u8(0),
            }
            encode_plan_node(input, buf);
        }
        Plan::Rename { input, mapping } => {
            buf.put_u8(12);
            buf.put_u32_le(mapping.len() as u32);
            for (a, b) in mapping {
                put_string(buf, a);
                put_string(buf, b);
            }
            encode_plan_node(input, buf);
        }
        Plan::Dice { input, ranges } => {
            buf.put_u8(13);
            buf.put_u32_le(ranges.len() as u32);
            for (d, lo, hi) in ranges {
                put_string(buf, d);
                buf.put_i64_le(*lo);
                buf.put_i64_le(*hi);
            }
            encode_plan_node(input, buf);
        }
        Plan::SliceAt { input, dim, index } => {
            buf.put_u8(14);
            put_string(buf, dim);
            buf.put_i64_le(*index);
            encode_plan_node(input, buf);
        }
        Plan::Permute { input, order } => {
            buf.put_u8(15);
            buf.put_u32_le(order.len() as u32);
            for d in order {
                put_string(buf, d);
            }
            encode_plan_node(input, buf);
        }
        Plan::Window { input, radii, aggs } => {
            buf.put_u8(16);
            buf.put_u32_le(radii.len() as u32);
            for (d, rad) in radii {
                put_string(buf, d);
                buf.put_i64_le(*rad);
            }
            buf.put_u32_le(aggs.len() as u32);
            for a in aggs {
                encode_agg(a, buf);
            }
            encode_plan_node(input, buf);
        }
        Plan::Fill { input, fill } => {
            buf.put_u8(17);
            encode_value(fill, buf);
            encode_plan_node(input, buf);
        }
        Plan::TagDims { input, dims } => {
            buf.put_u8(18);
            buf.put_u32_le(dims.len() as u32);
            for (d, e) in dims {
                put_string(buf, d);
                encode_opt_extent(e, buf);
            }
            encode_plan_node(input, buf);
        }
        Plan::UntagDims { input } => {
            buf.put_u8(19);
            encode_plan_node(input, buf);
        }
        Plan::MatMul { left, right } => {
            buf.put_u8(20);
            encode_plan_node(left, buf);
            encode_plan_node(right, buf);
        }
        Plan::ElemWise { op, left, right } => {
            buf.put_u8(21);
            buf.put_u8(bin_tag(*op));
            encode_plan_node(left, buf);
            encode_plan_node(right, buf);
        }
        Plan::Graph(g) => {
            buf.put_u8(22);
            match g {
                GraphOp::PageRank {
                    edges,
                    damping,
                    max_iters,
                    epsilon,
                } => {
                    buf.put_u8(0);
                    buf.put_u64_le(damping.to_bits());
                    buf.put_u64_le(*max_iters as u64);
                    buf.put_u64_le(epsilon.to_bits());
                    encode_plan_node(edges, buf);
                }
                GraphOp::ConnectedComponents { edges, max_iters } => {
                    buf.put_u8(1);
                    buf.put_u64_le(*max_iters as u64);
                    encode_plan_node(edges, buf);
                }
                GraphOp::TriangleCount { edges } => {
                    buf.put_u8(2);
                    encode_plan_node(edges, buf);
                }
                GraphOp::Degrees { edges } => {
                    buf.put_u8(3);
                    encode_plan_node(edges, buf);
                }
                GraphOp::BfsLevels { edges, source } => {
                    buf.put_u8(4);
                    buf.put_i64_le(*source);
                    encode_plan_node(edges, buf);
                }
            }
        }
        Plan::Iterate {
            init,
            body,
            max_iters,
            epsilon,
        } => {
            buf.put_u8(23);
            buf.put_u64_le(*max_iters as u64);
            match epsilon {
                Some(e) => {
                    buf.put_u8(1);
                    buf.put_u64_le(e.to_bits());
                }
                None => buf.put_u8(0),
            }
            encode_plan_node(init, buf);
            encode_plan_node(body, buf);
        }
        Plan::Exchange { input, parts, key } => {
            buf.put_u8(24);
            buf.put_u64_le(*parts as u64);
            match key {
                Some(k) => {
                    buf.put_u8(1);
                    put_string(buf, k);
                }
                None => buf.put_u8(0),
            }
            encode_plan_node(input, buf);
        }
        Plan::Merge { input } => {
            buf.put_u8(25);
            encode_plan_node(input, buf);
        }
    }
}

fn decode_plan_node(r: &mut Reader<'_>) -> Result<Plan> {
    let tag = r.u8("plan tag").map_err(wire_err)?;
    Ok(match tag {
        0 => Plan::Scan {
            dataset: get_string(r, "scan dataset")?,
            schema: decode_schema(r).map_err(wire_err)?,
        },
        1 => Plan::Values {
            schema: decode_schema(r).map_err(wire_err)?,
            rows: decode_rows(r)?,
        },
        2 => Plan::Range {
            name: get_string(r, "range name")?,
            lo: r.i64("range lo").map_err(wire_err)?,
            hi: r.i64("range hi").map_err(wire_err)?,
        },
        3 => Plan::IterState {
            schema: decode_schema(r).map_err(wire_err)?,
        },
        4 => {
            let predicate = decode_expr(r)?;
            let input = Box::new(decode_plan_node(r)?);
            Plan::Select { input, predicate }
        }
        5 => {
            let n = r.u32("project arity").map_err(wire_err)? as usize;
            check_arity(r, n)?;
            let mut exprs = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                let name = get_string(r, "project name")?;
                let e = decode_expr(r)?;
                exprs.push((name, e));
            }
            let input = Box::new(decode_plan_node(r)?);
            Plan::Project { input, exprs }
        }
        6 => {
            let join_type = join_from_tag(r.u8("join type").map_err(wire_err)?)?;
            let suffix = get_string(r, "join suffix")?;
            let n = r.u32("join key count").map_err(wire_err)? as usize;
            check_arity(r, n)?;
            let mut on = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let a = get_string(r, "join left key")?;
                let b = get_string(r, "join right key")?;
                on.push((a, b));
            }
            let left = Box::new(decode_plan_node(r)?);
            let right = Box::new(decode_plan_node(r)?);
            Plan::Join {
                left,
                right,
                on,
                join_type,
                suffix,
            }
        }
        7 => {
            let n = r.u32("group count").map_err(wire_err)? as usize;
            check_arity(r, n)?;
            let mut group_by = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                group_by.push(get_string(r, "group col")?);
            }
            let m = r.u32("agg count").map_err(wire_err)? as usize;
            check_arity(r, m)?;
            let mut aggs = Vec::with_capacity(m.min(64));
            for _ in 0..m {
                aggs.push(decode_agg(r)?);
            }
            let input = Box::new(decode_plan_node(r)?);
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            }
        }
        8 => {
            let left = Box::new(decode_plan_node(r)?);
            let right = Box::new(decode_plan_node(r)?);
            Plan::Union { left, right }
        }
        9 => Plan::Distinct {
            input: Box::new(decode_plan_node(r)?),
        },
        10 => {
            let n = r.u32("sort key count").map_err(wire_err)? as usize;
            check_arity(r, n)?;
            let mut keys = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let k = get_string(r, "sort key")?;
                let d = r.u8("sort dir").map_err(wire_err)? != 0;
                keys.push((k, d));
            }
            let input = Box::new(decode_plan_node(r)?);
            Plan::Sort { input, keys }
        }
        11 => {
            let skip = r.u64("limit skip").map_err(wire_err)? as usize;
            let fetch = match r.u8("limit flag").map_err(wire_err)? {
                0 => None,
                1 => Some(r.u64("limit fetch").map_err(wire_err)? as usize),
                t => return Err(corrupt(format!("bad limit flag {t}"))),
            };
            let input = Box::new(decode_plan_node(r)?);
            Plan::Limit { input, skip, fetch }
        }
        12 => {
            let n = r.u32("rename count").map_err(wire_err)? as usize;
            check_arity(r, n)?;
            let mut mapping = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let a = get_string(r, "rename from")?;
                let b = get_string(r, "rename to")?;
                mapping.push((a, b));
            }
            let input = Box::new(decode_plan_node(r)?);
            Plan::Rename { input, mapping }
        }
        13 => {
            let n = r.u32("dice count").map_err(wire_err)? as usize;
            check_arity(r, n)?;
            let mut ranges = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let d = get_string(r, "dice dim")?;
                let lo = r.i64("dice lo").map_err(wire_err)?;
                let hi = r.i64("dice hi").map_err(wire_err)?;
                ranges.push((d, lo, hi));
            }
            let input = Box::new(decode_plan_node(r)?);
            Plan::Dice { input, ranges }
        }
        14 => {
            let dim = get_string(r, "slice dim")?;
            let index = r.i64("slice index").map_err(wire_err)?;
            let input = Box::new(decode_plan_node(r)?);
            Plan::SliceAt { input, dim, index }
        }
        15 => {
            let n = r.u32("permute count").map_err(wire_err)? as usize;
            check_arity(r, n)?;
            let mut order = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                order.push(get_string(r, "permute dim")?);
            }
            let input = Box::new(decode_plan_node(r)?);
            Plan::Permute { input, order }
        }
        16 => {
            let n = r.u32("window dim count").map_err(wire_err)? as usize;
            check_arity(r, n)?;
            let mut radii = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let d = get_string(r, "window dim")?;
                let rad = r.i64("window radius").map_err(wire_err)?;
                radii.push((d, rad));
            }
            let m = r.u32("window agg count").map_err(wire_err)? as usize;
            check_arity(r, m)?;
            let mut aggs = Vec::with_capacity(m.min(64));
            for _ in 0..m {
                aggs.push(decode_agg(r)?);
            }
            let input = Box::new(decode_plan_node(r)?);
            Plan::Window { input, radii, aggs }
        }
        17 => {
            let fill = decode_value(r).map_err(wire_err)?;
            let input = Box::new(decode_plan_node(r)?);
            Plan::Fill { input, fill }
        }
        18 => {
            let n = r.u32("tag count").map_err(wire_err)? as usize;
            check_arity(r, n)?;
            let mut dims = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let d = get_string(r, "tag dim")?;
                let e = decode_opt_extent(r)?;
                dims.push((d, e));
            }
            let input = Box::new(decode_plan_node(r)?);
            Plan::TagDims { input, dims }
        }
        19 => Plan::UntagDims {
            input: Box::new(decode_plan_node(r)?),
        },
        20 => {
            let left = Box::new(decode_plan_node(r)?);
            let right = Box::new(decode_plan_node(r)?);
            Plan::MatMul { left, right }
        }
        21 => {
            let op = bin_from_tag(r.u8("elemwise op").map_err(wire_err)?)?;
            let left = Box::new(decode_plan_node(r)?);
            let right = Box::new(decode_plan_node(r)?);
            Plan::ElemWise { op, left, right }
        }
        22 => {
            let gtag = r.u8("graph tag").map_err(wire_err)?;
            match gtag {
                0 => {
                    let damping = f64::from_bits(r.u64("damping").map_err(wire_err)?);
                    let max_iters = r.u64("max iters").map_err(wire_err)? as usize;
                    let epsilon = f64::from_bits(r.u64("epsilon").map_err(wire_err)?);
                    let edges = Box::new(decode_plan_node(r)?);
                    Plan::Graph(GraphOp::PageRank {
                        edges,
                        damping,
                        max_iters,
                        epsilon,
                    })
                }
                1 => {
                    let max_iters = r.u64("max iters").map_err(wire_err)? as usize;
                    let edges = Box::new(decode_plan_node(r)?);
                    Plan::Graph(GraphOp::ConnectedComponents { edges, max_iters })
                }
                2 => Plan::Graph(GraphOp::TriangleCount {
                    edges: Box::new(decode_plan_node(r)?),
                }),
                3 => Plan::Graph(GraphOp::Degrees {
                    edges: Box::new(decode_plan_node(r)?),
                }),
                4 => {
                    let source = r.i64("bfs source").map_err(wire_err)?;
                    Plan::Graph(GraphOp::BfsLevels {
                        edges: Box::new(decode_plan_node(r)?),
                        source,
                    })
                }
                t => return Err(corrupt(format!("bad graph tag {t}"))),
            }
        }
        23 => {
            let max_iters = r.u64("iterate max").map_err(wire_err)? as usize;
            let epsilon = match r.u8("iterate eps flag").map_err(wire_err)? {
                0 => None,
                1 => Some(f64::from_bits(r.u64("iterate eps").map_err(wire_err)?)),
                t => return Err(corrupt(format!("bad iterate eps flag {t}"))),
            };
            let init = Box::new(decode_plan_node(r)?);
            let body = Box::new(decode_plan_node(r)?);
            Plan::Iterate {
                init,
                body,
                max_iters,
                epsilon,
            }
        }
        24 => {
            let parts = r.u64("exchange parts").map_err(wire_err)? as usize;
            let key = match r.u8("exchange key flag").map_err(wire_err)? {
                0 => None,
                1 => Some(get_string(r, "exchange key")?),
                t => return Err(corrupt(format!("bad exchange key flag {t}"))),
            };
            let input = Box::new(decode_plan_node(r)?);
            Plan::Exchange { input, parts, key }
        }
        25 => Plan::Merge {
            input: Box::new(decode_plan_node(r)?),
        },
        t => return Err(corrupt(format!("bad plan tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggExpr;
    use crate::expr::{col, lit, null};
    use crate::infer::edge_schema;
    use bda_storage::{DataType, Field, Schema, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::dimension_bounded("i", 0, 8),
            Field::value("v", DataType::Float64),
            Field::value("s", DataType::Utf8),
        ])
        .unwrap()
    }

    fn roundtrip(p: &Plan) {
        let bytes = encode_plan(p);
        let back = decode_plan(&bytes).unwrap();
        assert_eq!(&back, p);
    }

    #[test]
    fn expr_roundtrip() {
        let exprs = [
            col("a")
                .add(lit(1i64))
                .mul(col("b").cast(DataType::Float64)),
            Expr::Coalesce(vec![col("x"), null(), lit("d")]),
            Expr::Case {
                branches: vec![(col("p").and(col("q").not()), lit(1i64))],
                otherwise: None,
            },
            col("v").is_null().or(col("v").gt(lit(0.5))),
        ];
        for e in &exprs {
            let mut buf = BytesMut::new();
            encode_expr(e, &mut buf);
            let back = decode_expr(&mut Reader::new(&buf)).unwrap();
            assert_eq!(&back, e);
        }
    }

    #[test]
    fn relational_plan_roundtrip() {
        let p = Plan::scan("t", schema())
            .select(col("v").gt(lit(1.5)))
            .join_as(Plan::scan("u", schema()), vec![("i", "i")], JoinType::Left)
            .aggregate(
                vec!["s"],
                vec![
                    AggExpr::new(AggFunc::Sum, col("v"), "total"),
                    AggExpr::count_star("n"),
                ],
            )
            .sort_by(vec!["s"])
            .limit(5);
        roundtrip(&p);
    }

    #[test]
    fn array_plan_roundtrip() {
        let p = Plan::Window {
            input: Plan::Dice {
                input: Plan::Permute {
                    input: Plan::scan("m", schema()).boxed(),
                    order: vec!["i".into()],
                }
                .boxed(),
                ranges: vec![("i".into(), 1, 5)],
            }
            .boxed(),
            radii: vec![("i".into(), 2)],
            aggs: vec![AggExpr::new(AggFunc::Avg, col("v"), "m")],
        };
        roundtrip(&p);
        let p2 = Plan::Fill {
            input: Plan::TagDims {
                input: Plan::UntagDims {
                    input: Plan::scan("m", schema()).boxed(),
                }
                .boxed(),
                dims: vec![("i".into(), Some((0, 8)))],
            }
            .boxed(),
            fill: Value::Float(0.0),
        };
        roundtrip(&p2);
    }

    #[test]
    fn intent_plan_roundtrip() {
        let m = Plan::scan("m", schema());
        roundtrip(&m.clone().matmul(m.clone()));
        roundtrip(&m.clone().elemwise(BinOp::Mul, m.clone()));
        roundtrip(&Plan::Graph(GraphOp::PageRank {
            edges: Plan::scan("e", edge_schema()).boxed(),
            damping: 0.85,
            max_iters: 42,
            epsilon: 1e-9,
        }));
        roundtrip(&Plan::Graph(GraphOp::TriangleCount {
            edges: Plan::scan("e", edge_schema()).boxed(),
        }));
        roundtrip(&Plan::Graph(GraphOp::BfsLevels {
            edges: Plan::scan("e", edge_schema()).boxed(),
            source: -7,
        }));
    }

    #[test]
    fn iterate_and_values_roundtrip() {
        let s = Schema::new(vec![Field::value("x", DataType::Float64)]).unwrap();
        let p = Plan::Iterate {
            init: Plan::Values {
                schema: s.clone(),
                rows: vec![bda_storage::Row(vec![Value::Float(1.0)])],
            }
            .boxed(),
            body: Plan::IterState { schema: s.clone() }
                .project(vec![("x", col("x").mul(lit(0.5)))])
                .boxed(),
            max_iters: 10,
            epsilon: Some(1e-6),
        };
        roundtrip(&p);
        let q = Plan::Iterate {
            init: Plan::Range {
                name: "i".into(),
                lo: 0,
                hi: 4,
            }
            .boxed(),
            body: Plan::IterState {
                schema: crate::infer::infer_schema(&Plan::Range {
                    name: "i".into(),
                    lo: 0,
                    hi: 4,
                })
                .unwrap(),
            }
            .boxed(),
            max_iters: 2,
            epsilon: None,
        };
        roundtrip(&q);
    }

    #[test]
    fn corrupt_and_truncated_rejected() {
        let p = Plan::scan("t", schema()).limit(3);
        let bytes = encode_plan(&p);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(decode_plan(&bad).is_err());
        for cut in [2, 6, bytes.len() - 1] {
            assert!(decode_plan(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = bytes;
        trailing.push(7);
        assert!(decode_plan(&trailing).is_err());
    }

    #[test]
    fn lowered_plans_roundtrip() {
        // The big lowered graph plans stress every node type.
        let pr = Plan::Graph(GraphOp::PageRank {
            edges: Plan::scan("e", edge_schema()).boxed(),
            damping: 0.85,
            max_iters: 30,
            epsilon: 1e-8,
        });
        let lowered = crate::lower::lower_all(&pr).unwrap();
        roundtrip(&lowered);
    }
}
