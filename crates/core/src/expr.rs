//! The scalar expression language.
//!
//! Expressions appear inside `Select` predicates, `Project` lists and
//! aggregate arguments. They follow SQL three-valued-logic semantics for
//! nulls (see [`crate::eval`]) and are shipped to back ends as part of plan
//! trees — never evaluated via per-call remote invocation, per the paper's
//! LINQ analysis.

use std::fmt;

use bda_storage::{DataType, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division on two ints; null on division by zero).
    Div,
    /// Remainder (null on zero divisor).
    Mod,
    /// Equality (three-valued).
    Eq,
    /// Inequality (three-valued).
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Kleene AND.
    And,
    /// Kleene OR.
    Or,
}

impl BinOp {
    /// All operators, in codec-tag order.
    pub const ALL: [BinOp; 13] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
        BinOp::And,
        BinOp::Or,
    ];

    /// True for `+ - * / %`.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }

    /// True for comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for `AND` / `OR`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// The SQL-ish symbol used by the pretty printer and surface language.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// Unary operators and scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation (Kleene).
    Not,
    /// Arithmetic negation.
    Neg,
    /// Null test — total: never returns null.
    IsNull,
    /// Absolute value.
    Abs,
    /// Square root (null for negative input).
    Sqrt,
    /// Floor (returns Int64).
    Floor,
    /// Natural exponential.
    Exp,
    /// Natural logarithm (null for non-positive input).
    Ln,
}

impl UnOp {
    /// All operators, in codec-tag order.
    pub const ALL: [UnOp; 8] = [
        UnOp::Not,
        UnOp::Neg,
        UnOp::IsNull,
        UnOp::Abs,
        UnOp::Sqrt,
        UnOp::Floor,
        UnOp::Exp,
        UnOp::Ln,
    ];

    /// Name used by the pretty printer and surface language.
    pub fn name(self) -> &'static str {
        match self {
            UnOp::Not => "not",
            UnOp::Neg => "-",
            UnOp::IsNull => "isnull",
            UnOp::Abs => "abs",
            UnOp::Sqrt => "sqrt",
            UnOp::Floor => "floor",
            UnOp::Exp => "exp",
            UnOp::Ln => "ln",
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a named input column.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation / function.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        input: Box<Expr>,
    },
    /// Cast to a type ([`Value::cast`] semantics: total, null on failure).
    Cast {
        /// Operand.
        input: Box<Expr>,
        /// Target type.
        to: DataType,
    },
    /// First non-null argument, or null.
    Coalesce(Vec<Expr>),
    /// Searched CASE: first `when` that evaluates to TRUE yields its
    /// `then`; otherwise the `otherwise` branch (or null).
    Case {
        /// (condition, result) pairs, tested in order.
        branches: Vec<(Expr, Expr)>,
        /// Fallback result.
        otherwise: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Collect the column names this expression references, in first-use
    /// order without duplicates. Used by projection pruning.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit_columns(&mut |name| {
            if !out.iter().any(|n| n == name) {
                out.push(name.to_string());
            }
        });
        out
    }

    /// Visit every column reference.
    pub fn visit_columns(&self, f: &mut impl FnMut(&str)) {
        match self {
            Expr::Column(name) => f(name),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::Unary { input, .. } => input.visit_columns(f),
            Expr::Cast { input, .. } => input.visit_columns(f),
            Expr::Coalesce(args) => {
                for a in args {
                    a.visit_columns(f);
                }
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (w, t) in branches {
                    w.visit_columns(f);
                    t.visit_columns(f);
                }
                if let Some(e) = otherwise {
                    e.visit_columns(f);
                }
            }
        }
    }

    /// Rewrite column references through `f` (used when pushing
    /// expressions through renames).
    pub fn rename_columns(&self, f: &impl Fn(&str) -> String) -> Expr {
        match self {
            Expr::Column(name) => Expr::Column(f(name)),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.rename_columns(f)),
                right: Box::new(right.rename_columns(f)),
            },
            Expr::Unary { op, input } => Expr::Unary {
                op: *op,
                input: Box::new(input.rename_columns(f)),
            },
            Expr::Cast { input, to } => Expr::Cast {
                input: Box::new(input.rename_columns(f)),
                to: *to,
            },
            Expr::Coalesce(args) => {
                Expr::Coalesce(args.iter().map(|a| a.rename_columns(f)).collect())
            }
            Expr::Case {
                branches,
                otherwise,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(w, t)| (w.rename_columns(f), t.rename_columns(f)))
                    .collect(),
                otherwise: otherwise.as_ref().map(|e| Box::new(e.rename_columns(f))),
            },
        }
    }

    /// Split a predicate into its top-level AND-ed conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                let mut out = left.conjuncts();
                out.extend(right.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// AND together a list of predicates (empty list ⇒ `true`).
    pub fn and_all(preds: Vec<Expr>) -> Expr {
        preds
            .into_iter()
            .reduce(|a, b| a.and(b))
            .unwrap_or_else(|| lit(true))
    }
}

// --- fluent constructors ----------------------------------------------------

/// A column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

/// A literal.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

/// The null literal.
pub fn null() -> Expr {
    Expr::Literal(Value::Null)
}

macro_rules! binop_method {
    ($fn_name:ident, $op:expr) => {
        /// Build a binary expression.
        pub fn $fn_name(self, rhs: Expr) -> Expr {
            Expr::Binary {
                op: $op,
                left: Box::new(self),
                right: Box::new(rhs),
            }
        }
    };
}

#[allow(clippy::should_implement_trait)]
impl Expr {
    binop_method!(add, BinOp::Add);
    binop_method!(sub, BinOp::Sub);
    binop_method!(mul, BinOp::Mul);
    binop_method!(div, BinOp::Div);
    binop_method!(modulo, BinOp::Mod);
    binop_method!(eq, BinOp::Eq);
    binop_method!(ne, BinOp::Ne);
    binop_method!(lt, BinOp::Lt);
    binop_method!(le, BinOp::Le);
    binop_method!(gt, BinOp::Gt);
    binop_method!(ge, BinOp::Ge);
    binop_method!(and, BinOp::And);
    binop_method!(or, BinOp::Or);

    /// Logical NOT.
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            input: Box::new(self),
        }
    }

    /// Arithmetic negation.
    pub fn neg(self) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            input: Box::new(self),
        }
    }

    /// Null test.
    pub fn is_null(self) -> Expr {
        Expr::Unary {
            op: UnOp::IsNull,
            input: Box::new(self),
        }
    }

    /// Apply a unary function.
    pub fn unary(self, op: UnOp) -> Expr {
        Expr::Unary {
            op,
            input: Box::new(self),
        }
    }

    /// Cast.
    pub fn cast(self, to: DataType) -> Expr {
        Expr::Cast {
            input: Box::new(self),
            to,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => f.write_str(name),
            Expr::Literal(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Unary { op, input } => write!(f, "{}({input})", op.name()),
            Expr::Cast { input, to } => write!(f, "cast({input} as {to})"),
            Expr::Coalesce(args) => {
                write!(f, "coalesce(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                write!(f, "case")?;
                for (w, t) in branches {
                    write!(f, " when {w} then {t}")?;
                }
                if let Some(e) = otherwise {
                    write!(f, " else {e}")?;
                }
                write!(f, " end")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluent_building() {
        let e = col("a").add(lit(1i64)).gt(col("b"));
        assert_eq!(e.to_string(), "((a + 1) > b)");
    }

    #[test]
    fn referenced_columns_deduped_in_order() {
        let e = col("b").add(col("a")).mul(col("b"));
        assert_eq!(e.referenced_columns(), vec!["b", "a"]);
    }

    #[test]
    fn conjunct_splitting() {
        let e = col("a")
            .gt(lit(1i64))
            .and(col("b").lt(lit(2i64)).and(col("c").eq(lit(3i64))));
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 3);
        // OR does not split.
        let e = col("a").gt(lit(1i64)).or(col("b").lt(lit(2i64)));
        assert_eq!(e.conjuncts().len(), 1);
    }

    #[test]
    fn and_all_of_empty_is_true() {
        assert_eq!(Expr::and_all(vec![]), lit(true));
        let one = col("x").is_null();
        assert_eq!(Expr::and_all(vec![one.clone()]), one);
    }

    #[test]
    fn rename_columns_rewrites_everywhere() {
        let e = Expr::Case {
            branches: vec![(col("x").gt(lit(0i64)), col("y"))],
            otherwise: Some(Box::new(Expr::Coalesce(vec![col("x"), null()]))),
        };
        let r = e.rename_columns(&|n| format!("t.{n}"));
        let refs = r.referenced_columns();
        assert!(refs.contains(&"t.x".to_string()) && refs.contains(&"t.y".to_string()));
    }

    #[test]
    fn display_forms() {
        assert_eq!(lit("hi").to_string(), "'hi'");
        assert_eq!(
            col("v").cast(DataType::Float64).to_string(),
            "cast(v as f64)"
        );
        assert_eq!(col("v").is_null().to_string(), "isnull(v)");
    }

    #[test]
    fn op_classification() {
        assert!(BinOp::Add.is_arithmetic() && !BinOp::Add.is_comparison());
        assert!(BinOp::Eq.is_comparison() && !BinOp::Eq.is_logical());
        assert!(BinOp::And.is_logical());
    }
}
