//! Error type for the algebra layer.

use std::fmt;

use bda_storage::StorageError;

/// Errors raised while type-checking, lowering, or evaluating algebra plans.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying storage error.
    Storage(StorageError),
    /// A plan failed schema inference / type checking.
    Plan(String),
    /// A scalar expression was ill-typed.
    Expr(String),
    /// A named dataset was not found in the catalog in scope.
    UnknownDataset(String),
    /// An intent operator could not be lowered (shape prerequisites unmet).
    Lower(String),
    /// A provider was asked to execute an operator outside its capabilities.
    Unsupported {
        /// Provider name.
        provider: String,
        /// Description of the rejected operator.
        op: String,
    },
    /// Control iteration exceeded its iteration bound without converging.
    NoConvergence {
        /// The bound that was exceeded.
        max_iters: usize,
    },
    /// Malformed bytes while decoding a shipped plan.
    Corrupt(String),
    /// A network transport failed (connection, timeout, framing). These
    /// are *transient* by definition: the protocol's requests are
    /// idempotent, so a retry after a transport fault is always safe.
    Net(String),
    /// A remote peer executed the request and reported a non-transient
    /// failure (e.g. an unknown dataset or a plan error on the server).
    /// Unlike [`CoreError::Net`] this is *permanent*: retrying the same
    /// request against the same server will fail the same way.
    Remote {
        /// `host:port` of the server that reported the error.
        addr: String,
        /// The server's error message.
        msg: String,
    },
    /// An explicitly transient error: the wrapped failure is expected to
    /// go away on retry (injected faults, overload, timeouts observed
    /// above the transport layer). The fault-tolerance machinery retries
    /// these and treats everything else as permanent.
    Transient(Box<CoreError>),
    /// The durability layer failed: a WAL append or fsync did not reach
    /// disk, a snapshot could not be written, or recovery found
    /// corruption it refuses to skip. Permanent — the mutation was *not*
    /// acknowledged, and retrying against the same disk will fail the
    /// same way (a replica with healthy storage is the recovery path).
    Durability(String),
}

impl CoreError {
    /// Wrap an error as explicitly transient.
    pub fn transient(e: CoreError) -> CoreError {
        match e {
            already @ CoreError::Transient(_) => already,
            other => CoreError::Transient(Box::new(other)),
        }
    }

    /// Is a retry of the failed operation expected to help?
    ///
    /// The taxonomy: transport faults ([`CoreError::Net`]) and explicit
    /// [`CoreError::Transient`] wrappers are transient; everything else —
    /// type errors, missing datasets, capability mismatches, corrupt
    /// bytes, server-reported failures ([`CoreError::Remote`]) — is
    /// permanent and retrying is wasted work.
    pub fn is_transient(&self) -> bool {
        matches!(self, CoreError::Net(_) | CoreError::Transient(_))
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Plan(msg) => write!(f, "plan error: {msg}"),
            CoreError::Expr(msg) => write!(f, "expression error: {msg}"),
            CoreError::UnknownDataset(name) => write!(f, "unknown dataset `{name}`"),
            CoreError::Lower(msg) => write!(f, "lowering error: {msg}"),
            CoreError::Unsupported { provider, op } => {
                write!(f, "provider `{provider}` does not support {op}")
            }
            CoreError::NoConvergence { max_iters } => {
                write!(
                    f,
                    "iteration did not converge within {max_iters} iterations"
                )
            }
            CoreError::Corrupt(msg) => write!(f, "corrupt plan bytes: {msg}"),
            CoreError::Net(msg) => write!(f, "network error: {msg}"),
            CoreError::Remote { addr, msg } => write!(f, "remote `{addr}`: {msg}"),
            CoreError::Transient(inner) => write!(f, "transient: {inner}"),
            CoreError::Durability(msg) => write!(f, "durability: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Transient(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_errors_convert() {
        let e: CoreError = StorageError::UnknownField("x".into()).into();
        assert!(matches!(e, CoreError::Storage(_)));
        assert!(e.to_string().contains("unknown field"));
    }

    #[test]
    fn taxonomy_classifies_transience() {
        // Transport faults and explicit wrappers are transient.
        assert!(CoreError::Net("connection reset".into()).is_transient());
        assert!(CoreError::transient(CoreError::Plan("overload".into())).is_transient());
        // Semantic errors are permanent.
        assert!(!CoreError::Plan("bad plan".into()).is_transient());
        assert!(!CoreError::UnknownDataset("t".into()).is_transient());
        assert!(!CoreError::Corrupt("bytes".into()).is_transient());
        assert!(!CoreError::Durability("wal append failed".into()).is_transient());
        assert!(!CoreError::Remote {
            addr: "127.0.0.1:7401".into(),
            msg: "unknown dataset".into(),
        }
        .is_transient());
        // Wrapping is idempotent and preserves the inner message.
        let e = CoreError::transient(CoreError::transient(CoreError::Net("x".into())));
        assert!(matches!(&e, CoreError::Transient(inner) if matches!(**inner, CoreError::Net(_))));
        assert!(e.to_string().contains("x"), "{e}");
    }

    #[test]
    fn unsupported_names_provider() {
        let e = CoreError::Unsupported {
            provider: "relstore".into(),
            op: "MatMul".into(),
        };
        let s = e.to_string();
        assert!(s.contains("relstore") && s.contains("MatMul"), "{s}");
    }
}
