//! Error type for the algebra layer.

use std::fmt;

use bda_storage::StorageError;

/// Errors raised while type-checking, lowering, or evaluating algebra plans.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying storage error.
    Storage(StorageError),
    /// A plan failed schema inference / type checking.
    Plan(String),
    /// A scalar expression was ill-typed.
    Expr(String),
    /// A named dataset was not found in the catalog in scope.
    UnknownDataset(String),
    /// An intent operator could not be lowered (shape prerequisites unmet).
    Lower(String),
    /// A provider was asked to execute an operator outside its capabilities.
    Unsupported {
        /// Provider name.
        provider: String,
        /// Description of the rejected operator.
        op: String,
    },
    /// Control iteration exceeded its iteration bound without converging.
    NoConvergence {
        /// The bound that was exceeded.
        max_iters: usize,
    },
    /// Malformed bytes while decoding a shipped plan.
    Corrupt(String),
    /// A network transport failed (connection, timeout, framing, or a
    /// remote peer reported an error).
    Net(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Plan(msg) => write!(f, "plan error: {msg}"),
            CoreError::Expr(msg) => write!(f, "expression error: {msg}"),
            CoreError::UnknownDataset(name) => write!(f, "unknown dataset `{name}`"),
            CoreError::Lower(msg) => write!(f, "lowering error: {msg}"),
            CoreError::Unsupported { provider, op } => {
                write!(f, "provider `{provider}` does not support {op}")
            }
            CoreError::NoConvergence { max_iters } => {
                write!(
                    f,
                    "iteration did not converge within {max_iters} iterations"
                )
            }
            CoreError::Corrupt(msg) => write!(f, "corrupt plan bytes: {msg}"),
            CoreError::Net(msg) => write!(f, "network error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_errors_convert() {
        let e: CoreError = StorageError::UnknownField("x".into()).into();
        assert!(matches!(e, CoreError::Storage(_)));
        assert!(e.to_string().contains("unknown field"));
    }

    #[test]
    fn unsupported_names_provider() {
        let e = CoreError::Unsupported {
            provider: "relstore".into(),
            op: "MatMul".into(),
        };
        let s = e.to_string();
        assert!(s.contains("relstore") && s.contains("MatMul"), "{s}");
    }
}
