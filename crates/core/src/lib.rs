//! # `bda-core`: the Big Data Algebra
//!
//! The primary contribution of Maier's *Desiderata for a Big Data Language*
//! (CIDR 2015): an **algebraic intermediate form** — a LINQ-like Standard
//! Query Operator layer over the fused tabular/array data model — that
//! client languages compile into and back-end providers accept.
//!
//! Crate tour:
//!
//! * [`expr`] / [`eval`] — the scalar expression language and its
//!   (three-valued-logic) semantics, scalar and columnar.
//! * [`agg`] — aggregate functions shared by every back end.
//! * [`plan`] — the algebra plan IR: relational operators, dimension-aware
//!   array operators, *intent* operators (`MatMul`, `Window`, graph
//!   analytics) and control iteration (`Iterate`).
//! * [`infer`] — static semantics: schema inference with dimension-tag
//!   flow.
//! * [`lower`] — rewrites every intent operator into base algebra so that
//!   *any* provider can run it (desideratum 2: translatability).
//! * [`recognize`] — the inverse: rediscovers intent operators in lowered
//!   plans so specialized providers see them natively (desideratum 3:
//!   intent preservation).
//! * [`mod@reference`] — the row-at-a-time oracle evaluator that *defines* the
//!   algebra's dynamic semantics; engines are property-tested against it.
//! * [`convergence`] — the shared convergence criterion for `Iterate`.
//! * [`codec`] — binary plan encoding: plans ship to providers as
//!   expression trees, not as sequences of remote calls.
//! * [`provider`] — the `Provider` trait and capability model that back
//!   ends implement.
//! * [`partition`] / [`pool`] — deterministic dataset partitioning and
//!   the scoped worker pool behind partition-parallel kernels.

pub mod agg;
pub mod codec;
pub mod convergence;
pub mod error;
pub mod eval;
pub mod expr;
pub mod infer;
pub mod lower;
pub mod partition;
pub mod plan;
pub mod pool;
pub mod provider;
pub mod pruning;
pub mod recognize;
pub mod reference;

pub use agg::{AggExpr, AggFunc};
pub use error::CoreError;
pub use expr::{col, lit, null, BinOp, Expr, UnOp};
pub use infer::infer_schema;
pub use partition::Partitioner;
pub use plan::{GraphOp, JoinType, OpKind, Plan};
pub use provider::{CapabilitySet, Provider, ReferenceProvider};
pub use pruning::{stats_from_env, STATS_ENV};

/// Crate-wide result alias.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;
