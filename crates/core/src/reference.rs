//! The reference evaluator: a deliberately simple row-at-a-time
//! interpreter that **defines** the algebra's dynamic semantics.
//!
//! Engines are free to be clever (columnar kernels, hash joins, dense
//! arrays, CSR graphs); the reference evaluator is the oracle they are
//! property-tested against. It favours obviousness over speed everywhere.

use std::collections::HashMap;

use bda_storage::{DataSet, DataType, Row, Schema, Value};

use crate::agg::{Accumulator, AggExpr};
use crate::convergence::converged;
use crate::error::CoreError;
use crate::eval::eval_row;
use crate::infer::infer_schema;
use crate::plan::{GraphOp, JoinType, Plan};

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Where `Scan` leaves find their data.
pub trait DataSource {
    /// Fetch a dataset by name.
    fn dataset(&self, name: &str) -> Result<DataSet>;
}

impl DataSource for HashMap<String, DataSet> {
    fn dataset(&self, name: &str) -> Result<DataSet> {
        self.get(name)
            .cloned()
            .ok_or_else(|| CoreError::UnknownDataset(name.to_string()))
    }
}

/// A source with no datasets (for plans with no scans).
pub struct EmptySource;

impl DataSource for EmptySource {
    fn dataset(&self, name: &str) -> Result<DataSet> {
        Err(CoreError::UnknownDataset(name.to_string()))
    }
}

/// Evaluate a plan against a data source.
pub fn evaluate(plan: &Plan, src: &dyn DataSource) -> Result<DataSet> {
    eval_plan(plan, src, None)
}

thread_local! {
    /// The active per-operator trace for this thread, installed by
    /// [`evaluate_traced`] for the duration of one evaluation.
    static TRACE: std::cell::RefCell<Option<TraceState>> = const { std::cell::RefCell::new(None) };
}

struct TraceState {
    tracer: bda_obs::Tracer,
    site: String,
    parents: Vec<u64>,
}

/// [`evaluate`], recording one `op:{kind}` span per plan node into
/// `tracer` (with output cardinality on success), rooted under `parent`
/// and attributed to `site`. With a disabled tracer this is exactly
/// [`evaluate`].
pub fn evaluate_traced(
    plan: &Plan,
    src: &dyn DataSource,
    tracer: &bda_obs::Tracer,
    parent: Option<u64>,
    site: &str,
) -> Result<DataSet> {
    if !tracer.is_enabled() {
        return evaluate(plan, src);
    }
    // Clear the slot even on unwind so a poisoned evaluation can't leak
    // its trace state into the next one on this thread.
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            TRACE.with(|t| *t.borrow_mut() = None);
        }
    }
    TRACE.with(|t| {
        *t.borrow_mut() = Some(TraceState {
            tracer: tracer.clone(),
            site: site.to_string(),
            parents: parent.into_iter().collect(),
        })
    });
    let _reset = Reset;
    eval_plan(plan, src, None)
}

/// Evaluate one node, opening an `op:{kind}` span when this thread has an
/// active trace (see [`evaluate_traced`]); a plain recursion otherwise.
fn eval_plan(plan: &Plan, src: &dyn DataSource, state: Option<&DataSet>) -> Result<DataSet> {
    let span = TRACE.with(|t| {
        let mut slot = t.borrow_mut();
        slot.as_mut().map(|st| {
            let guard = st.tracer.start(
                st.parents.last().copied(),
                || format!("op:{}", plan.op_kind().name()),
                &st.site,
            );
            if let Some(id) = guard.id() {
                st.parents.push(id);
            }
            guard
        })
    });
    let out = eval_node(plan, src, state);
    if let Some(mut guard) = span {
        TRACE.with(|t| {
            if let Some(st) = t.borrow_mut().as_mut() {
                st.parents.pop();
            }
        });
        if let Ok(ds) = &out {
            guard.set_rows(ds.num_rows());
        }
        guard.finish();
    }
    out
}

fn eval_node(plan: &Plan, src: &dyn DataSource, state: Option<&DataSet>) -> Result<DataSet> {
    let out_schema = infer_schema(plan)?;
    match plan {
        Plan::Scan { dataset, schema } => {
            let ds = src.dataset(dataset)?;
            if ds.schema() != schema {
                return Err(CoreError::Plan(format!(
                    "scan `{dataset}`: bound schema {} does not match stored schema {}",
                    schema,
                    ds.schema()
                )));
            }
            Ok(ds)
        }
        Plan::Values { schema, rows } => {
            DataSet::from_rows(schema.clone(), rows).map_err(Into::into)
        }
        Plan::Range { lo, hi, .. } => {
            let rows: Vec<Row> = (*lo..*hi).map(|i| Row(vec![Value::Int(i)])).collect();
            DataSet::from_rows(out_schema, &rows).map_err(Into::into)
        }
        Plan::IterState { .. } => state
            .cloned()
            .ok_or_else(|| CoreError::Plan("iter_state outside of iterate".into())),
        Plan::Select { input, predicate } => {
            let in_ds = eval_plan(input, src, state)?;
            let in_schema = in_ds.schema().clone();
            let mut rows = Vec::new();
            for r in in_ds.rows()? {
                if eval_row(predicate, &in_schema, &r)? == Value::Bool(true) {
                    rows.push(r);
                }
            }
            DataSet::from_rows(out_schema, &rows).map_err(Into::into)
        }
        Plan::Project { input, exprs } => {
            let in_ds = eval_plan(input, src, state)?;
            let in_schema = in_ds.schema().clone();
            let mut rows = Vec::new();
            for r in in_ds.rows()? {
                let mut vals = Vec::with_capacity(exprs.len());
                for (i, (_, e)) in exprs.iter().enumerate() {
                    let v = eval_row(e, &in_schema, &r)?;
                    vals.push(widen(v, out_schema.field_at(i).dtype));
                }
                rows.push(Row(vals));
            }
            DataSet::from_rows(out_schema, &rows).map_err(Into::into)
        }
        Plan::Join {
            left,
            right,
            on,
            join_type,
            ..
        } => {
            let l = eval_plan(left, src, state)?;
            let r = eval_plan(right, src, state)?;
            join_rows(&l, &r, on, *join_type, out_schema)
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let in_ds = eval_plan(input, src, state)?;
            aggregate_rows(&in_ds, group_by, aggs, out_schema)
        }
        Plan::Union { left, right } => {
            let mut l = eval_plan(left, src, state)?.rows()?;
            let r = eval_plan(right, src, state)?.rows()?;
            l.extend(r);
            DataSet::from_rows(out_schema, &l).map_err(Into::into)
        }
        Plan::Distinct { input } => {
            let in_ds = eval_plan(input, src, state)?;
            let mut seen: Vec<Row> = Vec::new();
            let mut set = std::collections::HashSet::new();
            for r in in_ds.rows()? {
                if set.insert(r.clone()) {
                    seen.push(r);
                }
            }
            DataSet::from_rows(out_schema, &seen).map_err(Into::into)
        }
        Plan::Sort { input, keys } => {
            let in_ds = eval_plan(input, src, state)?;
            let schema = in_ds.schema().clone();
            let mut rows = in_ds.rows()?;
            let key_idx: Vec<(usize, bool)> = keys
                .iter()
                .map(|(k, d)| Ok((schema.index_of(k)?, *d)))
                .collect::<std::result::Result<_, bda_storage::StorageError>>()?;
            rows.sort_by(|a, b| {
                for &(i, desc) in &key_idx {
                    let ord = a.get(i).total_cmp(b.get(i));
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            DataSet::from_rows(out_schema, &rows).map_err(Into::into)
        }
        Plan::Limit { input, skip, fetch } => {
            let rows = eval_plan(input, src, state)?.rows()?;
            let it = rows.into_iter().skip(*skip);
            let rows: Vec<Row> = match fetch {
                Some(n) => it.take(*n).collect(),
                None => it.collect(),
            };
            DataSet::from_rows(out_schema, &rows).map_err(Into::into)
        }
        // Exchange/Merge are partitioning markers with bag-identity
        // semantics: the oracle evaluates straight through them.
        Plan::Exchange { input, .. } | Plan::Merge { input } => eval_plan(input, src, state),
        Plan::Rename { input, .. } | Plan::TagDims { input, .. } | Plan::UntagDims { input } => {
            let in_ds = eval_plan(input, src, state)?;
            let rows = in_ds.rows()?;
            if let Plan::TagDims { .. } = plan {
                validate_dim_rows(&out_schema, &rows)?;
            }
            DataSet::from_rows(out_schema, &rows).map_err(Into::into)
        }
        Plan::Dice { input, ranges } => {
            let in_ds = eval_plan(input, src, state)?;
            let schema = in_ds.schema().clone();
            let idx: Vec<(usize, i64, i64)> = ranges
                .iter()
                .map(|(d, lo, hi)| Ok((schema.index_of(d)?, *lo, *hi)))
                .collect::<std::result::Result<_, bda_storage::StorageError>>()?;
            let mut rows = Vec::new();
            for r in in_ds.rows()? {
                let keep = idx.iter().all(|&(i, lo, hi)| match r.get(i) {
                    Value::Int(c) => *c >= lo && *c < hi,
                    _ => false,
                });
                if keep {
                    rows.push(r);
                }
            }
            DataSet::from_rows(out_schema, &rows).map_err(Into::into)
        }
        Plan::SliceAt { input, dim, index } => {
            let in_ds = eval_plan(input, src, state)?;
            let schema = in_ds.schema().clone();
            let di = schema.index_of(dim)?;
            let keep: Vec<usize> = (0..schema.len()).filter(|&i| i != di).collect();
            let mut rows = Vec::new();
            for r in in_ds.rows()? {
                if r.get(di) == &Value::Int(*index) {
                    rows.push(r.project(&keep));
                }
            }
            DataSet::from_rows(out_schema, &rows).map_err(Into::into)
        }
        Plan::Permute { input, .. } => {
            let in_ds = eval_plan(input, src, state)?;
            let schema = in_ds.schema().clone();
            let order: Vec<usize> = out_schema
                .fields()
                .iter()
                .map(|f| schema.index_of(&f.name))
                .collect::<std::result::Result<_, bda_storage::StorageError>>()?;
            let rows: Vec<Row> = in_ds.rows()?.iter().map(|r| r.project(&order)).collect();
            DataSet::from_rows(out_schema, &rows).map_err(Into::into)
        }
        Plan::Window { input, radii, aggs } => {
            let in_ds = eval_plan(input, src, state)?;
            window_rows(&in_ds, radii, aggs, out_schema)
        }
        Plan::Fill { input, fill } => {
            let in_ds = eval_plan(input, src, state)?;
            fill_rows(&in_ds, fill, out_schema)
        }
        Plan::MatMul { left, right } => {
            let l = eval_plan(left, src, state)?;
            let r = eval_plan(right, src, state)?;
            matmul_rows(&l, &r, out_schema)
        }
        Plan::ElemWise { op, left, right } => {
            let l = eval_plan(left, src, state)?;
            let r = eval_plan(right, src, state)?;
            elemwise_rows(*op, &l, &r, out_schema)
        }
        Plan::Graph(g) => {
            let edges = eval_plan(g.edges(), src, state)?;
            graph_op(g, &edges, out_schema)
        }
        Plan::Iterate {
            init,
            body,
            max_iters,
            epsilon,
        } => {
            // Bounded iteration: convergence is an early exit; reaching the
            // bound returns the last state (it does not error), so an
            // engine may always run exactly `max_iters` steps if it has no
            // cheap convergence test.
            let mut cur = eval_plan(init, src, state)?;
            for _ in 0..*max_iters {
                let next = eval_plan(body, src, Some(&cur))?;
                let done = converged(&cur, &next, *epsilon)?;
                cur = next;
                if done {
                    break;
                }
            }
            Ok(cur)
        }
    }
}

/// Widen ints to floats when the output column is float (projection may
/// infer f64 for a mixed int/float expression).
fn widen(v: Value, to: DataType) -> Value {
    match (&v, to) {
        (Value::Int(x), DataType::Float64) => Value::Float(*x as f64),
        _ => v,
    }
}

fn validate_dim_rows(schema: &Schema, rows: &[Row]) -> Result<()> {
    for (i, f) in schema.fields().iter().enumerate() {
        if !f.is_dimension() {
            continue;
        }
        for r in rows {
            match r.get(i) {
                Value::Int(c) => {
                    if let Some((lo, hi)) = f.extent() {
                        if *c < lo || *c >= hi {
                            return Err(CoreError::Plan(format!(
                                "coordinate {c} of dimension `{}` outside extent [{lo}, {hi})",
                                f.name
                            )));
                        }
                    }
                }
                Value::Null => {
                    return Err(CoreError::Plan(format!(
                        "null coordinate in dimension `{}`",
                        f.name
                    )))
                }
                other => {
                    return Err(CoreError::Plan(format!(
                        "non-integer coordinate {other} in dimension `{}`",
                        f.name
                    )))
                }
            }
        }
    }
    Ok(())
}

fn join_rows(
    l: &DataSet,
    r: &DataSet,
    on: &[(String, String)],
    join_type: JoinType,
    out_schema: Schema,
) -> Result<DataSet> {
    let ls = l.schema().clone();
    let rs = r.schema().clone();
    let l_idx: Vec<usize> = on
        .iter()
        .map(|(a, _)| ls.index_of(a))
        .collect::<std::result::Result<_, bda_storage::StorageError>>()?;
    let r_idx: Vec<usize> = on
        .iter()
        .map(|(_, b)| rs.index_of(b))
        .collect::<std::result::Result<_, bda_storage::StorageError>>()?;
    let l_rows = l.rows()?;
    let r_rows = r.rows()?;
    // Null-rejecting key equality: any null key fails to match.
    let keys_match = |a: &Row, b: &Row| -> bool {
        l_idx.iter().zip(&r_idx).all(|(&li, &ri)| {
            let (x, y) = (a.get(li), b.get(ri));
            !x.is_null() && !y.is_null() && x.grouping_eq(y)
        })
    };
    let mut out = Vec::new();
    match join_type {
        JoinType::Inner => {
            for a in &l_rows {
                for b in &r_rows {
                    if keys_match(a, b) {
                        out.push(a.concat(b));
                    }
                }
            }
        }
        JoinType::Left => {
            for a in &l_rows {
                let mut matched = false;
                for b in &r_rows {
                    if keys_match(a, b) {
                        out.push(a.concat(b));
                        matched = true;
                    }
                }
                if !matched {
                    out.push(a.concat(&Row(vec![Value::Null; rs.len()])));
                }
            }
        }
        JoinType::Semi => {
            for a in &l_rows {
                if r_rows.iter().any(|b| keys_match(a, b)) {
                    out.push(a.clone());
                }
            }
        }
        JoinType::Anti => {
            for a in &l_rows {
                if !r_rows.iter().any(|b| keys_match(a, b)) {
                    out.push(a.clone());
                }
            }
        }
    }
    DataSet::from_rows(out_schema, &out).map_err(Into::into)
}

fn aggregate_rows(
    input: &DataSet,
    group_by: &[String],
    aggs: &[AggExpr],
    out_schema: Schema,
) -> Result<DataSet> {
    let schema = input.schema().clone();
    let key_idx: Vec<usize> = group_by
        .iter()
        .map(|g| schema.index_of(g))
        .collect::<std::result::Result<_, bda_storage::StorageError>>()?;
    let arg_types: Vec<Option<DataType>> = aggs
        .iter()
        .map(|a| match &a.arg {
            Some(e) => crate::eval::infer_expr(e, &schema),
            None => Ok(None),
        })
        .collect::<Result<_>>()?;

    let mut groups: HashMap<Row, Vec<Accumulator>> = HashMap::new();
    let mut order: Vec<Row> = Vec::new();
    for r in input.rows()? {
        let key = r.project(&key_idx);
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter()
                .zip(&arg_types)
                .map(|(a, t)| Accumulator::new(a.func, *t))
                .collect()
        });
        for (acc, a) in accs.iter_mut().zip(aggs) {
            let v = match &a.arg {
                Some(e) => eval_row(e, &schema, &r)?,
                None => Value::Bool(true), // count(*) marker
            };
            acc.update(&v)?;
        }
    }
    // Global aggregate over empty input still yields one row.
    if group_by.is_empty() && groups.is_empty() {
        let accs: Vec<Accumulator> = aggs
            .iter()
            .zip(&arg_types)
            .map(|(a, t)| Accumulator::new(a.func, *t))
            .collect();
        groups.insert(Row::new(), accs);
        order.push(Row::new());
    }
    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let accs = &groups[&key];
        let mut vals = key.0.clone();
        for (i, acc) in accs.iter().enumerate() {
            let v = acc.finish();
            vals.push(widen(v, out_schema.field_at(key_idx.len() + i).dtype));
        }
        out.push(Row(vals));
    }
    DataSet::from_rows(out_schema, &out).map_err(Into::into)
}

fn window_rows(
    input: &DataSet,
    radii: &[(String, i64)],
    aggs: &[AggExpr],
    out_schema: Schema,
) -> Result<DataSet> {
    let schema = input.schema().clone();
    let dim_idx: Vec<usize> = schema
        .fields()
        .iter()
        .enumerate()
        .filter(|(_, f)| f.is_dimension())
        .map(|(i, _)| i)
        .collect();
    // radius per dimension, in schema dimension order.
    let radius: Vec<i64> = dim_idx
        .iter()
        .map(|&i| {
            let name = &schema.field_at(i).name;
            radii
                .iter()
                .find(|(d, _)| d == name)
                .map(|(_, r)| *r)
                .expect("validated by infer")
        })
        .collect();
    let rows = input.rows()?;
    let coords: Vec<Vec<i64>> = rows
        .iter()
        .map(|r| {
            dim_idx
                .iter()
                .map(|&i| match r.get(i) {
                    Value::Int(c) => Ok(*c),
                    other => Err(CoreError::Plan(format!(
                        "non-integer coordinate {other} in window input"
                    ))),
                })
                .collect()
        })
        .collect::<Result<_>>()?;
    let arg_types: Vec<Option<DataType>> = aggs
        .iter()
        .map(|a| match &a.arg {
            Some(e) => crate::eval::infer_expr(e, &schema),
            None => Ok(None),
        })
        .collect::<Result<_>>()?;

    let mut out = Vec::with_capacity(rows.len());
    for (i, r) in rows.iter().enumerate() {
        let mut accs: Vec<Accumulator> = aggs
            .iter()
            .zip(&arg_types)
            .map(|(a, t)| Accumulator::new(a.func, *t))
            .collect();
        for (j, other) in rows.iter().enumerate() {
            let inside = coords[i]
                .iter()
                .zip(&coords[j])
                .zip(&radius)
                .all(|((&a, &b), &rad)| (a - b).abs() <= rad);
            if !inside {
                continue;
            }
            for (acc, a) in accs.iter_mut().zip(aggs) {
                let v = match &a.arg {
                    Some(e) => eval_row(e, &schema, other)?,
                    None => Value::Bool(true),
                };
                acc.update(&v)?;
            }
        }
        let mut vals: Vec<Value> = dim_idx.iter().map(|&d| r.get(d).clone()).collect();
        for (k, acc) in accs.iter().enumerate() {
            vals.push(widen(
                acc.finish(),
                out_schema.field_at(dim_idx.len() + k).dtype,
            ));
        }
        out.push(Row(vals));
    }
    DataSet::from_rows(out_schema, &out).map_err(Into::into)
}

fn fill_rows(input: &DataSet, fill: &Value, out_schema: Schema) -> Result<DataSet> {
    let schema = input.schema().clone();
    let bounds = input.bounding_box()?;
    let dim_idx: Vec<usize> = schema
        .fields()
        .iter()
        .enumerate()
        .filter(|(_, f)| f.is_dimension())
        .map(|(i, _)| i)
        .collect();
    let val_idx: Vec<usize> = schema
        .fields()
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_dimension())
        .map(|(i, _)| i)
        .collect();
    // Last row per coordinate wins (array semantics; matches DenseChunk).
    let mut cells: HashMap<Vec<i64>, Row> = HashMap::new();
    for r in input.rows()? {
        let coords: Vec<i64> = dim_idx
            .iter()
            .map(|&i| match r.get(i) {
                Value::Int(c) => Ok(*c),
                other => Err(CoreError::Plan(format!(
                    "non-integer coordinate {other} in fill input"
                ))),
            })
            .collect::<Result<_>>()?;
        if !bounds.contains(&coords) {
            return Err(CoreError::Plan(format!(
                "fill: coordinates {coords:?} outside declared extents"
            )));
        }
        cells.insert(coords, r);
    }
    let mut out = Vec::with_capacity(bounds.volume());
    for coords in bounds.iter_coords() {
        match cells.get(&coords) {
            Some(r) => {
                // Re-emit in schema order (dims then values as stored).
                out.push(r.clone());
            }
            None => {
                let mut vals = vec![Value::Null; schema.len()];
                for (d, &i) in dim_idx.iter().enumerate() {
                    vals[i] = Value::Int(coords[d]);
                }
                for &i in &val_idx {
                    vals[i] = fill.cast(schema.field_at(i).dtype);
                }
                out.push(Row(vals));
            }
        }
    }
    DataSet::from_rows(out_schema, &out).map_err(Into::into)
}

fn matmul_rows(l: &DataSet, r: &DataSet, out_schema: Schema) -> Result<DataSet> {
    // Inputs validated as 2-D single-numeric-value by infer.
    let cell = |ds: &DataSet| -> Result<Vec<(i64, i64, f64)>> {
        let schema = ds.schema().clone();
        let dims: Vec<usize> = schema
            .fields()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_dimension())
            .map(|(i, _)| i)
            .collect();
        let val = schema
            .fields()
            .iter()
            .position(|f| !f.is_dimension())
            .expect("validated");
        let mut out = Vec::new();
        for row in ds.rows()? {
            let (a, b) = (row.get(dims[0]), row.get(dims[1]));
            let v = row.get(val);
            if v.is_null() {
                continue; // null cells contribute nothing
            }
            out.push((
                a.as_int().map_err(CoreError::from)?,
                b.as_int().map_err(CoreError::from)?,
                v.as_float().map_err(CoreError::from)?,
            ));
        }
        Ok(out)
    };
    let lc = cell(l)?;
    let rc = cell(r)?;
    let mut by_k: HashMap<i64, Vec<(i64, f64)>> = HashMap::new();
    for &(k, j, v) in &rc {
        by_k.entry(k).or_default().push((j, v));
    }
    let mut acc: HashMap<(i64, i64), f64> = HashMap::new();
    for &(i, k, lv) in &lc {
        if let Some(cols) = by_k.get(&k) {
            for &(j, rv) in cols {
                *acc.entry((i, j)).or_insert(0.0) += lv * rv;
            }
        }
    }
    let mut keys: Vec<(i64, i64)> = acc.keys().copied().collect();
    keys.sort_unstable();
    let rows: Vec<Row> = keys
        .into_iter()
        .map(|(i, j)| {
            Row(vec![
                Value::Int(i),
                Value::Int(j),
                Value::Float(acc[&(i, j)]),
            ])
        })
        .collect();
    DataSet::from_rows(out_schema, &rows).map_err(Into::into)
}

fn elemwise_rows(
    op: crate::expr::BinOp,
    l: &DataSet,
    r: &DataSet,
    out_schema: Schema,
) -> Result<DataSet> {
    let index = |ds: &DataSet| -> Result<HashMap<Vec<i64>, Value>> {
        let schema = ds.schema().clone();
        let dims: Vec<usize> = schema
            .fields()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_dimension())
            .map(|(i, _)| i)
            .collect();
        let val = schema
            .fields()
            .iter()
            .position(|f| !f.is_dimension())
            .expect("validated");
        let mut out = HashMap::new();
        for row in ds.rows()? {
            let coords: Vec<i64> = dims
                .iter()
                .map(|&i| row.get(i).as_int().map_err(CoreError::from))
                .collect::<Result<_>>()?;
            out.insert(coords, row.get(val).clone());
        }
        Ok(out)
    };
    let li = index(l)?;
    let ri = index(r)?;
    let out_val_t = out_schema.values()[0].dtype;
    let mut keys: Vec<&Vec<i64>> = li.keys().filter(|k| ri.contains_key(*k)).collect();
    keys.sort_unstable();
    let mut rows = Vec::with_capacity(keys.len());
    for k in keys {
        let v = crate::eval::binary_scalar(op, &li[k], &ri[k])?;
        let mut vals: Vec<Value> = k.iter().map(|&c| Value::Int(c)).collect();
        vals.push(widen(v, out_val_t));
        rows.push(Row(vals));
    }
    DataSet::from_rows(out_schema, &rows).map_err(Into::into)
}

// ---------------------------------------------------------------------------
// Graph semantics
// ---------------------------------------------------------------------------

/// Distinct edges plus the sorted vertex set of a graph input.
pub type EdgeList = (Vec<(i64, i64)>, Vec<i64>);

/// Extract the distinct edge list and vertex set from an edges dataset.
pub fn edge_list(edges: &DataSet) -> Result<EdgeList> {
    let schema = edges.schema().clone();
    let si = schema.index_of("src")?;
    let di = schema.index_of("dst")?;
    let mut es = Vec::new();
    for r in edges.rows()? {
        let (s, d) = (r.get(si), r.get(di));
        if s.is_null() || d.is_null() {
            continue; // null endpoints are not edges
        }
        es.push((
            s.as_int().map_err(CoreError::from)?,
            d.as_int().map_err(CoreError::from)?,
        ));
    }
    es.sort_unstable();
    es.dedup();
    let mut vs: Vec<i64> = es.iter().flat_map(|&(s, d)| [s, d]).collect();
    vs.sort_unstable();
    vs.dedup();
    Ok((es, vs))
}

fn graph_op(g: &GraphOp, edges: &DataSet, out_schema: Schema) -> Result<DataSet> {
    let (es, vs) = edge_list(edges)?;
    let rows: Vec<Row> = match g {
        GraphOp::PageRank {
            damping,
            max_iters,
            epsilon,
            ..
        } => {
            let ranks = pagerank_semantics(&es, &vs, *damping, *max_iters, *epsilon);
            vs.iter()
                .zip(ranks)
                .map(|(&v, r)| Row(vec![Value::Int(v), Value::Float(r)]))
                .collect()
        }
        GraphOp::ConnectedComponents { max_iters, .. } => {
            let comp = components_semantics(&es, &vs, *max_iters);
            vs.iter()
                .zip(comp)
                .map(|(&v, c)| Row(vec![Value::Int(v), Value::Int(c)]))
                .collect()
        }
        GraphOp::TriangleCount { .. } => {
            let n = triangles_semantics(&es);
            vec![Row(vec![Value::Int(n)])]
        }
        GraphOp::Degrees { .. } => {
            let mut deg: HashMap<i64, i64> = vs.iter().map(|&v| (v, 0)).collect();
            for &(s, _) in &es {
                *deg.get_mut(&s).expect("src in vertex set") += 1;
            }
            vs.iter()
                .map(|&v| Row(vec![Value::Int(v), Value::Int(deg[&v])]))
                .collect()
        }
        GraphOp::BfsLevels { source, .. } => bfs_semantics(&es, &vs, *source)
            .into_iter()
            .map(|(v, l)| Row(vec![Value::Int(v), Value::Int(l)]))
            .collect(),
    };
    DataSet::from_rows(out_schema, &rows).map_err(Into::into)
}

/// Defining semantics of PageRank on the **distinct** edge set:
/// `rank'(v) = (1-d)/N + d * Σ_{(u,v) ∈ E} rank(u) / outdeg(u)`,
/// iterated from the uniform vector until the L1 change drops below
/// `epsilon` or `max_iters` is reached (whichever first; the last iterate
/// is returned either way). Dangling mass is not redistributed — workloads
/// should avoid dangling vertices if a probability vector is desired.
pub fn pagerank_semantics(
    es: &[(i64, i64)],
    vs: &[i64],
    damping: f64,
    max_iters: usize,
    epsilon: f64,
) -> Vec<f64> {
    let n = vs.len();
    if n == 0 {
        return Vec::new();
    }
    let vidx: HashMap<i64, usize> = vs.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut outdeg = vec![0usize; n];
    for &(s, _) in es {
        outdeg[vidx[&s]] += 1;
    }
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..max_iters {
        let mut next = vec![(1.0 - damping) / n as f64; n];
        for &(s, d) in es {
            let si = vidx[&s];
            next[vidx[&d]] += damping * rank[si] / outdeg[si] as f64;
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        if delta < epsilon {
            break;
        }
    }
    rank
}

/// Defining semantics of connected components (undirected view): Jacobi
/// label propagation to the minimum vertex id — bounded iteration, early
/// exit on fixpoint, last state returned at the bound.
pub fn components_semantics(es: &[(i64, i64)], vs: &[i64], max_iters: usize) -> Vec<i64> {
    let vidx: HashMap<i64, usize> = vs.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut label: Vec<i64> = vs.to_vec();
    for _ in 0..max_iters.max(1) {
        let mut changed = false;
        let mut next = label.clone();
        for &(s, d) in es {
            let (si, di) = (vidx[&s], vidx[&d]);
            if label[si] < next[di] {
                next[di] = label[si];
                changed = true;
            }
            if label[di] < next[si] {
                next[si] = label[di];
                changed = true;
            }
        }
        label = next;
        if !changed {
            break;
        }
    }
    label
}

/// Defining semantics of BFS levels: shortest hop count from `source` on
/// the distinct edge set; only reachable vertices appear (the source is
/// reachable at level 0 iff it occurs in the graph).
pub fn bfs_semantics(es: &[(i64, i64)], vs: &[i64], source: i64) -> Vec<(i64, i64)> {
    if !vs.contains(&source) {
        return Vec::new();
    }
    let mut adj: HashMap<i64, Vec<i64>> = HashMap::new();
    for &(s, d) in es {
        adj.entry(s).or_default().push(d);
    }
    let mut level: HashMap<i64, i64> = HashMap::new();
    level.insert(source, 0);
    let mut frontier = vec![source];
    let mut depth = 0i64;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for u in &frontier {
            if let Some(ns) = adj.get(u) {
                for &v in ns {
                    level.entry(v).or_insert_with(|| {
                        next.push(v);
                        depth
                    });
                }
            }
        }
        frontier = next;
    }
    let mut out: Vec<(i64, i64)> = level.into_iter().collect();
    out.sort_unstable();
    out
}

/// Defining semantics of the directed triangle count on the distinct edge
/// set: the number of vertex triples forming a 3-cycle
/// `a → b → c → a` (each cycle counted once).
pub fn triangles_semantics(es: &[(i64, i64)]) -> i64 {
    let set: std::collections::HashSet<(i64, i64)> = es.iter().copied().collect();
    let mut by_src: HashMap<i64, Vec<i64>> = HashMap::new();
    for &(s, d) in es {
        by_src.entry(s).or_default().push(d);
    }
    let mut count = 0i64;
    for &(a, b) in es {
        if let Some(cs) = by_src.get(&b) {
            for &c in cs {
                if set.contains(&(c, a)) {
                    count += 1;
                }
            }
        }
    }
    // Each 3-cycle is found three times (once per starting edge).
    count / 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggExpr, AggFunc};
    use crate::expr::{col, lit};
    use crate::infer::edge_schema;
    use bda_storage::{Column, Field};

    fn src_with(name: &str, ds: DataSet) -> HashMap<String, DataSet> {
        let mut m = HashMap::new();
        m.insert(name.to_string(), ds);
        m
    }

    fn sales() -> DataSet {
        DataSet::from_columns(vec![
            ("region", Column::from(vec!["w", "e", "w", "e", "w"])),
            ("amount", Column::from(vec![10i64, 20, 30, 40, 50])),
        ])
        .unwrap()
    }

    fn scan_sales() -> Plan {
        Plan::scan("sales", sales().schema().clone())
    }

    #[test]
    fn select_project_pipeline() {
        let plan = scan_sales()
            .select(col("amount").gt(lit(15i64)))
            .project(vec![
                ("r", col("region")),
                ("double", col("amount").mul(lit(2i64))),
            ]);
        let out = evaluate(&plan, &src_with("sales", sales())).unwrap();
        assert_eq!(out.num_rows(), 4);
        let rows = out.sorted_rows().unwrap();
        assert_eq!(rows[0], Row(vec![Value::from("e"), Value::Int(40)]));
    }

    #[test]
    fn aggregate_with_groups() {
        let plan = scan_sales().aggregate(
            vec!["region"],
            vec![
                AggExpr::new(AggFunc::Sum, col("amount"), "total"),
                AggExpr::count_star("n"),
            ],
        );
        let out = evaluate(&plan, &src_with("sales", sales())).unwrap();
        let rows = out.sorted_rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            Row(vec![Value::from("e"), Value::Int(60), Value::Int(2)])
        );
        assert_eq!(
            rows[1],
            Row(vec![Value::from("w"), Value::Int(90), Value::Int(3)])
        );
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let plan = scan_sales()
            .select(lit(false))
            .aggregate(vec![], vec![AggExpr::count_star("n")]);
        let out = evaluate(&plan, &src_with("sales", sales())).unwrap();
        assert_eq!(out.rows().unwrap(), vec![Row(vec![Value::Int(0)])]);
    }

    #[test]
    fn joins_all_types() {
        let left = DataSet::from_columns(vec![("k", Column::from(vec![1i64, 2, 3]))]).unwrap();
        let right = DataSet::from_columns(vec![
            ("k", Column::from(vec![2i64, 3, 3])),
            ("v", Column::from(vec!["a", "b", "c"])),
        ])
        .unwrap();
        let mut src = src_with("l", left.clone());
        src.insert("r".into(), right.clone());
        let scan_l = Plan::scan("l", left.schema().clone());
        let scan_r = Plan::scan("r", right.schema().clone());

        let inner = scan_l.clone().join(scan_r.clone(), vec![("k", "k")]);
        assert_eq!(evaluate(&inner, &src).unwrap().num_rows(), 3);

        let left_j = scan_l
            .clone()
            .join_as(scan_r.clone(), vec![("k", "k")], JoinType::Left);
        let out = evaluate(&left_j, &src).unwrap();
        assert_eq!(out.num_rows(), 4);
        assert!(out
            .rows()
            .unwrap()
            .iter()
            .any(|r| r.get(0) == &Value::Int(1) && r.get(1).is_null()));

        let semi = scan_l
            .clone()
            .join_as(scan_r.clone(), vec![("k", "k")], JoinType::Semi);
        assert_eq!(evaluate(&semi, &src).unwrap().num_rows(), 2);

        let anti = scan_l.join_as(scan_r, vec![("k", "k")], JoinType::Anti);
        let out = evaluate(&anti, &src).unwrap();
        assert_eq!(out.rows().unwrap(), vec![Row(vec![Value::Int(1)])]);
    }

    #[test]
    fn null_keys_never_match() {
        let l = DataSet::from_rows(
            Schema::new(vec![Field::value("k", DataType::Int64)]).unwrap(),
            &[Row(vec![Value::Null]), Row(vec![Value::Int(1)])],
        )
        .unwrap();
        let mut src = HashMap::new();
        src.insert("l".to_string(), l.clone());
        let p = Plan::scan("l", l.schema().clone())
            .join(Plan::scan("l", l.schema().clone()), vec![("k", "k")]);
        assert_eq!(evaluate(&p, &src).unwrap().num_rows(), 1);
    }

    #[test]
    fn distinct_sort_limit() {
        let plan = scan_sales()
            .project(vec![("region", col("region"))])
            .distinct()
            .sort_by(vec!["region"])
            .limit(1);
        let out = evaluate(&plan, &src_with("sales", sales())).unwrap();
        assert_eq!(out.rows().unwrap(), vec![Row(vec![Value::from("e")])]);
    }

    #[test]
    fn union_and_rename() {
        let plan = scan_sales()
            .union(scan_sales())
            .rename(vec![("amount", "amt")]);
        let out = evaluate(&plan, &src_with("sales", sales())).unwrap();
        assert_eq!(out.num_rows(), 10);
        assert!(out.schema().field("amt").is_ok());
    }

    #[test]
    fn range_and_values() {
        let p = Plan::Range {
            name: "i".into(),
            lo: -1,
            hi: 2,
        };
        let out = evaluate(&p, &EmptySource).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.schema().ndims(), 1);
    }

    fn matrix_src() -> (HashMap<String, DataSet>, Plan, Plan) {
        let a = bda_storage::dataset::matrix_dataset(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b =
            bda_storage::dataset::matrix_dataset(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        // Rename b's dims to avoid join ambiguity at the schema level:
        // matmul itself keys on dimension order, not names.
        let mut src = HashMap::new();
        src.insert("a".to_string(), a.clone());
        src.insert("b".to_string(), b.clone());
        (
            src,
            Plan::scan("a", a.schema().clone()),
            Plan::scan("b", b.schema().clone()).rename(vec![("row", "k"), ("col", "j")]),
        )
    }

    #[test]
    fn matmul_reference() {
        let (src, a, b) = matrix_src();
        let p = a.matmul(b);
        let out = evaluate(&p, &src).unwrap();
        // [[1,2,3],[4,5,6]] * [[7,8],[9,10],[11,12]] = [[58,64],[139,154]]
        let (r, c, data) = bda_storage::dataset::dataset_matrix(&out).unwrap();
        assert_eq!((r, c), (2, 2));
        assert_eq!(data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn elemwise_reference() {
        let (src, a, _) = matrix_src();
        let p = a.clone().elemwise(crate::expr::BinOp::Add, a);
        let out = evaluate(&p, &src).unwrap();
        let (_, _, data) = bda_storage::dataset::dataset_matrix(&out).unwrap();
        assert_eq!(data, vec![2., 4., 6., 8., 10., 12.]);
    }

    #[test]
    fn dice_slice_permute() {
        let (src, a, _) = matrix_src();
        let diced = Plan::Dice {
            input: a.clone().boxed(),
            ranges: vec![("col".into(), 1, 3)],
        };
        assert_eq!(evaluate(&diced, &src).unwrap().num_rows(), 4);
        let sliced = Plan::SliceAt {
            input: a.clone().boxed(),
            dim: "row".into(),
            index: 1,
        };
        let out = evaluate(&sliced, &src).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.schema().ndims(), 1);
        let permuted = Plan::Permute {
            input: a.boxed(),
            order: vec!["col".into(), "row".into()],
        };
        let out = evaluate(&permuted, &src).unwrap();
        assert_eq!(out.schema().names(), vec!["col", "row", "v"]);
        assert_eq!(out.num_rows(), 6);
    }

    #[test]
    fn window_moving_average() {
        // 1-D array [0..4) with values 1,2,3,4; radius 1 average.
        let schema = Schema::new(vec![
            Field::dimension_bounded("i", 0, 4),
            Field::value("v", DataType::Float64),
        ])
        .unwrap();
        let ds = DataSet::from_rows(
            schema.clone(),
            &(0..4)
                .map(|i| Row(vec![Value::Int(i), Value::Float((i + 1) as f64)]))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let p = Plan::Window {
            input: Plan::scan("x", schema).boxed(),
            radii: vec![("i".into(), 1)],
            aggs: vec![AggExpr::new(AggFunc::Avg, col("v"), "m")],
        };
        let out = evaluate(&p, &src_with("x", ds)).unwrap();
        let rows = out.sorted_rows().unwrap();
        assert_eq!(rows[0], Row(vec![Value::Int(0), Value::Float(1.5)]));
        assert_eq!(rows[1], Row(vec![Value::Int(1), Value::Float(2.0)]));
        assert_eq!(rows[3], Row(vec![Value::Int(3), Value::Float(3.5)]));
    }

    #[test]
    fn fill_densifies() {
        let schema = Schema::new(vec![
            Field::dimension_bounded("i", 0, 3),
            Field::value("v", DataType::Int64),
        ])
        .unwrap();
        let ds =
            DataSet::from_rows(schema.clone(), &[Row(vec![Value::Int(1), Value::Int(9)])]).unwrap();
        let p = Plan::Fill {
            input: Plan::scan("x", schema).boxed(),
            fill: Value::Int(0),
        };
        let out = evaluate(&p, &src_with("x", ds)).unwrap();
        let rows = out.sorted_rows().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], Row(vec![Value::Int(0), Value::Int(0)]));
        assert_eq!(rows[1], Row(vec![Value::Int(1), Value::Int(9)]));
    }

    #[test]
    fn tag_dims_validates_extents() {
        let ds = DataSet::from_columns(vec![("i", Column::from(vec![0i64, 5]))]).unwrap();
        let p = Plan::TagDims {
            input: Plan::scan("t", ds.schema().clone()).boxed(),
            dims: vec![("i".into(), Some((0, 3)))],
        };
        assert!(evaluate(&p, &src_with("t", ds)).is_err());
    }

    fn tiny_graph() -> DataSet {
        // 0 -> 1, 1 -> 2, 2 -> 0 (a 3-cycle) plus 3 -> 0.
        DataSet::from_rows(
            edge_schema(),
            &[
                Row(vec![Value::Int(0), Value::Int(1)]),
                Row(vec![Value::Int(1), Value::Int(2)]),
                Row(vec![Value::Int(2), Value::Int(0)]),
                Row(vec![Value::Int(3), Value::Int(0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn pagerank_sums_to_one_without_dangling() {
        let edges = tiny_graph();
        let p = Plan::Graph(GraphOp::PageRank {
            edges: Plan::scan("e", edge_schema()).boxed(),
            damping: 0.85,
            max_iters: 100,
            epsilon: 1e-12,
        });
        let out = evaluate(&p, &src_with("e", edges)).unwrap();
        let total: f64 = out
            .rows()
            .unwrap()
            .iter()
            .map(|r| r.get(1).as_float().unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "total rank {total}");
    }

    #[test]
    fn connected_components_and_triangles() {
        let edges = tiny_graph();
        let p = Plan::Graph(GraphOp::ConnectedComponents {
            edges: Plan::scan("e", edge_schema()).boxed(),
            max_iters: 100,
        });
        let out = evaluate(&p, &src_with("e", edges.clone())).unwrap();
        // All four vertices connect (3 -> 0): single component 0.
        for r in out.rows().unwrap() {
            assert_eq!(r.get(1), &Value::Int(0));
        }
        let p = Plan::Graph(GraphOp::TriangleCount {
            edges: Plan::scan("e", edge_schema()).boxed(),
        });
        let out = evaluate(&p, &src_with("e", edges.clone())).unwrap();
        assert_eq!(out.rows().unwrap(), vec![Row(vec![Value::Int(1)])]);
        let p = Plan::Graph(GraphOp::Degrees {
            edges: Plan::scan("e", edge_schema()).boxed(),
        });
        let out = evaluate(&p, &src_with("e", edges)).unwrap();
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn iterate_converges_and_bounds() {
        // State: single float halved each step; converges to ~0.
        let schema = Schema::new(vec![Field::value("x", DataType::Float64)]).unwrap();
        let init = Plan::Values {
            schema: schema.clone(),
            rows: vec![Row(vec![Value::Float(1.0)])],
        };
        let body = Plan::IterState {
            schema: schema.clone(),
        }
        .project(vec![("x", col("x").mul(lit(0.5)))]);
        let p = Plan::Iterate {
            init: init.clone().boxed(),
            body: body.clone().boxed(),
            max_iters: 100,
            epsilon: Some(1e-6),
        };
        let out = evaluate(&p, &EmptySource).unwrap();
        let x = out.rows().unwrap()[0].get(0).as_float().unwrap();
        assert!(x < 1e-5, "{x}");

        // Bounded: stops after exactly 3 steps and returns the last state.
        let bounded = Plan::Iterate {
            init: init.boxed(),
            body: body.boxed(),
            max_iters: 3,
            epsilon: Some(1e-9),
        };
        let out = evaluate(&bounded, &EmptySource).unwrap();
        let x = out.rows().unwrap()[0].get(0).as_float().unwrap();
        assert!((x - 0.125).abs() < 1e-12, "{x}");
    }

    #[test]
    fn scan_schema_mismatch_detected() {
        let plan = Plan::scan(
            "sales",
            Schema::new(vec![Field::value("other", DataType::Int64)]).unwrap(),
        );
        assert!(matches!(
            evaluate(&plan, &src_with("sales", sales())),
            Err(CoreError::Plan(_))
        ));
    }

    #[test]
    fn bfs_levels_reference() {
        let edges = tiny_graph();
        let p = Plan::Graph(GraphOp::BfsLevels {
            edges: Plan::scan("e", edge_schema()).boxed(),
            source: 3,
        });
        let out = evaluate(&p, &src_with("e", edges)).unwrap();
        let rows = out.sorted_rows().unwrap();
        // 3 -> 0 -> 1 -> 2 is the shortest-path tree from 3.
        assert_eq!(
            rows,
            vec![
                Row(vec![Value::Int(0), Value::Int(1)]),
                Row(vec![Value::Int(1), Value::Int(2)]),
                Row(vec![Value::Int(2), Value::Int(3)]),
                Row(vec![Value::Int(3), Value::Int(0)]),
            ]
        );
    }

    #[test]
    fn triangle_semantics_unit() {
        // Two directed triangles sharing an edge.
        let es = vec![(0, 1), (1, 2), (2, 0), (1, 3), (3, 2), (2, 1)];
        // cycles: 0→1→2→0 and 1→3→2→1.
        assert_eq!(triangles_semantics(&es), 2);
        assert_eq!(triangles_semantics(&[(0, 1), (1, 0)]), 0);
    }
}
