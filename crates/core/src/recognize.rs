//! Intent recognition: recovering intent operators from lowered plans.
//!
//! Desideratum 3 (*intent preservation*): "if the original function is
//! matrix multiply, it should be recognizable as such at a server that has
//! a direct implementation of matrix multiply". A client (or a naive
//! middle tier) may hand us the *lowered* join/aggregate form; this module
//! pattern-matches that shape and rebuilds the intent node, so the
//! federation planner can route it to a linear-algebra provider.
//!
//! Scope: the recognizers match the canonical shapes produced by
//! [`crate::lower`] (modulo column names, which are matched positionally).
//! Recognizing arbitrary semantically-equivalent plans is undecidable in
//! general; the experiment F1 quantifies what canonical-shape recognition
//! buys.

use crate::agg::AggFunc;
use crate::expr::{BinOp, Expr, UnOp};
use crate::plan::{JoinType, Plan};

/// Recursively apply intent recognition at every node, bottom-up.
pub fn recognize_all(plan: &Plan) -> Plan {
    plan.transform_up(&|node| {
        if let Some(m) = recognize_matmul(&node) {
            return m;
        }
        if let Some(e) = recognize_elemwise(&node) {
            return e;
        }
        node
    })
}

/// Try to recognize the canonical lowered matrix-multiply shape rooted at
/// `plan`, returning the equivalent [`Plan::MatMul`].
pub fn recognize_matmul(plan: &Plan) -> Option<Plan> {
    // TagDims([i, j]) over ...
    let Plan::TagDims { input, dims } = plan else {
        return None;
    };
    if dims.len() != 2 {
        return None;
    }
    // ... Rename over ...
    let Plan::Rename { input, .. } = input.as_ref() else {
        return None;
    };
    // ... Select(not isnull(v)) over ...
    let Plan::Select { input, predicate } = input.as_ref() else {
        return None;
    };
    let Expr::Unary {
        op: UnOp::Not,
        input: not_arg,
    } = predicate
    else {
        return None;
    };
    let Expr::Unary {
        op: UnOp::IsNull, ..
    } = not_arg.as_ref()
    else {
        return None;
    };
    // ... Aggregate(group [gi, gj], [sum(p)]) over ...
    let Plan::Aggregate {
        input,
        group_by,
        aggs,
    } = input.as_ref()
    else {
        return None;
    };
    if group_by.len() != 2 || aggs.len() != 1 || aggs[0].func != AggFunc::Sum {
        return None;
    }
    let Some(Expr::Column(sum_col)) = &aggs[0].arg else {
        return None;
    };
    // ... Project([i, j, p = lv * rv]) over ...
    let Plan::Project { input, exprs } = input.as_ref() else {
        return None;
    };
    if exprs.len() != 3 {
        return None;
    }
    // The two group columns must be passthroughs; the summed column a product.
    let passthrough = |name: &str| -> Option<String> {
        exprs.iter().find_map(|(n, e)| {
            if n == name {
                if let Expr::Column(c) = e {
                    return Some(c.clone());
                }
            }
            None
        })
    };
    let i_src = passthrough(&group_by[0])?;
    let j_src = passthrough(&group_by[1])?;
    let (_, product) = exprs.iter().find(|(n, _)| n == sum_col)?;
    let Expr::Binary {
        op: BinOp::Mul,
        left: p_l,
        right: p_r,
    } = product
    else {
        return None;
    };
    let Expr::Column(lv_col) = p_l.as_ref() else {
        return None;
    };
    let Expr::Column(rv_col) = p_r.as_ref() else {
        return None;
    };
    // ... Join(inner, single key) over two flattened sides.
    let Plan::Join {
        left,
        right,
        on,
        join_type: JoinType::Inner,
        ..
    } = input.as_ref()
    else {
        return None;
    };
    if on.len() != 1 {
        return None;
    }
    let (k_l, k_r) = &on[0];

    // Each side: Project([dim0, dim1/k, value (possibly cast)]) over UntagDims(original).
    let left_parts = flat_side(left)?;
    let right_parts = flat_side(right)?;

    // Left must expose (i, k, lv): i_src and k_l are its dim outputs, lv its value.
    let l_ok = left_parts.outputs.contains(&i_src)
        && left_parts.outputs.contains(k_l)
        && left_parts.value_output == *lv_col;
    let r_ok = right_parts.outputs.contains(&j_src)
        && right_parts.outputs.contains(k_r)
        && right_parts.value_output == *rv_col;
    // Sides may be swapped in the product (rv * lv): accept the mirror.
    let mirrored = left_parts.outputs.contains(&i_src)
        && left_parts.outputs.contains(k_l)
        && left_parts.value_output == *rv_col
        && right_parts.value_output == *lv_col
        && right_parts.outputs.contains(&j_src)
        && right_parts.outputs.contains(k_r);
    if (l_ok && r_ok) || mirrored {
        Some(Plan::MatMul {
            left: left_parts.original.clone().boxed(),
            right: right_parts.original.clone().boxed(),
        })
    } else {
        None
    }
}

struct FlatSide<'a> {
    /// The original (still dimension-tagged) subplan under `UntagDims`.
    original: &'a Plan,
    /// Output names of the two dimension passthroughs.
    outputs: Vec<String>,
    /// Output name of the value column.
    value_output: String,
}

/// Match `Project([d0, d1, v(±cast)]) over UntagDims(original)` where the
/// original is 2-dimensional with a single value attribute.
fn flat_side(plan: &Plan) -> Option<FlatSide<'_>> {
    let Plan::Project { input, exprs } = plan else {
        return None;
    };
    let Plan::UntagDims { input: original } = input.as_ref() else {
        return None;
    };
    let schema = crate::infer::infer_schema(original).ok()?;
    if schema.ndims() != 2 || schema.values().len() != 1 {
        return None;
    }
    let dim_names: Vec<&str> = schema
        .dimensions()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    let val_name = schema.values()[0].name.clone();
    if exprs.len() != 3 {
        return None;
    }
    let mut outputs = Vec::new();
    let mut value_output = None;
    for (out, e) in exprs {
        let base = match e {
            Expr::Column(c) => c.clone(),
            Expr::Cast { input, .. } => {
                if let Expr::Column(c) = input.as_ref() {
                    c.clone()
                } else {
                    return None;
                }
            }
            _ => return None,
        };
        if dim_names.contains(&base.as_str()) {
            outputs.push(out.clone());
        } else if base == val_name {
            value_output = Some(out.clone());
        } else {
            return None;
        }
    }
    if outputs.len() != 2 {
        return None;
    }
    Some(FlatSide {
        original,
        outputs,
        value_output: value_output?,
    })
}

/// Try to recognize the canonical lowered elemwise shape, returning the
/// equivalent [`Plan::ElemWise`].
pub fn recognize_elemwise(plan: &Plan) -> Option<Plan> {
    let Plan::TagDims { input, dims } = plan else {
        return None;
    };
    let Plan::Project { input, exprs } = input.as_ref() else {
        return None;
    };
    let Plan::Join {
        left,
        right,
        on,
        join_type: JoinType::Inner,
        ..
    } = input.as_ref()
    else {
        return None;
    };
    if on.is_empty() || on.len() != dims.len() {
        return None;
    }
    // Last projected expr must be a binary op over the two value columns.
    let (_, op_expr) = exprs.last()?;
    let Expr::Binary {
        op,
        left: el,
        right: er,
    } = op_expr
    else {
        return None;
    };
    if !op.is_arithmetic() && !op.is_comparison() {
        return None;
    }
    let (Expr::Column(lv), Expr::Column(rv)) = (el.as_ref(), er.as_ref()) else {
        return None;
    };
    let l_side = elem_side(left, on.iter().map(|(a, _)| a.as_str()), lv)?;
    let r_side = elem_side(right, on.iter().map(|(_, b)| b.as_str()), rv)?;
    // All other projected exprs must be passthroughs of left join keys.
    for (_, e) in &exprs[..exprs.len() - 1] {
        let Expr::Column(c) = e else { return None };
        if !on.iter().any(|(a, _)| a == c) {
            return None;
        }
    }
    Some(Plan::ElemWise {
        op: *op,
        left: l_side.clone().boxed(),
        right: r_side.clone().boxed(),
    })
}

/// Match `Project([coords..., value]) over UntagDims(original)` for the
/// elemwise pattern; returns the original subplan.
fn elem_side<'a, 'b>(
    plan: &'a Plan,
    keys: impl Iterator<Item = &'b str>,
    value_out: &str,
) -> Option<&'a Plan> {
    let Plan::Project { input, exprs } = plan else {
        return None;
    };
    let Plan::UntagDims { input: original } = input.as_ref() else {
        return None;
    };
    let schema = crate::infer::infer_schema(original).ok()?;
    if schema.values().len() != 1 {
        return None;
    }
    let val_name = &schema.values()[0].name;
    // The value output must map to the single value attribute.
    let value_maps = exprs
        .iter()
        .any(|(n, e)| n == value_out && matches!(e, Expr::Column(c) if c == val_name));
    if !value_maps {
        return None;
    }
    // Every key output must be a dimension passthrough.
    for k in keys {
        let ok = exprs.iter().any(|(n, e)| {
            n == k
                && matches!(e, Expr::Column(c)
                    if schema.field(c).map(|f| f.is_dimension()).unwrap_or(false))
        });
        if !ok {
            return None;
        }
    }
    Some(original)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;
    use crate::lower::lower_all;
    use crate::plan::OpKind;
    use bda_storage::{DataType, Field, Schema};

    fn matrix(name: &str, n: i64, m: i64, dim0: &str, dim1: &str) -> Plan {
        Plan::scan(
            name,
            Schema::new(vec![
                Field::dimension_bounded(dim0, 0, n),
                Field::dimension_bounded(dim1, 0, m),
                Field::value("v", DataType::Float64),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn matmul_roundtrips_through_lowering() {
        let p = matrix("a", 4, 3, "i", "k").matmul(matrix("b", 3, 5, "k2", "j"));
        let lowered = lower_all(&p).unwrap();
        assert!(!lowered.op_kinds().contains(&OpKind::MatMul));
        let recognized = recognize_all(&lowered);
        assert!(
            recognized.op_kinds().contains(&OpKind::MatMul),
            "recognition failed on:\n{lowered}"
        );
        // The recovered operands are the original scans.
        if let Plan::MatMul { left, right } = &recognized {
            assert!(matches!(left.as_ref(), Plan::Scan { dataset, .. } if dataset == "a"));
            assert!(matches!(right.as_ref(), Plan::Scan { dataset, .. } if dataset == "b"));
        } else {
            panic!("root is not MatMul: {recognized}");
        }
    }

    #[test]
    fn elemwise_roundtrips_through_lowering() {
        let a = matrix("a", 4, 4, "i", "j");
        for op in [BinOp::Add, BinOp::Mul] {
            let p = a.clone().elemwise(op, a.clone());
            let lowered = lower_all(&p).unwrap();
            let recognized = recognize_all(&lowered);
            assert!(
                recognized.op_kinds().contains(&OpKind::ElemWise),
                "elemwise {op:?} not recognized in:\n{lowered}"
            );
        }
    }

    #[test]
    fn unrelated_plans_unchanged() {
        let p = matrix("a", 4, 3, "i", "k")
            .select(col("v").gt(crate::expr::lit(0.0)))
            .aggregate(
                vec!["i"],
                vec![crate::agg::AggExpr::new(
                    crate::agg::AggFunc::Sum,
                    col("v"),
                    "s",
                )],
            );
        assert_eq!(recognize_all(&p), p);
    }

    #[test]
    fn near_miss_is_not_recognized() {
        // Same shape as lowered matmul but aggregating with MAX, not SUM.
        let p = matrix("a", 3, 3, "i", "k").matmul(matrix("b", 3, 3, "k2", "j"));
        let lowered = lower_all(&p).unwrap();
        let sabotaged = lowered.transform_up(&|n| match n {
            Plan::Aggregate {
                input,
                group_by,
                mut aggs,
            } => {
                for a in &mut aggs {
                    if a.func == AggFunc::Sum {
                        a.func = AggFunc::Max;
                    }
                }
                Plan::Aggregate {
                    input,
                    group_by,
                    aggs,
                }
            }
            other => other,
        });
        assert!(!recognize_all(&sabotaged)
            .op_kinds()
            .contains(&OpKind::MatMul));
    }

    #[test]
    fn nested_recognition() {
        // matmul(elemwise(a, a), b): both intents recovered bottom-up.
        let a = matrix("a", 3, 3, "i", "k");
        let b = matrix("b", 3, 3, "k2", "j");
        let p = a.clone().elemwise(BinOp::Add, a).matmul(b);
        let lowered = lower_all(&p).unwrap();
        let recognized = recognize_all(&lowered);
        let kinds = recognized.op_kinds();
        assert!(kinds.contains(&OpKind::MatMul), "{recognized}");
        assert!(kinds.contains(&OpKind::ElemWise), "{recognized}");
    }
}
