//! Aggregate functions and their accumulators.
//!
//! Shared by the reference evaluator, the relational engine's hash
//! aggregation, and the array engine's window/dimension reductions, so
//! every back end agrees on null handling and overflow behaviour.

use bda_storage::{DataType, Value};

use crate::error::CoreError;
use crate::expr::Expr;

/// The aggregate functions of the algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Row / non-null count (see [`AggExpr::arg`]).
    Count,
    /// Sum (ints stay ints, null on overflow; floats sum in IEEE order).
    Sum,
    /// Minimum under [`Value::total_cmp`], skipping nulls.
    Min,
    /// Maximum under [`Value::total_cmp`], skipping nulls.
    Max,
    /// Arithmetic mean as `f64`, skipping nulls; null on empty input.
    Avg,
}

impl AggFunc {
    /// All functions, in codec-tag order.
    pub const ALL: [AggFunc; 5] = [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Min,
        AggFunc::Max,
        AggFunc::Avg,
    ];

    /// Surface-language name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }

    /// Result type given the argument type (`None` = `count(*)`).
    pub fn output_type(self, arg: Option<DataType>) -> Result<DataType, CoreError> {
        match self {
            AggFunc::Count => Ok(DataType::Int64),
            AggFunc::Avg => match arg {
                Some(t) if t.is_numeric() => Ok(DataType::Float64),
                other => Err(CoreError::Expr(format!(
                    "avg needs numeric arg, got {other:?}"
                ))),
            },
            AggFunc::Sum => match arg {
                Some(t) if t.is_numeric() => Ok(t),
                // sum of untyped nulls: pick i64.
                None => Ok(DataType::Int64),
                other => Err(CoreError::Expr(format!(
                    "sum needs numeric arg, got {other:?}"
                ))),
            },
            AggFunc::Min | AggFunc::Max => {
                arg.ok_or_else(|| CoreError::Expr(format!("{} needs an argument", self.name())))
            }
        }
    }
}

/// A named aggregate computation: `func(arg) as name`.
///
/// `arg == None` is `count(*)` — it counts rows including all-null ones;
/// with an argument, `count` counts non-null values only (SQL semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Argument expression, or `None` for `count(*)`.
    pub arg: Option<Expr>,
    /// Output column name.
    pub name: String,
}

impl AggExpr {
    /// `count(*) as name`.
    pub fn count_star(name: impl Into<String>) -> AggExpr {
        AggExpr {
            func: AggFunc::Count,
            arg: None,
            name: name.into(),
        }
    }

    /// `func(arg) as name`.
    pub fn new(func: AggFunc, arg: Expr, name: impl Into<String>) -> AggExpr {
        AggExpr {
            func,
            arg: Some(arg),
            name: name.into(),
        }
    }
}

impl std::fmt::Display for AggExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.arg {
            Some(e) => write!(f, "{}({e}) as {}", self.func.name(), self.name),
            None => write!(f, "{}(*) as {}", self.func.name(), self.name),
        }
    }
}

/// Running state for one aggregate over one group.
#[derive(Debug, Clone)]
pub enum Accumulator {
    /// Count of accepted values.
    Count(i64),
    /// Integer sum (None once overflowed or before first value).
    SumInt {
        /// Running total.
        acc: Option<i64>,
        /// Whether any value has been accepted.
        seen: bool,
    },
    /// Float sum.
    SumFloat {
        /// Running total.
        acc: f64,
        /// Whether any value has been accepted.
        seen: bool,
    },
    /// Running minimum.
    Min(Option<Value>),
    /// Running maximum.
    Max(Option<Value>),
    /// Running mean state.
    Avg {
        /// Sum of accepted values.
        sum: f64,
        /// Count of accepted values.
        count: i64,
    },
}

impl Accumulator {
    /// Fresh accumulator for `func` over an argument of type `arg`.
    pub fn new(func: AggFunc, arg: Option<DataType>) -> Accumulator {
        match func {
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Sum => match arg {
                Some(DataType::Float64) => Accumulator::SumFloat {
                    acc: 0.0,
                    seen: false,
                },
                _ => Accumulator::SumInt {
                    acc: Some(0),
                    seen: false,
                },
            },
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Fold in one value. For `count(*)` pass the row marker
    /// `Value::Bool(true)`; nulls are skipped by every function except
    /// that marker-based count.
    pub fn update(&mut self, v: &Value) -> Result<(), CoreError> {
        match self {
            Accumulator::Count(n) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            Accumulator::SumInt { acc, seen } => {
                if !v.is_null() {
                    let x = v.as_int().map_err(|e| CoreError::Expr(e.to_string()))?;
                    *acc = acc.and_then(|a| a.checked_add(x));
                    *seen = true;
                }
            }
            Accumulator::SumFloat { acc, seen } => {
                if !v.is_null() {
                    *acc += v.as_float().map_err(|e| CoreError::Expr(e.to_string()))?;
                    *seen = true;
                }
            }
            Accumulator::Min(m) => {
                if !v.is_null() {
                    let better = match m {
                        Some(cur) => v.total_cmp(cur) == std::cmp::Ordering::Less,
                        None => true,
                    };
                    if better {
                        *m = Some(v.clone());
                    }
                }
            }
            Accumulator::Max(m) => {
                if !v.is_null() {
                    let better = match m {
                        Some(cur) => v.total_cmp(cur) == std::cmp::Ordering::Greater,
                        None => true,
                    };
                    if better {
                        *m = Some(v.clone());
                    }
                }
            }
            Accumulator::Avg { sum, count } => {
                if !v.is_null() {
                    *sum += v.as_float().map_err(|e| CoreError::Expr(e.to_string()))?;
                    *count += 1;
                }
            }
        }
        Ok(())
    }

    /// Produce the final value.
    pub fn finish(&self) -> Value {
        match self {
            Accumulator::Count(n) => Value::Int(*n),
            Accumulator::SumInt { acc, seen } => {
                if !seen {
                    Value::Null
                } else {
                    acc.map(Value::Int).unwrap_or(Value::Null)
                }
            }
            Accumulator::SumFloat { acc, seen } => {
                if *seen {
                    Value::Float(*acc)
                } else {
                    Value::Null
                }
            }
            Accumulator::Min(m) | Accumulator::Max(m) => m.clone().unwrap_or(Value::Null),
            Accumulator::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *count as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, arg: Option<DataType>, vals: &[Value]) -> Value {
        let mut acc = Accumulator::new(func, arg);
        for v in vals {
            acc.update(v).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn count_skips_nulls() {
        let vals = [Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(
            run(AggFunc::Count, Some(DataType::Int64), &vals),
            Value::Int(2)
        );
    }

    #[test]
    fn sum_int_and_overflow() {
        let vals = [Value::Int(2), Value::Int(3), Value::Null];
        assert_eq!(
            run(AggFunc::Sum, Some(DataType::Int64), &vals),
            Value::Int(5)
        );
        let vals = [Value::Int(i64::MAX), Value::Int(1)];
        assert_eq!(run(AggFunc::Sum, Some(DataType::Int64), &vals), Value::Null);
    }

    #[test]
    fn sum_of_empty_is_null() {
        assert_eq!(run(AggFunc::Sum, Some(DataType::Int64), &[]), Value::Null);
        assert_eq!(
            run(AggFunc::Sum, Some(DataType::Float64), &[Value::Null]),
            Value::Null
        );
    }

    #[test]
    fn min_max_total_order() {
        let vals = [Value::Int(3), Value::Null, Value::Int(-1), Value::Int(7)];
        assert_eq!(
            run(AggFunc::Min, Some(DataType::Int64), &vals),
            Value::Int(-1)
        );
        assert_eq!(
            run(AggFunc::Max, Some(DataType::Int64), &vals),
            Value::Int(7)
        );
        let strs = [Value::from("b"), Value::from("a")];
        assert_eq!(
            run(AggFunc::Min, Some(DataType::Utf8), &strs),
            Value::from("a")
        );
    }

    #[test]
    fn avg_and_empty_avg() {
        let vals = [Value::Float(1.0), Value::Float(2.0), Value::Null];
        assert_eq!(
            run(AggFunc::Avg, Some(DataType::Float64), &vals),
            Value::Float(1.5)
        );
        assert_eq!(run(AggFunc::Avg, Some(DataType::Float64), &[]), Value::Null);
    }

    #[test]
    fn output_types() {
        assert_eq!(
            AggFunc::Sum.output_type(Some(DataType::Int64)).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggFunc::Avg.output_type(Some(DataType::Int64)).unwrap(),
            DataType::Float64
        );
        assert_eq!(AggFunc::Count.output_type(None).unwrap(), DataType::Int64);
        assert_eq!(
            AggFunc::Min.output_type(Some(DataType::Utf8)).unwrap(),
            DataType::Utf8
        );
        assert!(AggFunc::Sum.output_type(Some(DataType::Utf8)).is_err());
        assert!(AggFunc::Min.output_type(None).is_err());
    }

    #[test]
    fn display() {
        let a = AggExpr::new(AggFunc::Sum, crate::expr::col("v"), "total");
        assert_eq!(a.to_string(), "sum(v) as total");
        assert_eq!(AggExpr::count_star("n").to_string(), "count(*) as n");
    }
}
