//! The convergence criterion for control iteration.
//!
//! The paper asks for "repeated execution of an expression until some
//! convergence criterion is met". Every executor of [`crate::plan::Plan::Iterate`]
//! — the reference evaluator, the graph engine, the federation driver —
//! calls into this module, so "converged" means the same thing everywhere.

use bda_storage::{DataSet, DataType, Row, Value};

use crate::error::CoreError;

/// Decide whether an iteration has converged between two successive states.
///
/// * `epsilon = None`: exact fixpoint — the states must be bag-equal.
/// * `epsilon = Some(e)`: the [`l1_distance`] between the states must be
///   defined and `< e`.
pub fn converged(prev: &DataSet, next: &DataSet, epsilon: Option<f64>) -> Result<bool, CoreError> {
    if prev.schema() != next.schema() {
        return Err(CoreError::Plan(format!(
            "iteration state schema changed: {} vs {}",
            prev.schema(),
            next.schema()
        )));
    }
    match epsilon {
        None => prev.same_bag(next).map_err(Into::into),
        Some(e) => Ok(matches!(l1_distance(prev, next)?, Some(d) if d < e)),
    }
}

/// L1 distance between two states with identical schemas.
///
/// Rows are keyed by the non-`f64` columns (sorted order); the distance is
/// the sum of absolute differences of the `f64` columns, with nulls reading
/// as 0. Returns `None` when the key sequences differ (different row sets
/// can never count as converged).
pub fn l1_distance(prev: &DataSet, next: &DataSet) -> Result<Option<f64>, CoreError> {
    if prev.schema() != next.schema() {
        return Err(CoreError::Plan("l1_distance: schema mismatch".into()));
    }
    let schema = prev.schema();
    let float_cols: Vec<usize> = (0..schema.len())
        .filter(|&i| schema.field_at(i).dtype == DataType::Float64)
        .collect();
    let key_cols: Vec<usize> = (0..schema.len())
        .filter(|&i| schema.field_at(i).dtype != DataType::Float64)
        .collect();
    let sort_key = |r: &Row| -> Row { r.project(&key_cols) };

    let mut a = prev.rows()?;
    let mut b = next.rows()?;
    if a.len() != b.len() {
        return Ok(None);
    }
    a.sort_by(|x, y| sort_key(x).total_cmp(&sort_key(y)));
    b.sort_by(|x, y| sort_key(x).total_cmp(&sort_key(y)));
    let mut dist = 0.0f64;
    for (x, y) in a.iter().zip(&b) {
        if sort_key(x) != sort_key(y) {
            return Ok(None);
        }
        for &c in &float_cols {
            let xv = float_or_zero(x.get(c));
            let yv = float_or_zero(y.get(c));
            dist += (xv - yv).abs();
        }
    }
    Ok(Some(dist))
}

fn float_or_zero(v: &Value) -> f64 {
    match v {
        Value::Float(x) => *x,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_storage::Column;

    fn ranks(pairs: &[(i64, f64)]) -> DataSet {
        DataSet::from_columns(vec![
            (
                "vertex",
                Column::from(pairs.iter().map(|(v, _)| *v).collect::<Vec<i64>>()),
            ),
            (
                "rank",
                Column::from(pairs.iter().map(|(_, r)| *r).collect::<Vec<f64>>()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn l1_on_matching_keys() {
        let a = ranks(&[(1, 0.5), (2, 0.5)]);
        let b = ranks(&[(2, 0.4), (1, 0.55)]); // order must not matter
        let d = l1_distance(&a, &b).unwrap().unwrap();
        assert!((d - 0.15).abs() < 1e-12, "{d}");
    }

    #[test]
    fn l1_undefined_on_different_keys() {
        let a = ranks(&[(1, 0.5)]);
        let b = ranks(&[(2, 0.5)]);
        assert_eq!(l1_distance(&a, &b).unwrap(), None);
        let c = ranks(&[(1, 0.5), (2, 0.1)]);
        assert_eq!(l1_distance(&a, &c).unwrap(), None);
    }

    #[test]
    fn converged_with_epsilon() {
        let a = ranks(&[(1, 0.5), (2, 0.5)]);
        let b = ranks(&[(1, 0.5000001), (2, 0.4999999)]);
        assert!(converged(&a, &b, Some(1e-3)).unwrap());
        assert!(!converged(&a, &b, Some(1e-9)).unwrap());
    }

    #[test]
    fn exact_fixpoint_is_bag_equality() {
        let a = ranks(&[(1, 0.5), (2, 0.5)]);
        let b = ranks(&[(2, 0.5), (1, 0.5)]);
        assert!(converged(&a, &b, None).unwrap());
        let c = ranks(&[(1, 0.5), (2, 0.6)]);
        assert!(!converged(&a, &c, None).unwrap());
    }

    #[test]
    fn schema_change_is_an_error() {
        let a = ranks(&[(1, 0.5)]);
        let b = DataSet::from_columns(vec![("x", Column::from(vec![1i64]))]).unwrap();
        assert!(converged(&a, &b, None).is_err());
    }
}
