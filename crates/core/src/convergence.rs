//! The convergence criterion for control iteration.
//!
//! The paper asks for "repeated execution of an expression until some
//! convergence criterion is met". Every executor of [`crate::plan::Plan::Iterate`]
//! — the reference evaluator, the graph engine, the federation driver —
//! calls into this module, so "converged" means the same thing everywhere.

use bda_storage::{DataSet, DataType, Row, Value};

use crate::error::CoreError;

/// Decide whether an iteration has converged between two successive states.
///
/// * `epsilon = None`: exact fixpoint — the states must be bag-equal.
/// * `epsilon = Some(e)`: the [`l1_distance`] between the states must be
///   defined and `< e`.
pub fn converged(prev: &DataSet, next: &DataSet, epsilon: Option<f64>) -> Result<bool, CoreError> {
    if prev.schema() != next.schema() {
        return Err(CoreError::Plan(format!(
            "iteration state schema changed: {} vs {}",
            prev.schema(),
            next.schema()
        )));
    }
    match epsilon {
        None => prev.same_bag(next).map_err(Into::into),
        Some(e) => Ok(matches!(l1_distance(prev, next)?, Some(d) if d < e)),
    }
}

/// L1 distance between two states with identical schemas.
///
/// Rows are keyed by the non-`f64` columns (sorted order); the distance is
/// the sum of absolute differences of the `f64` columns, with nulls reading
/// as 0. Returns `None` when the key sequences differ (different row sets
/// can never count as converged).
pub fn l1_distance(prev: &DataSet, next: &DataSet) -> Result<Option<f64>, CoreError> {
    if prev.schema() != next.schema() {
        return Err(CoreError::Plan("l1_distance: schema mismatch".into()));
    }
    let schema = prev.schema();
    let float_cols: Vec<usize> = (0..schema.len())
        .filter(|&i| schema.field_at(i).dtype == DataType::Float64)
        .collect();
    let key_cols: Vec<usize> = (0..schema.len())
        .filter(|&i| schema.field_at(i).dtype != DataType::Float64)
        .collect();
    let sort_key = |r: &Row| -> Row { r.project(&key_cols) };

    let mut a = prev.rows()?;
    let mut b = next.rows()?;
    if a.len() != b.len() {
        return Ok(None);
    }
    a.sort_by(|x, y| sort_key(x).total_cmp(&sort_key(y)));
    b.sort_by(|x, y| sort_key(x).total_cmp(&sort_key(y)));
    let mut dist = 0.0f64;
    for (x, y) in a.iter().zip(&b) {
        if sort_key(x) != sort_key(y) {
            return Ok(None);
        }
        for &c in &float_cols {
            let xv = float_or_zero(x.get(c));
            let yv = float_or_zero(y.get(c));
            dist += (xv - yv).abs();
        }
    }
    Ok(Some(dist))
}

/// What one iteration boundary looked like: the verdict plus the numbers
/// an operator watches while the loop runs. The federated executor emits
/// one of these per iteration into its trace span and the `/progress`
/// endpoint; `EXPLAIN ANALYZE` renders them as a convergence table.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceReport {
    /// The [`converged`] verdict for this boundary.
    pub converged: bool,
    /// The [`l1_distance`] between the states, when defined.
    pub delta: Option<f64>,
    /// Rows of `next` not present (as a bag) in `prev` — how much of the
    /// state this iteration actually moved.
    pub rows_changed: u64,
}

/// Evaluate one iteration boundary: the [`converged`] verdict together
/// with the convergence delta and the number of rows the iteration
/// changed, computed in one pass over the sorted states.
pub fn report(
    prev: &DataSet,
    next: &DataSet,
    epsilon: Option<f64>,
) -> Result<ConvergenceReport, CoreError> {
    let verdict = converged(prev, next, epsilon)?;
    let delta = l1_distance(prev, next)?;
    let mut a = prev.rows()?;
    let mut b = next.rows()?;
    a.sort_by(|x, y| x.total_cmp(y));
    b.sort_by(|x, y| x.total_cmp(y));
    // Bag intersection by sorted merge; everything in `next` outside the
    // intersection is a changed row.
    let (mut i, mut j, mut shared) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].total_cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    Ok(ConvergenceReport {
        converged: verdict,
        delta,
        rows_changed: b.len() as u64 - shared,
    })
}

fn float_or_zero(v: &Value) -> f64 {
    match v {
        Value::Float(x) => *x,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_storage::Column;

    fn ranks(pairs: &[(i64, f64)]) -> DataSet {
        DataSet::from_columns(vec![
            (
                "vertex",
                Column::from(pairs.iter().map(|(v, _)| *v).collect::<Vec<i64>>()),
            ),
            (
                "rank",
                Column::from(pairs.iter().map(|(_, r)| *r).collect::<Vec<f64>>()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn l1_on_matching_keys() {
        let a = ranks(&[(1, 0.5), (2, 0.5)]);
        let b = ranks(&[(2, 0.4), (1, 0.55)]); // order must not matter
        let d = l1_distance(&a, &b).unwrap().unwrap();
        assert!((d - 0.15).abs() < 1e-12, "{d}");
    }

    #[test]
    fn l1_undefined_on_different_keys() {
        let a = ranks(&[(1, 0.5)]);
        let b = ranks(&[(2, 0.5)]);
        assert_eq!(l1_distance(&a, &b).unwrap(), None);
        let c = ranks(&[(1, 0.5), (2, 0.1)]);
        assert_eq!(l1_distance(&a, &c).unwrap(), None);
    }

    #[test]
    fn converged_with_epsilon() {
        let a = ranks(&[(1, 0.5), (2, 0.5)]);
        let b = ranks(&[(1, 0.5000001), (2, 0.4999999)]);
        assert!(converged(&a, &b, Some(1e-3)).unwrap());
        assert!(!converged(&a, &b, Some(1e-9)).unwrap());
    }

    #[test]
    fn exact_fixpoint_is_bag_equality() {
        let a = ranks(&[(1, 0.5), (2, 0.5)]);
        let b = ranks(&[(2, 0.5), (1, 0.5)]);
        assert!(converged(&a, &b, None).unwrap());
        let c = ranks(&[(1, 0.5), (2, 0.6)]);
        assert!(!converged(&a, &c, None).unwrap());
    }

    #[test]
    fn report_counts_changed_rows_and_delta() {
        let a = ranks(&[(1, 0.5), (2, 0.5), (3, 0.2)]);
        let b = ranks(&[(1, 0.5), (2, 0.4), (3, 0.3)]);
        let r = report(&a, &b, Some(1e-3)).unwrap();
        assert!(!r.converged);
        assert!((r.delta.unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(r.rows_changed, 2, "vertex 1 kept its rank");
    }

    #[test]
    fn report_at_fixpoint_changes_nothing() {
        let a = ranks(&[(1, 0.5), (2, 0.5)]);
        let b = ranks(&[(2, 0.5), (1, 0.5)]);
        let r = report(&a, &b, None).unwrap();
        assert!(r.converged);
        assert_eq!(r.delta, Some(0.0));
        assert_eq!(r.rows_changed, 0);
    }

    #[test]
    fn report_with_disjoint_keys_has_undefined_delta() {
        let a = ranks(&[(1, 0.5)]);
        let b = ranks(&[(2, 0.5)]);
        let r = report(&a, &b, Some(1e-3)).unwrap();
        assert!(!r.converged);
        assert_eq!(r.delta, None);
        assert_eq!(r.rows_changed, 1);
    }

    #[test]
    fn schema_change_is_an_error() {
        let a = ranks(&[(1, 0.5)]);
        let b = DataSet::from_columns(vec![("x", Column::from(vec![1i64]))]).unwrap();
        assert!(converged(&a, &b, None).is_err());
    }
}
