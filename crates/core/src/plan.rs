//! The Big Data Algebra plan IR — the paper's "algebraic intermediate form"
//! that serves as the nexus between client languages and back-end servers.
//!
//! Design points taken straight from the paper:
//!
//! * **Algebra at the core**: operators have direct semantics (defined by
//!   the reference evaluator), independent of any surface syntax.
//! * **Expression trees, not remote calls**: plans serialize (see
//!   [`crate::codec`]) and ship to providers whole.
//! * **Fused tabular/array model**: relational operators and
//!   dimension-aware array operators coexist; aggregation grouped by
//!   dimension fields *is* dimension reduction.
//! * **Intent preservation**: `MatMul`, `ElemWise`, `Window` and the graph
//!   operations are first-class *intent operators* with lowerings into the
//!   base algebra ([`crate::lower`]) and recognizers that recover them from
//!   lowered form ([`crate::recognize`]).
//! * **Control iteration**: [`Plan::Iterate`] repeats a body expression
//!   until a convergence criterion is met.

use std::fmt;

use bda_storage::{Row, Schema, Value};

use crate::agg::AggExpr;
use crate::expr::{BinOp, Expr};

/// Join variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    /// Inner equi-join.
    Inner,
    /// Left outer join (unmatched left rows padded with nulls).
    Left,
    /// Left semi-join (left rows with at least one match; left schema only).
    Semi,
    /// Left anti-join (left rows with no match; left schema only).
    Anti,
}

impl JoinType {
    /// All join types, in codec-tag order.
    pub const ALL: [JoinType; 4] = [
        JoinType::Inner,
        JoinType::Left,
        JoinType::Semi,
        JoinType::Anti,
    ];

    /// Lower-case name for display.
    pub fn name(self) -> &'static str {
        match self {
            JoinType::Inner => "inner",
            JoinType::Left => "left",
            JoinType::Semi => "semi",
            JoinType::Anti => "anti",
        }
    }
}

/// Graph-analytics intent operators.
///
/// Edge inputs use the convention `(src: i64, dst: i64)` value columns.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphOp {
    /// PageRank over a directed graph.
    /// Output: `(vertex: i64, rank: f64)`.
    PageRank {
        /// Edge list input.
        edges: Box<Plan>,
        /// Damping factor (classically 0.85).
        damping: f64,
        /// Iteration bound.
        max_iters: usize,
        /// L1 convergence threshold on successive rank vectors.
        epsilon: f64,
    },
    /// Connected components of the undirected view of the graph.
    /// Output: `(vertex: i64, component: i64)` (component = min vertex id).
    ConnectedComponents {
        /// Edge list input.
        edges: Box<Plan>,
        /// Iteration bound.
        max_iters: usize,
    },
    /// Number of directed 3-cycles. Output: `(triangles: i64)`, one row.
    TriangleCount {
        /// Edge list input.
        edges: Box<Plan>,
    },
    /// Out-degree per vertex (vertices with no out-edges included, 0).
    /// Output: `(vertex: i64, degree: i64)`.
    Degrees {
        /// Edge list input.
        edges: Box<Plan>,
    },
    /// Breadth-first levels from a source vertex; only reachable vertices
    /// appear. Output: `(vertex: i64, level: i64)`.
    BfsLevels {
        /// Edge list input.
        edges: Box<Plan>,
        /// Source vertex id (must appear in the graph to reach anything).
        source: i64,
    },
}

impl GraphOp {
    /// The edge-list input plan.
    pub fn edges(&self) -> &Plan {
        match self {
            GraphOp::PageRank { edges, .. }
            | GraphOp::ConnectedComponents { edges, .. }
            | GraphOp::TriangleCount { edges }
            | GraphOp::Degrees { edges }
            | GraphOp::BfsLevels { edges, .. } => edges,
        }
    }

    /// Operator name for display and capability checks.
    pub fn name(&self) -> &'static str {
        match self {
            GraphOp::PageRank { .. } => "page_rank",
            GraphOp::ConnectedComponents { .. } => "connected_components",
            GraphOp::TriangleCount { .. } => "triangle_count",
            GraphOp::Degrees { .. } => "degrees",
            GraphOp::BfsLevels { .. } => "bfs_levels",
        }
    }
}

/// A node of the algebra plan tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Leaf: a named dataset in the catalog of whichever provider runs it.
    Scan {
        /// Dataset name.
        dataset: String,
        /// Schema as resolved at bind time.
        schema: Schema,
    },
    /// Leaf: an inline literal table.
    Values {
        /// Schema of the rows.
        schema: Schema,
        /// The rows themselves.
        rows: Vec<Row>,
    },
    /// Leaf: the integers `[lo, hi)` as a 1-dimensional array with
    /// dimension field `name`.
    Range {
        /// Dimension/field name.
        name: String,
        /// Inclusive start.
        lo: i64,
        /// Exclusive end.
        hi: i64,
    },
    /// Leaf inside an [`Plan::Iterate`] body: the current loop state.
    IterState {
        /// Schema of the loop state.
        schema: Schema,
    },
    /// Filter: keep rows where the predicate is TRUE.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// Projection / extension: compute named expressions.
    ///
    /// An output field is dimension-tagged iff its expression is a bare
    /// column reference to a dimension of the input (roles and extents are
    /// preserved) — this is what makes projection dimension-aware.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// `(output name, expression)` pairs, in output order.
        exprs: Vec<(String, Expr)>,
    },
    /// Equi-join (or cross join when `on` is empty).
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Pairs of (left column, right column) equated with null-rejecting
        /// equality.
        on: Vec<(String, String)>,
        /// Join variant.
        join_type: JoinType,
        /// Suffix used to disambiguate duplicate right-side names.
        suffix: String,
    },
    /// Grouped aggregation. Grouping by dimension fields preserves their
    /// dimension tags — aggregation over the omitted dimensions is exactly
    /// array dimension-reduction.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping column names (possibly empty: global aggregate).
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<AggExpr>,
    },
    /// Bag union of two inputs with identical schemas.
    Union {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Sort by keys; `true` = descending.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// `(column, descending)` sort keys, major first.
        keys: Vec<(String, bool)>,
    },
    /// Skip `skip` rows then keep at most `fetch`.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Rows to skip.
        skip: usize,
        /// Rows to keep (`None` = all).
        fetch: Option<usize>,
    },
    /// Rename columns.
    Rename {
        /// Input plan.
        input: Box<Plan>,
        /// `(old, new)` pairs.
        mapping: Vec<(String, String)>,
    },
    /// Array dice: restrict dimensions to coordinate ranges `[lo, hi)`.
    Dice {
        /// Input plan.
        input: Box<Plan>,
        /// `(dimension, lo, hi)` restrictions.
        ranges: Vec<(String, i64, i64)>,
    },
    /// Array slice: fix one dimension at an index and drop it.
    SliceAt {
        /// Input plan.
        input: Box<Plan>,
        /// Dimension to fix.
        dim: String,
        /// Coordinate to fix it at.
        index: i64,
    },
    /// Reorder the dimension fields (array transpose / axis permutation).
    Permute {
        /// Input plan.
        input: Box<Plan>,
        /// The dimensions in their new order (must be a permutation of the
        /// input's dimensions).
        order: Vec<String>,
    },
    /// Moving-window ("stencil") aggregate over the dimensions: for each
    /// cell, aggregate the value attributes over the box
    /// `coord[d] - radius[d] ..= coord[d] + radius[d]` per dimension.
    Window {
        /// Input plan.
        input: Box<Plan>,
        /// `(dimension, radius)` per dimension (all dims must be listed).
        radii: Vec<(String, i64)>,
        /// Aggregates over the window's cells.
        aggs: Vec<AggExpr>,
    },
    /// Densify: materialize every cell of the bounded dimension space,
    /// filling absent cells' value attributes with `fill`.
    Fill {
        /// Input plan.
        input: Box<Plan>,
        /// Fill value for absent cells (applied to every value attribute,
        /// cast to the attribute type).
        fill: Value,
    },
    /// Retag: turn the named `i64` value columns into dimensions
    /// (table → array).
    TagDims {
        /// Input plan.
        input: Box<Plan>,
        /// `(column, optional extent)` to tag.
        dims: Vec<(String, Option<(i64, i64)>)>,
    },
    /// Retag: demote all dimensions to plain value columns (array → table).
    UntagDims {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Intent: matrix multiply. Inputs must be 2-D arrays with one `f64`
    /// value attribute; contraction is over left dim 2 / right dim 1.
    /// Output dims are named after left dim 1 and right dim 2 (the latter
    /// suffixed if names collide), value attribute `v`.
    MatMul {
        /// Left matrix.
        left: Box<Plan>,
        /// Right matrix.
        right: Box<Plan>,
    },
    /// Intent: cell-wise binary operation between two arrays with
    /// identical dimensions and one numeric value attribute each.
    /// Output keeps the left's dims, value attribute `v`.
    ElemWise {
        /// Operator applied per cell.
        op: BinOp,
        /// Left array.
        left: Box<Plan>,
        /// Right array.
        right: Box<Plan>,
    },
    /// Repartition marker: split the input into `parts` partitions — by
    /// hash of `key` when given, by contiguous row blocks otherwise — so
    /// the operator above can run partition-parallel. Bag semantics are
    /// the identity; the node exists so repartitioning is explicit in
    /// EXPLAIN output and traces.
    Exchange {
        /// Input to repartition.
        input: Box<Plan>,
        /// Number of partitions (must be positive).
        parts: usize,
        /// Hash key column, or `None` for contiguous block split.
        key: Option<String>,
    },
    /// Merge marker: concatenate the partition outputs produced under an
    /// [`Plan::Exchange`] back into one dataset. Bag-identity, like
    /// `Exchange`.
    Merge {
        /// Input whose partitions are merged.
        input: Box<Plan>,
    },
    /// Intent: graph analytics.
    Graph(GraphOp),
    /// Control iteration: evaluate `init`, then repeatedly evaluate `body`
    /// (in which [`Plan::IterState`] denotes the current state) until the
    /// state converges or `max_iters` is reached.
    ///
    /// Convergence: with `epsilon = Some(e)`, the L1 distance between
    /// successive states' float attributes (matched on the remaining
    /// columns) must fall below `e`; with `None`, successive states must
    /// be bag-equal. See [`crate::convergence`].
    Iterate {
        /// Initial state.
        init: Box<Plan>,
        /// Loop body; must have the same schema as `init`.
        body: Box<Plan>,
        /// Iteration bound (safety net; exceeding it is an error).
        max_iters: usize,
        /// Convergence threshold, or `None` for exact fixpoint.
        epsilon: Option<f64>,
    },
}

/// The operator taxonomy used for capability declarations and the
/// coverage/translatability experiments (T1/T2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Catalog scan.
    Scan,
    /// Literal rows.
    Values,
    /// Integer range generator.
    Range,
    /// Loop-state leaf.
    IterState,
    /// Filter.
    Select,
    /// Projection.
    Project,
    /// Join.
    Join,
    /// Grouped aggregation.
    Aggregate,
    /// Bag union.
    Union,
    /// Duplicate elimination.
    Distinct,
    /// Sort.
    Sort,
    /// Skip/fetch.
    Limit,
    /// Column rename.
    Rename,
    /// Dimension range restriction.
    Dice,
    /// Dimension slice.
    SliceAt,
    /// Dimension permutation.
    Permute,
    /// Stencil aggregate.
    Window,
    /// Densification.
    Fill,
    /// Table→array retag.
    TagDims,
    /// Array→table retag.
    UntagDims,
    /// Matrix multiply intent.
    MatMul,
    /// Cell-wise zip intent.
    ElemWise,
    /// Repartition marker.
    Exchange,
    /// Partition-merge marker.
    Merge,
    /// PageRank intent.
    PageRank,
    /// Connected-components intent.
    ConnectedComponents,
    /// Triangle-count intent.
    TriangleCount,
    /// Degree intent.
    Degrees,
    /// BFS-levels intent.
    BfsLevels,
    /// Control iteration.
    Iterate,
}

impl OpKind {
    /// Every operator kind, in a stable order (drives T1/T2 tables).
    pub const ALL: [OpKind; 30] = [
        OpKind::Scan,
        OpKind::Values,
        OpKind::Range,
        OpKind::IterState,
        OpKind::Select,
        OpKind::Project,
        OpKind::Join,
        OpKind::Aggregate,
        OpKind::Union,
        OpKind::Distinct,
        OpKind::Sort,
        OpKind::Limit,
        OpKind::Rename,
        OpKind::Dice,
        OpKind::SliceAt,
        OpKind::Permute,
        OpKind::Window,
        OpKind::Fill,
        OpKind::TagDims,
        OpKind::UntagDims,
        OpKind::MatMul,
        OpKind::ElemWise,
        OpKind::Exchange,
        OpKind::Merge,
        OpKind::PageRank,
        OpKind::ConnectedComponents,
        OpKind::TriangleCount,
        OpKind::Degrees,
        OpKind::BfsLevels,
        OpKind::Iterate,
    ];

    /// The base (non-intent) relational/array operators — the target
    /// language of lowering.
    pub fn is_base(self) -> bool {
        !self.is_intent()
    }

    /// Intent operators: carry high-level meaning a specialized back end
    /// can execute natively.
    pub fn is_intent(self) -> bool {
        matches!(
            self,
            OpKind::MatMul
                | OpKind::ElemWise
                | OpKind::Window
                | OpKind::Fill
                | OpKind::SliceAt
                | OpKind::Permute
                | OpKind::PageRank
                | OpKind::ConnectedComponents
                | OpKind::TriangleCount
                | OpKind::Degrees
                | OpKind::BfsLevels
        )
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Scan => "scan",
            OpKind::Values => "values",
            OpKind::Range => "range",
            OpKind::IterState => "iter_state",
            OpKind::Select => "select",
            OpKind::Project => "project",
            OpKind::Join => "join",
            OpKind::Aggregate => "aggregate",
            OpKind::Union => "union",
            OpKind::Distinct => "distinct",
            OpKind::Sort => "sort",
            OpKind::Limit => "limit",
            OpKind::Rename => "rename",
            OpKind::Dice => "dice",
            OpKind::SliceAt => "slice_at",
            OpKind::Permute => "permute",
            OpKind::Window => "window",
            OpKind::Fill => "fill",
            OpKind::TagDims => "tag_dims",
            OpKind::UntagDims => "untag_dims",
            OpKind::MatMul => "matmul",
            OpKind::ElemWise => "elemwise",
            OpKind::Exchange => "exchange",
            OpKind::Merge => "merge",
            OpKind::PageRank => "page_rank",
            OpKind::ConnectedComponents => "connected_components",
            OpKind::TriangleCount => "triangle_count",
            OpKind::Degrees => "degrees",
            OpKind::BfsLevels => "bfs_levels",
            OpKind::Iterate => "iterate",
        }
    }
}

impl Plan {
    /// This node's operator kind.
    pub fn op_kind(&self) -> OpKind {
        match self {
            Plan::Scan { .. } => OpKind::Scan,
            Plan::Values { .. } => OpKind::Values,
            Plan::Range { .. } => OpKind::Range,
            Plan::IterState { .. } => OpKind::IterState,
            Plan::Select { .. } => OpKind::Select,
            Plan::Project { .. } => OpKind::Project,
            Plan::Join { .. } => OpKind::Join,
            Plan::Aggregate { .. } => OpKind::Aggregate,
            Plan::Union { .. } => OpKind::Union,
            Plan::Distinct { .. } => OpKind::Distinct,
            Plan::Sort { .. } => OpKind::Sort,
            Plan::Limit { .. } => OpKind::Limit,
            Plan::Rename { .. } => OpKind::Rename,
            Plan::Dice { .. } => OpKind::Dice,
            Plan::SliceAt { .. } => OpKind::SliceAt,
            Plan::Permute { .. } => OpKind::Permute,
            Plan::Window { .. } => OpKind::Window,
            Plan::Fill { .. } => OpKind::Fill,
            Plan::TagDims { .. } => OpKind::TagDims,
            Plan::UntagDims { .. } => OpKind::UntagDims,
            Plan::MatMul { .. } => OpKind::MatMul,
            Plan::ElemWise { .. } => OpKind::ElemWise,
            Plan::Exchange { .. } => OpKind::Exchange,
            Plan::Merge { .. } => OpKind::Merge,
            Plan::Graph(g) => match g {
                GraphOp::PageRank { .. } => OpKind::PageRank,
                GraphOp::ConnectedComponents { .. } => OpKind::ConnectedComponents,
                GraphOp::TriangleCount { .. } => OpKind::TriangleCount,
                GraphOp::Degrees { .. } => OpKind::Degrees,
                GraphOp::BfsLevels { .. } => OpKind::BfsLevels,
            },
            Plan::Iterate { .. } => OpKind::Iterate,
        }
    }

    /// Immediate child plans, left to right.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. }
            | Plan::Values { .. }
            | Plan::Range { .. }
            | Plan::IterState { .. } => vec![],
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Rename { input, .. }
            | Plan::Dice { input, .. }
            | Plan::SliceAt { input, .. }
            | Plan::Permute { input, .. }
            | Plan::Window { input, .. }
            | Plan::Fill { input, .. }
            | Plan::TagDims { input, .. }
            | Plan::UntagDims { input }
            | Plan::Exchange { input, .. }
            | Plan::Merge { input } => vec![input],
            Plan::Join { left, right, .. }
            | Plan::Union { left, right }
            | Plan::MatMul { left, right }
            | Plan::ElemWise { left, right, .. } => vec![left, right],
            Plan::Graph(g) => vec![g.edges()],
            Plan::Iterate { init, body, .. } => vec![init, body],
        }
    }

    /// Rebuild this node with new children (same arity and order as
    /// [`Plan::children`]). Used by the optimizer's generic rewriters.
    pub fn with_children(&self, mut children: Vec<Plan>) -> Plan {
        assert_eq!(
            children.len(),
            self.children().len(),
            "with_children arity mismatch for {}",
            self.op_kind().name()
        );
        let mut next = || Box::new(children.remove(0));
        match self {
            Plan::Scan { .. }
            | Plan::Values { .. }
            | Plan::Range { .. }
            | Plan::IterState { .. } => self.clone(),
            Plan::Select { predicate, .. } => Plan::Select {
                input: next(),
                predicate: predicate.clone(),
            },
            Plan::Project { exprs, .. } => Plan::Project {
                input: next(),
                exprs: exprs.clone(),
            },
            Plan::Aggregate { group_by, aggs, .. } => Plan::Aggregate {
                input: next(),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
            Plan::Distinct { .. } => Plan::Distinct { input: next() },
            Plan::Sort { keys, .. } => Plan::Sort {
                input: next(),
                keys: keys.clone(),
            },
            Plan::Limit { skip, fetch, .. } => Plan::Limit {
                input: next(),
                skip: *skip,
                fetch: *fetch,
            },
            Plan::Rename { mapping, .. } => Plan::Rename {
                input: next(),
                mapping: mapping.clone(),
            },
            Plan::Dice { ranges, .. } => Plan::Dice {
                input: next(),
                ranges: ranges.clone(),
            },
            Plan::SliceAt { dim, index, .. } => Plan::SliceAt {
                input: next(),
                dim: dim.clone(),
                index: *index,
            },
            Plan::Permute { order, .. } => Plan::Permute {
                input: next(),
                order: order.clone(),
            },
            Plan::Window { radii, aggs, .. } => Plan::Window {
                input: next(),
                radii: radii.clone(),
                aggs: aggs.clone(),
            },
            Plan::Fill { fill, .. } => Plan::Fill {
                input: next(),
                fill: fill.clone(),
            },
            Plan::TagDims { dims, .. } => Plan::TagDims {
                input: next(),
                dims: dims.clone(),
            },
            Plan::UntagDims { .. } => Plan::UntagDims { input: next() },
            Plan::Exchange { parts, key, .. } => Plan::Exchange {
                input: next(),
                parts: *parts,
                key: key.clone(),
            },
            Plan::Merge { .. } => Plan::Merge { input: next() },
            Plan::Join {
                on,
                join_type,
                suffix,
                ..
            } => Plan::Join {
                left: next(),
                right: next(),
                on: on.clone(),
                join_type: *join_type,
                suffix: suffix.clone(),
            },
            Plan::Union { .. } => Plan::Union {
                left: next(),
                right: next(),
            },
            Plan::MatMul { .. } => Plan::MatMul {
                left: next(),
                right: next(),
            },
            Plan::ElemWise { op, .. } => Plan::ElemWise {
                op: *op,
                left: next(),
                right: next(),
            },
            Plan::Graph(g) => Plan::Graph(match g {
                GraphOp::PageRank {
                    damping,
                    max_iters,
                    epsilon,
                    ..
                } => GraphOp::PageRank {
                    edges: next(),
                    damping: *damping,
                    max_iters: *max_iters,
                    epsilon: *epsilon,
                },
                GraphOp::ConnectedComponents { max_iters, .. } => GraphOp::ConnectedComponents {
                    edges: next(),
                    max_iters: *max_iters,
                },
                GraphOp::TriangleCount { .. } => GraphOp::TriangleCount { edges: next() },
                GraphOp::Degrees { .. } => GraphOp::Degrees { edges: next() },
                GraphOp::BfsLevels { source, .. } => GraphOp::BfsLevels {
                    edges: next(),
                    source: *source,
                },
            }),
            Plan::Iterate {
                max_iters, epsilon, ..
            } => Plan::Iterate {
                init: next(),
                body: next(),
                max_iters: *max_iters,
                epsilon: *epsilon,
            },
        }
    }

    /// Bottom-up transform: rewrite children first, then apply `f` to the
    /// rebuilt node.
    pub fn transform_up(&self, f: &impl Fn(Plan) -> Plan) -> Plan {
        let children = self
            .children()
            .into_iter()
            .map(|c| c.transform_up(f))
            .collect();
        f(self.with_children(children))
    }

    /// Count of nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// All operator kinds appearing in the tree.
    pub fn op_kinds(&self) -> Vec<OpKind> {
        let mut out = vec![self.op_kind()];
        for c in self.children() {
            out.extend(c.op_kinds());
        }
        out
    }

    /// True if any node in the tree is an [`Plan::IterState`] leaf.
    pub fn references_iter_state(&self) -> bool {
        self.op_kind() == OpKind::IterState
            || self.children().iter().any(|c| c.references_iter_state())
    }

    /// Names of all datasets scanned anywhere in the tree.
    pub fn scanned_datasets(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Plan::Scan { dataset, .. } = self {
            out.push(dataset.clone());
        }
        for c in self.children() {
            for d in c.scanned_datasets() {
                if !out.contains(&d) {
                    out.push(d);
                }
            }
        }
        out
    }
}

// --- constructors (ergonomics for tests and the lang crate) ---------------

impl Plan {
    /// A scan leaf.
    pub fn scan(dataset: impl Into<String>, schema: Schema) -> Plan {
        Plan::Scan {
            dataset: dataset.into(),
            schema,
        }
    }

    /// Boxed self (builder plumbing).
    pub fn boxed(self) -> Box<Plan> {
        Box::new(self)
    }

    /// Filter by a predicate.
    pub fn select(self, predicate: Expr) -> Plan {
        Plan::Select {
            input: self.boxed(),
            predicate,
        }
    }

    /// Project named expressions.
    pub fn project(self, exprs: Vec<(&str, Expr)>) -> Plan {
        Plan::Project {
            input: self.boxed(),
            exprs: exprs.into_iter().map(|(n, e)| (n.to_string(), e)).collect(),
        }
    }

    /// Inner equi-join on `(left, right)` column pairs.
    pub fn join(self, right: Plan, on: Vec<(&str, &str)>) -> Plan {
        self.join_as(right, on, JoinType::Inner)
    }

    /// Join with an explicit type.
    pub fn join_as(self, right: Plan, on: Vec<(&str, &str)>, join_type: JoinType) -> Plan {
        Plan::Join {
            left: self.boxed(),
            right: right.boxed(),
            on: on
                .into_iter()
                .map(|(l, r)| (l.to_string(), r.to_string()))
                .collect(),
            join_type,
            suffix: "_r".to_string(),
        }
    }

    /// Grouped aggregation.
    pub fn aggregate(self, group_by: Vec<&str>, aggs: Vec<AggExpr>) -> Plan {
        Plan::Aggregate {
            input: self.boxed(),
            group_by: group_by.into_iter().map(str::to_string).collect(),
            aggs,
        }
    }

    /// Sort ascending by the given columns.
    pub fn sort_by(self, keys: Vec<&str>) -> Plan {
        Plan::Sort {
            input: self.boxed(),
            keys: keys.into_iter().map(|k| (k.to_string(), false)).collect(),
        }
    }

    /// Keep at most `n` rows.
    pub fn limit(self, n: usize) -> Plan {
        Plan::Limit {
            input: self.boxed(),
            skip: 0,
            fetch: Some(n),
        }
    }

    /// Deduplicate.
    pub fn distinct(self) -> Plan {
        Plan::Distinct {
            input: self.boxed(),
        }
    }

    /// Bag union.
    pub fn union(self, other: Plan) -> Plan {
        Plan::Union {
            left: self.boxed(),
            right: other.boxed(),
        }
    }

    /// Rename columns.
    pub fn rename(self, mapping: Vec<(&str, &str)>) -> Plan {
        Plan::Rename {
            input: self.boxed(),
            mapping: mapping
                .into_iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
        }
    }

    /// Matrix multiply intent.
    pub fn matmul(self, right: Plan) -> Plan {
        Plan::MatMul {
            left: self.boxed(),
            right: right.boxed(),
        }
    }

    /// Cell-wise zip intent.
    pub fn elemwise(self, op: BinOp, right: Plan) -> Plan {
        Plan::ElemWise {
            op,
            left: self.boxed(),
            right: right.boxed(),
        }
    }
}

impl Plan {
    /// Mark this subtree for repartitioning into `parts` hash partitions
    /// on `key` (see [`Plan::Exchange`]).
    pub fn exchange(self, parts: usize, key: Option<&str>) -> Plan {
        Plan::Exchange {
            input: self.boxed(),
            parts,
            key: key.map(str::to_string),
        }
    }

    /// Merge the partition outputs of the subtree below (see
    /// [`Plan::Merge`]).
    pub fn merge(self) -> Plan {
        Plan::Merge {
            input: self.boxed(),
        }
    }
}

// --- display ---------------------------------------------------------------

impl Plan {
    fn fmt_node(&self) -> String {
        match self {
            Plan::Scan { dataset, .. } => format!("scan {dataset}"),
            Plan::Values { rows, .. } => format!("values [{} rows]", rows.len()),
            Plan::Range { name, lo, hi } => format!("range {name} in [{lo}, {hi})"),
            Plan::IterState { .. } => "iter_state".to_string(),
            Plan::Select { predicate, .. } => format!("select {predicate}"),
            Plan::Project { exprs, .. } => {
                let items: Vec<String> = exprs
                    .iter()
                    .map(|(n, e)| {
                        if matches!(e, Expr::Column(c) if c == n) {
                            n.clone()
                        } else {
                            format!("{e} as {n}")
                        }
                    })
                    .collect();
                format!("project {}", items.join(", "))
            }
            Plan::Join { on, join_type, .. } => {
                let conds: Vec<String> = on.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                if conds.is_empty() {
                    format!("{} cross join", join_type.name())
                } else {
                    format!("{} join on {}", join_type.name(), conds.join(" and "))
                }
            }
            Plan::Aggregate { group_by, aggs, .. } => {
                let aggs: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                if group_by.is_empty() {
                    format!("aggregate {}", aggs.join(", "))
                } else {
                    format!(
                        "aggregate by {} -> {}",
                        group_by.join(", "),
                        aggs.join(", ")
                    )
                }
            }
            Plan::Union { .. } => "union".to_string(),
            Plan::Distinct { .. } => "distinct".to_string(),
            Plan::Sort { keys, .. } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(k, d)| format!("{k}{}", if *d { " desc" } else { "" }))
                    .collect();
                format!("sort by {}", ks.join(", "))
            }
            Plan::Limit { skip, fetch, .. } => match fetch {
                Some(n) => format!("limit {n} skip {skip}"),
                None => format!("skip {skip}"),
            },
            Plan::Rename { mapping, .. } => {
                let ms: Vec<String> = mapping.iter().map(|(a, b)| format!("{a} -> {b}")).collect();
                format!("rename {}", ms.join(", "))
            }
            Plan::Dice { ranges, .. } => {
                let rs: Vec<String> = ranges
                    .iter()
                    .map(|(d, lo, hi)| format!("{d} in [{lo}, {hi})"))
                    .collect();
                format!("dice {}", rs.join(", "))
            }
            Plan::SliceAt { dim, index, .. } => format!("slice {dim} = {index}"),
            Plan::Permute { order, .. } => format!("permute [{}]", order.join(", ")),
            Plan::Window { radii, aggs, .. } => {
                let rs: Vec<String> = radii.iter().map(|(d, r)| format!("{d}±{r}")).collect();
                let as_: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                format!("window {} -> {}", rs.join(", "), as_.join(", "))
            }
            Plan::Fill { fill, .. } => format!("fill {fill}"),
            Plan::TagDims { dims, .. } => {
                let ds: Vec<String> = dims
                    .iter()
                    .map(|(d, e)| match e {
                        Some((lo, hi)) => format!("{d}=[{lo},{hi})"),
                        None => d.clone(),
                    })
                    .collect();
                format!("tag_dims {}", ds.join(", "))
            }
            Plan::UntagDims { .. } => "untag_dims".to_string(),
            Plan::MatMul { .. } => "matmul".to_string(),
            Plan::ElemWise { op, .. } => format!("elemwise {}", op.symbol()),
            Plan::Exchange { parts, key, .. } => match key {
                Some(k) => format!("exchange x{parts} hash({k})"),
                None => format!("exchange x{parts} block"),
            },
            Plan::Merge { .. } => "merge".to_string(),
            Plan::Graph(g) => match g {
                GraphOp::PageRank {
                    damping,
                    max_iters,
                    epsilon,
                    ..
                } => format!("page_rank d={damping} iters<={max_iters} eps={epsilon}"),
                GraphOp::ConnectedComponents { max_iters, .. } => {
                    format!("connected_components iters<={max_iters}")
                }
                GraphOp::TriangleCount { .. } => "triangle_count".to_string(),
                GraphOp::Degrees { .. } => "degrees".to_string(),
                GraphOp::BfsLevels { source, .. } => format!("bfs_levels from {source}"),
            },
            Plan::Iterate {
                max_iters, epsilon, ..
            } => match epsilon {
                Some(e) => format!("iterate until |Δ| < {e}, max {max_iters}"),
                None => format!("iterate to fixpoint, max {max_iters}"),
            },
        }
    }

    fn fmt_tree(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        writeln!(f, "{}{}", "  ".repeat(indent), self.fmt_node())?;
        for c in self.children() {
            c.fmt_tree(f, indent + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_tree(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use crate::expr::{col, lit};
    use bda_storage::{DataType, Field};

    fn s() -> Schema {
        Schema::new(vec![
            Field::value("k", DataType::Int64),
            Field::value("v", DataType::Float64),
        ])
        .unwrap()
    }

    fn sample() -> Plan {
        Plan::scan("t", s())
            .select(col("k").gt(lit(1i64)))
            .aggregate(
                vec!["k"],
                vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
            )
            .sort_by(vec!["k"])
            .limit(10)
    }

    #[test]
    fn children_and_counts() {
        let p = sample();
        assert_eq!(p.node_count(), 5);
        assert_eq!(p.children().len(), 1);
        assert_eq!(p.op_kind(), OpKind::Limit);
        let kinds = p.op_kinds();
        assert!(kinds.contains(&OpKind::Scan) && kinds.contains(&OpKind::Aggregate));
    }

    #[test]
    fn with_children_roundtrip() {
        let p = sample();
        let rebuilt = p.with_children(p.children().into_iter().cloned().collect());
        assert_eq!(rebuilt, p);
    }

    #[test]
    fn transform_up_rewrites() {
        // Remove all Limit nodes.
        let p = sample();
        let no_limit = p.transform_up(&|n| match n {
            Plan::Limit { input, .. } => *input,
            other => other,
        });
        assert!(!no_limit.op_kinds().contains(&OpKind::Limit));
        assert_eq!(no_limit.node_count(), 4);
    }

    #[test]
    fn scanned_datasets_deduped() {
        let p = Plan::scan("a", s()).join(
            Plan::scan("a", s()).union(Plan::scan("b", s())),
            vec![("k", "k")],
        );
        assert_eq!(p.scanned_datasets(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn iter_state_detection() {
        let body = Plan::IterState { schema: s() }.select(lit(true));
        assert!(body.references_iter_state());
        assert!(!sample().references_iter_state());
    }

    #[test]
    fn intent_classification() {
        assert!(OpKind::MatMul.is_intent());
        assert!(OpKind::PageRank.is_intent());
        assert!(OpKind::Join.is_base());
        // Every op is exactly one of base/intent.
        for k in OpKind::ALL {
            assert!(k.is_base() != k.is_intent(), "{k:?}");
        }
    }

    #[test]
    fn display_is_tree_shaped() {
        let out = sample().to_string();
        assert!(out.contains("limit 10"), "{out}");
        assert!(out.contains("\n    aggregate by k"), "{out}");
        assert!(out.contains("scan t"), "{out}");
    }
}
