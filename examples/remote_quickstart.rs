//! The README multi-process quick start, runnable: connect to two
//! `bda-served` processes and run a federated query over real TCP.
//!
//! ```bash
//! bda-served --engine relational --name rel --listen 127.0.0.1:7401 --demo &
//! bda-served --engine linalg --name la --listen 127.0.0.1:7402 --demo &
//! cargo run --example remote_quickstart            # default addresses
//! cargo run --example remote_quickstart -- HOST:PORT HOST:PORT
//! ```

use std::sync::Arc;

use bda::core::{col, lit, Provider};
use bda::federation::{ExecOptions, Federation, TransferMode};
use bda::lang::Query;
use bda_net::RemoteProvider;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let rel_addr = args.next().unwrap_or_else(|| "127.0.0.1:7401".into());
    let la_addr = args.next().unwrap_or_else(|| "127.0.0.1:7402".into());

    let rel = Arc::new(RemoteProvider::connect(rel_addr)?);
    let la = Arc::new(RemoteProvider::connect(la_addr)?);
    println!(
        "connected: `{}` at {} and `{}` at {}",
        rel.name(),
        rel.addr(),
        la.name(),
        la.addr()
    );

    let mut fed = Federation::new();
    fed.register(Arc::clone(&rel) as Arc<dyn Provider>);
    fed.register(Arc::clone(&la) as Arc<dyn Provider>);

    // `--demo` preloaded `sales` on the relational server.
    let q = Query::scan("sales", fed.registry().schema_of("sales")?).where_(col("v").gt(lit(15.0)));
    let (result, metrics) = fed.run_with(
        q.plan(),
        &ExecOptions {
            transfer: TransferMode::RemoteTcp,
            ..Default::default()
        },
    )?;
    println!(
        "query: {} rows; {} real bytes on the wire",
        result.num_rows(),
        metrics.real_wire_bytes
    );

    // Desideratum 4 on a real socket: the linalg server pushes its demo
    // matrix directly to the relational server — the bytes never pass
    // through this process.
    let m = Query::scan("m", fed.registry().schema_of("m")?);
    let pushed = la
        .execute_push(m.plan(), rel.addr(), "m_from_la")
        .expect("remote providers support push")?;
    let copied = rel.schema_of("m_from_la").expect("matrix landed on rel");
    println!("push: {pushed} bytes moved la -> rel directly; rel now stores m_from_la ({copied})");
    Ok(())
}
