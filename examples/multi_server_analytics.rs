//! The paper's headline scenario: one query spanning a relational server
//! and a linear-algebra server (its SciDB + ScaLAPACK example), with
//! intermediates flowing **directly between servers** — and the same
//! query with app-routed transfers for contrast (desideratum 4).
//!
//! ```text
//! cargo run --example multi_server_analytics
//! ```

use std::sync::Arc;

use bda::core::{Plan, Provider};
use bda::federation::{ExecOptions, Federation, Planner, TransferMode};
use bda::linalg::LinAlgEngine;
use bda::relational::RelationalEngine;
use bda::workloads::random_matrix;

fn main() {
    let n = 48;

    // The feature matrix lives, in row form, on the relational server —
    // say it is the output of upstream ETL.
    let rel = RelationalEngine::new("warehouse");
    let features = random_matrix(n, n, 7);
    rel.store("features_rows", features.normalized_rows().expect("rows"))
        .expect("store");

    // The model weights live on the linear-algebra server.
    let la = LinAlgEngine::new("denselab");
    la.store("weights", random_matrix(n, n, 8)).expect("store");

    let mut fed = Federation::new();
    fed.register(Arc::new(rel));
    fed.register(Arc::new(la));

    // features × weights: the matmul must run on `denselab`, the scan on
    // `warehouse` — a genuinely multi-server plan.
    let reg = fed.registry();
    let plan = Plan::scan(
        "features_rows",
        reg.schema_of("features_rows").expect("schema"),
    )
    .matmul(Plan::scan(
        "weights",
        reg.provider("denselab")
            .expect("provider")
            .schema_of("weights")
            .expect("schema"),
    ));

    // Show how the planner fragments the query.
    let placement = Planner::new(reg).place(&plan).expect("placement");
    println!("fragments:");
    for f in &placement.fragments {
        println!(
            "  #{} at {:10} -> {} ({} plan nodes)",
            f.id,
            f.site,
            f.dest_site,
            f.plan.node_count()
        );
    }
    println!();

    // Direct server-to-server transfer (what the paper advocates).
    let (out_direct, m_direct) = fed.run(&plan).expect("direct run");
    println!("direct transfers:\n{m_direct}\n");

    // The app-routed baseline.
    let routed_opts = ExecOptions {
        transfer: TransferMode::AppRouted,
        ..ExecOptions::default()
    };
    let (out_routed, m_routed) = fed.run_with(&plan, &routed_opts).expect("routed run");
    println!("app-routed transfers:\n{m_routed}\n");

    assert!(
        out_direct.same_bag(&out_routed).expect("comparable"),
        "transfer mode must not change the answer"
    );
    println!(
        "same {}-cell result either way; app tier carried {} bytes direct vs {} routed",
        out_direct.num_rows(),
        m_direct.app_tier_bytes(),
        m_routed.app_tier_bytes()
    );
}
