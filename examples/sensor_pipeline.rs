//! The fused tabular/array model at work: a sensor time-series array is
//! diced, window-smoothed and reduced with dimension-aware operators on
//! the array engine, then joined with relational metadata on the
//! relational engine — one plan, two servers.
//!
//! ```text
//! cargo run --example sensor_pipeline
//! ```

use std::sync::Arc;

use bda::array::ArrayEngine;
use bda::core::{col, AggExpr, AggFunc, Provider};
use bda::federation::Federation;
use bda::lang::Query;
use bda::relational::RelationalEngine;
use bda::storage::{Column, DataSet};
use bda::workloads::{sensor_array, SensorSpec};

fn main() {
    // Array server: 16 sensors × 512 ticks, 5% dropped readings.
    let arr = ArrayEngine::new("arraystore");
    arr.store(
        "readings",
        sensor_array(SensorSpec {
            sensors: 16,
            ticks: 512,
            missing: 0.05,
            seed: 42,
        }),
    )
    .expect("store array");

    // Relational server: sensor metadata.
    let rel = RelationalEngine::new("relstore");
    let meta = DataSet::from_columns(vec![
        ("sensor_id", Column::from((0..16).collect::<Vec<i64>>())),
        (
            "site",
            Column::from(
                (0..16)
                    .map(|i| if i % 2 == 0 { "rooftop" } else { "basement" })
                    .collect::<Vec<&str>>(),
            ),
        ),
    ])
    .expect("metadata");
    rel.store("sensor_meta", meta).expect("store meta");

    let mut fed = Federation::new();
    fed.register(Arc::new(arr));
    fed.register(Arc::new(rel));
    let readings_schema = fed.registry().schema_of("readings").expect("schema");

    // Dimension-aware pipeline: dice the first day, smooth each sensor's
    // series with a ±2-tick window, reduce over time, then hop servers to
    // join the metadata and compare sites.
    let q = Query::scan("readings", readings_schema)
        .dice(vec![("t", 0, 256)])
        .window(
            vec![("sensor", 0), ("t", 2)],
            vec![AggExpr::new(AggFunc::Avg, col("reading"), "smooth")],
        )
        .group_by(
            vec!["sensor"],
            vec![
                AggExpr::new(AggFunc::Avg, col("smooth"), "day_mean"),
                AggExpr::new(AggFunc::Max, col("smooth"), "day_max"),
            ],
        )
        .untag_dims()
        .join(
            Query::scan(
                "sensor_meta",
                fed.registry().schema_of("sensor_meta").expect("schema"),
            ),
            vec![("sensor", "sensor_id")],
        )
        .group_by(
            vec!["site"],
            vec![
                AggExpr::new(AggFunc::Avg, col("day_mean"), "site_mean"),
                AggExpr::new(AggFunc::Max, col("day_max"), "site_peak"),
                AggExpr::count_star("sensors"),
            ],
        )
        .order_by(vec!["site"]);

    let (result, metrics) = fed.run(q.plan()).expect("pipeline runs");
    println!(
        "per-site summary (first day, smoothed):\n{}",
        result.show(10)
    );
    println!("{metrics}\n");

    // Show where each piece ran.
    let placement = bda::federation::Planner::new(fed.registry())
        .place(&bda::federation::optimize(
            q.plan(),
            bda::federation::OptimizerConfig::default(),
        ))
        .expect("placement");
    println!("fragment sites:");
    for f in &placement.fragments {
        println!("  fragment #{} on {}", f.id, f.site);
    }
    assert!(placement.sites().len() >= 2, "pipeline must span servers");

    // Sanity: every site mean is a plausible temperature.
    for row in result.rows().expect("rows") {
        let mean = row.get(1).as_float().expect("mean");
        assert!((5.0..35.0).contains(&mean), "implausible mean {mean}");
    }
}
