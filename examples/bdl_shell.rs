//! A tiny interactive BDL shell over the standard federation: type
//! pipe-syntax queries, get tables back — plus `\explain Q`, `\catalog`
//! and `\help` meta-commands.
//!
//! ```text
//! cargo run --example bdl_shell
//! echo 'scan sales | groupby region: sum(amount) as t' | cargo run --example bdl_shell
//! ```

use std::io::{self, BufRead, Write};

/// Print, exiting quietly if stdout is a closed pipe (`... | head`).
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        if writeln!(io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}
use std::sync::Arc;

use bda::array::ArrayEngine;
use bda::core::Provider;
use bda::federation::Federation;
use bda::graph::GraphEngine;
use bda::lang::parse_query;
use bda::linalg::LinAlgEngine;
use bda::relational::RelationalEngine;
use bda::workloads::{
    random_graph, random_matrix, sensor_array, star_schema, GraphSpec, SensorSpec, StarSpec,
};

fn build_federation() -> Federation {
    let rel = RelationalEngine::new("rel");
    let (sales, customers, products, stores) = star_schema(StarSpec::default());
    rel.store("sales", sales).expect("store");
    rel.store("customers", customers).expect("store");
    rel.store("products", products).expect("store");
    rel.store("stores", stores).expect("store");

    let arr = ArrayEngine::with_chunking("arr", 64);
    arr.store("sensors", sensor_array(SensorSpec::default()))
        .expect("store");

    let la = LinAlgEngine::new("la");
    la.store("a", random_matrix(32, 32, 7)).expect("store");
    la.store("b", random_matrix(32, 32, 8)).expect("store");

    let graph = GraphEngine::new("graph");
    let (_, edges) = random_graph(GraphSpec::default());
    graph.store("edges", edges).expect("store");

    let mut fed = Federation::new();
    fed.register(Arc::new(rel));
    fed.register(Arc::new(arr));
    fed.register(Arc::new(la));
    fed.register(Arc::new(graph));
    fed
}

fn print_catalog(fed: &Federation) {
    for p in fed.registry().providers() {
        out!(
            "provider `{}` — capabilities {}",
            p.name(),
            p.capabilities()
        );
        for (name, schema) in p.catalog() {
            let rows = p
                .row_count_of(&name)
                .map(|n| n.to_string())
                .unwrap_or_else(|| "?".to_string());
            out!("  {name} {schema} [{rows} rows]");
        }
    }
}

const HELP: &str = "\
BDL shell. Enter a pipe-syntax query, e.g.:
  scan sales | where amount > 100.0 | groupby region: sum(amount) as t
  scan sensors | dice t 0 64 | groupby sensor: avg(reading) as m
  scan edges | pagerank 0.85 50 1e-8 | orderby rank desc | limit 5
  scan a | matmul (scan b)
Meta commands:
  \\catalog     list providers and datasets
  \\explain Q   show the optimized plan and placement for query Q
  \\help        this text
  \\quit        exit";

fn main() {
    let fed = build_federation();
    let lookup = |name: &str| fed.registry().schema_of(name).ok();
    let stdin = io::stdin();
    let interactive = atty_like();
    if interactive {
        out!("{HELP}\n");
    }
    let mut out = io::stdout();
    loop {
        if interactive {
            print!("bdl> ");
            out.flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "\\quit" | "\\q" => break,
            "\\help" => {
                out!("{HELP}");
                continue;
            }
            "\\catalog" => {
                print_catalog(&fed);
                continue;
            }
            _ => {}
        }
        if let Some(q) = line.strip_prefix("\\explain ") {
            match parse_query(q, &lookup) {
                Ok(plan) => match fed.explain(&plan) {
                    Ok(s) => out!("{s}"),
                    Err(e) => out!("plan error: {e}"),
                },
                Err(e) => out!("{}", e.render(q)),
            }
            continue;
        }
        match parse_query(line, &lookup) {
            Ok(plan) => match fed.run(&plan) {
                Ok((result, metrics)) => {
                    out!("{}-- {metrics}", result.show(20));
                }
                Err(e) => out!("execution error: {e}"),
            },
            Err(e) => out!("{}", e.render(line)),
        }
    }
}

/// Crude interactivity check without extra dependencies: treat the session
/// as interactive unless stdin looks piped (heuristic via env var set by
/// CI/test invocations is overkill; we simply always print the prompt to
/// stderr-free stdout only when TERM is set).
fn atty_like() -> bool {
    std::env::var("TERM").is_ok() && std::env::var("BDL_NONINTERACTIVE").is_err()
}
