//! Control iteration (the paper's graph-analytics extension): PageRank
//! executed natively inside the graph server, compared against the same
//! intent lowered to relational algebra with a server-side `Iterate`.
//!
//! ```text
//! cargo run --example graph_pagerank
//! ```

use std::sync::Arc;

use bda::core::{Plan, Provider};
use bda::federation::{Federation, Registry};
use bda::graph::GraphEngine;
use bda::lang::Query;
use bda::relational::RelationalEngine;
use bda::workloads::{random_graph, GraphSpec};

fn main() {
    let (_, edges) = random_graph(GraphSpec {
        vertices: 200,
        edges: 1_000,
        seed: 42,
    });

    // The graph server holds the edges natively; the relational server
    // keeps a copy so we can run the lowered form too.
    let graph = GraphEngine::new("graphstore");
    graph.store("edges", edges.clone()).expect("store");
    let rel = RelationalEngine::new("relstore");
    rel.store("edges", edges).expect("store");

    let mut fed = Federation::new();
    fed.register(Arc::new(graph));
    fed.register(Arc::new(rel));

    // Build the intent with the fluent API.
    let q = Query::scan("edges", fed.registry().schema_of("edges").expect("schema"))
        .page_rank(0.85, 100, 1e-10);

    // Native: the federation routes the intent to the graph engine and
    // the whole loop runs server-side.
    let (native, m_native) = fed.run(q.plan()).expect("native pagerank");
    println!(
        "native (graph engine): {} vertices ranked",
        native.num_rows()
    );
    println!("  {m_native}\n");

    // Lowered: restrict the federation to the relational server only;
    // the planner lowers PageRank to join/aggregate under Iterate.
    let mut rel_only = Registry::new();
    for p in fed.registry().providers() {
        if p.name() == "relstore" {
            rel_only.register(p.clone());
        }
    }
    let (lowered, m_lowered) = bda::federation::run_plan(
        &rel_only,
        q.plan(),
        &bda::federation::ExecOptions::default(),
    )
    .expect("lowered pagerank");
    println!("lowered (relational engine, server-side loop):");
    println!("  {m_lowered}\n");

    // Same ranks either way (modulo float summation order).
    let a = native.sorted_rows().expect("rows");
    let b = lowered.sorted_rows().expect("rows");
    let max_diff = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (x.get(1).as_float().unwrap() - y.get(1).as_float().unwrap()).abs())
        .fold(0.0f64, f64::max);
    println!("max rank difference native vs lowered: {max_diff:.2e}");
    assert!(max_diff < 1e-6, "the two executions must agree");

    // Top five vertices by rank, via the algebra itself.
    let top = Plan::scan("edges", fed.registry().schema_of("edges").expect("schema"));
    let top = Query::from_plan(top)
        .page_rank(0.85, 100, 1e-10)
        .order_by_desc("rank")
        .take(5);
    let (top5, _) = fed.run(top.plan()).expect("top-5 query");
    println!("\ntop five vertices by rank:\n{}", top5.show(5));
}
