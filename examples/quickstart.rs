//! Quickstart: build a federation, load data, run queries three ways
//! (builder API, BDL text, raw algebra), and read the metrics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use bda::core::{col, lit, AggExpr, AggFunc, Provider};
use bda::federation::Federation;
use bda::lang::{parse_query, Query};
use bda::relational::RelationalEngine;
use bda::storage::{Column, DataSet};

fn main() {
    // 1. Stand up a back-end provider and load a table.
    let rel = RelationalEngine::new("rel");
    let sales = DataSet::from_columns(vec![
        (
            "region",
            Column::from(vec!["west", "east", "west", "north", "east"]),
        ),
        (
            "amount",
            Column::from(vec![120.0f64, 80.0, 45.0, 200.0, 130.0]),
        ),
        ("units", Column::from(vec![3i64, 2, 1, 5, 4])),
    ])
    .expect("valid columns");
    rel.store("sales", sales).expect("store");

    // 2. Register it with the federation.
    let mut fed = Federation::new();
    fed.register(Arc::new(rel));
    let schema = fed.registry().schema_of("sales").expect("catalog");

    // 3a. The LINQ-style builder.
    let q = Query::scan("sales", schema.clone())
        .where_(col("amount").gt(lit(50.0)))
        .group_by(
            vec!["region"],
            vec![
                AggExpr::new(AggFunc::Sum, col("amount"), "total"),
                AggExpr::count_star("orders"),
            ],
        )
        .order_by_desc("total");
    let (result, metrics) = fed.run(q.plan()).expect("builder query runs");
    println!("builder API result:\n{}", result.show(10));
    println!("metrics: {metrics}\n");

    // 3b. The same query as BDL text.
    let program = "scan sales \
        | where amount > 50.0 \
        | groupby region: sum(amount) as total, count(*) as orders \
        | orderby total desc";
    let lookup = |name: &str| fed.registry().schema_of(name).ok();
    let plan = parse_query(program, &lookup).expect("BDL parses");
    let (result_bdl, _) = fed.run(&plan).expect("BDL query runs");
    assert!(
        result.same_bag(&result_bdl).expect("comparable"),
        "both surfaces compile to the same algebra"
    );
    println!("BDL result matches the builder result.\n");

    // 3c. Raw algebra, shown as a plan tree.
    println!("the underlying algebra plan:\n{}", q.plan());
}
