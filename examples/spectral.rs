//! Spectral analysis as control iteration: power iteration for the
//! dominant eigenvector, expressed *in the algebra* as `Iterate` around a
//! `MatMul`, executed by the federation — and cross-checked against the
//! linear-algebra engine's native `power_iteration` routine.
//!
//! This is the "data mining needs repeated execution until convergence"
//! scenario from the paper, with the loop body routed to the matmul
//! specialist each iteration.
//!
//! ```text
//! cargo run --example spectral
//! ```

use std::sync::Arc;

use bda::core::{BinOp, Provider};
use bda::federation::Federation;
use bda::lang::Query;
use bda::linalg::{conv, power_iteration, LinAlgEngine};
use bda::workloads::band_matrix;

fn main() {
    let n = 32usize;
    // A symmetric banded matrix: well-behaved dominant eigenpair.
    let m = band_matrix(n, 3);

    let la = LinAlgEngine::new("la");
    la.store("m", m.clone()).expect("store matrix");
    // Initial vector: the n×1 all-ones matrix.
    let ones = bda::storage::dataset::matrix_dataset(n, 1, vec![1.0; n]).expect("ones");
    la.store("x0", ones).expect("store x0");

    let mut fed = Federation::new();
    fed.register(Arc::new(la));
    let reg = fed.registry();
    let m_schema = reg.provider("la").unwrap().schema_of("m").unwrap();
    let x_schema = reg.provider("la").unwrap().schema_of("x0").unwrap();

    // Un-normalized power iteration in the algebra: x ← (M x) / ‖M x‖ is
    // not directly expressible without a scalar broadcast, so iterate the
    // *direction-preserving* form x ← M x scaled by a fixed factor close
    // to 1/λ (guarding magnitude), then normalize outside. Here we simply
    // run a fixed number of steps of x ← M x · s with s = 0.2 (the band
    // matrix's dominant eigenvalue is ≈ 2–3, so the iterate stays finite).
    let steps = 150;
    let scale = bda::storage::dataset::matrix_dataset(n, 1, vec![0.2; n]).expect("scale vector");
    la_store(&fed, "s", scale);

    let q = Query::scan("x0", x_schema.clone())
        .iterate(steps, None, |state| {
            Query::scan("m", m_schema.clone())
                .matmul(state)
                // Cell-wise scale to keep magnitudes bounded.
                .elemwise(BinOp::Mul, Query::scan("s", x_schema.clone()))
        })
        .expect("iterate builds");

    let (out, metrics) = fed.run(q.plan()).expect("federated power iteration");
    println!(
        "algebraic power iteration: {} steps driven by the {} tier",
        metrics.client_driven_iterations.max(steps),
        if metrics.client_driven_iterations > 0 {
            "app"
        } else {
            "server"
        }
    );

    // Normalize the resulting direction.
    let (mat, _) = conv::to_matrix(&out).expect("vector result");
    let v: Vec<f64> = mat.data().to_vec();
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    let direction: Vec<f64> = v.iter().map(|x| x / norm).collect();

    // Native power iteration on the same matrix.
    let (m_native, _) = conv::to_matrix(&m).expect("matrix");
    let (lambda, native_v, iters) = power_iteration(&m_native, 1_000, 1e-12);
    println!("native power iteration: λ ≈ {lambda:.6} after {iters} iterations");

    // Directions agree up to sign.
    // The band matrix has a modest spectral gap, so alignment is good but
    // not machine-precision after a fixed step count.
    let dot: f64 = direction.iter().zip(&native_v).map(|(a, b)| a * b).sum();
    println!("|<algebraic, native>| = {:.9}", dot.abs());
    assert!(
        dot.abs() > 0.999,
        "algebraic and native eigenvectors must align, got {dot}"
    );

    // Rayleigh quotient from the algebraic direction reproduces λ.
    let mv = m_native.matvec(&direction);
    let rayleigh: f64 = direction.iter().zip(&mv).map(|(a, b)| a * b).sum();
    println!("Rayleigh quotient from algebraic vector: {rayleigh:.6}");
    assert!((rayleigh - lambda).abs() < 1e-3);
}

fn la_store(fed: &Federation, name: &str, ds: bda::storage::DataSet) {
    fed.registry()
        .provider("la")
        .expect("provider")
        .store(name, ds)
        .expect("store");
}
