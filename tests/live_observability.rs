//! Acceptance test for live operational observability (ISSUE 4): a
//! three-process federation — the app tier plus two engines behind real
//! loopback TCP servers, the same wire path the `bda-served` binary
//! runs — executes an *iterative* federated query while a concurrent
//! observer watches it over plain HTTP:
//!
//! * `/healthz` and `/readyz` answer 200 while the breakers are closed,
//! * `/metrics` is parseable Prometheus text carrying the protocol
//!   server's request histograms (the hub is shared, not copied),
//! * `/progress` shows the query's iterations advancing monotonically
//!   with convergence deltas while it runs,
//! * `/traces/<id>` serves the finished query's Chrome-trace JSON.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bda::core::{col, lit, OpKind, Provider};
use bda::federation::{Federation, MaskedProvider};
use bda::lang::Query;
use bda::relational::RelationalEngine;
use bda::storage::{DataSet, DataType, Field, Row, Schema, Value};
use bda_net::{serve, RemoteProvider};

/// Minimal HTTP GET over loopback; returns (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut conn = std::net::TcpStream::connect(addr).expect("connect to ops endpoint");
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: bda\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    let status = raw.lines().next().unwrap_or_default().to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The slice of the `/progress` document describing the query with
/// `trace_id` (fields up to its fragment list), or `None` when the
/// query is not (yet) listed.
fn progress_of(doc: &str, trace_id: u64) -> Option<String> {
    let key = format!("\"trace_id\":\"{trace_id:#018x}\"");
    let at = doc.find(&key)?;
    let rest = &doc[at..];
    let end = rest.find("\"fragments_done\"").unwrap_or(rest.len());
    Some(rest[..end].to_string())
}

/// Parse `"field":<digits>` out of a progress slice.
fn field_u64(slice: &str, field: &str) -> u64 {
    let key = format!("\"{field}\":");
    let at = slice.find(&key).unwrap_or_else(|| {
        panic!("progress entry is missing `{field}`: {slice}");
    });
    slice[at + key.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

#[test]
fn iterative_query_is_observable_over_http_while_it_runs() {
    // State table: 512 rows decaying toward zero; with epsilon 1e-9 the
    // client-driven loop runs ~80 rounds, each a real TCP round trip —
    // long enough for the HTTP observer to catch it in flight.
    let schema = Schema::new(vec![
        Field::value("id", DataType::Int64),
        Field::value("x", DataType::Float64),
    ])
    .unwrap();
    let rows: Vec<Row> = (0..512)
        .map(|i| Row(vec![Value::Int(i), Value::Float(1e15 + i as f64)]))
        .collect();
    let rel = RelationalEngine::new("rel");
    rel.store("state0", DataSet::from_rows(schema.clone(), &rows).unwrap())
        .unwrap();
    let aux = RelationalEngine::new("aux");
    aux.store(
        "side",
        DataSet::from_rows(schema.clone(), &rows[..4]).unwrap(),
    )
    .unwrap();

    // Two server "processes" on real sockets plus this app tier = the
    // three-process topology the bda-served binary deploys.
    let server_rel = serve(Arc::new(rel), "127.0.0.1:0").unwrap();
    let _server_aux = serve(Arc::new(aux), "127.0.0.1:0").unwrap();

    let mut fed = Federation::new();
    // Mask Iterate so the *app tier* drives the loop over the wire —
    // that is what makes per-iteration progress observable.
    fed.register(Arc::new(MaskedProvider::new(
        Arc::new(RemoteProvider::connect(server_rel.addr().to_string()).unwrap()),
        vec![OpKind::Iterate],
    )));
    fed.register(Arc::new(
        RemoteProvider::connect(_server_aux.addr().to_string()).unwrap(),
    ));

    // Mount the ops endpoint sharing the rel server's metrics hub: the
    // scrape must see the same cells the protocol handlers update.
    let ops = fed
        .serve_ops("127.0.0.1:0", server_rel.metrics())
        .expect("ops endpoint binds");

    // Health answers before any query runs.
    let (status, body) = http_get(ops.addr(), "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body.trim(), "ok");
    let (status, body) = http_get(ops.addr(), "/readyz");
    assert!(status.contains("200"), "{status} {body}");

    let tracer = bda::obs::Tracer::new(0x0B5);
    let trace_id = tracer.trace_id();

    // The concurrent observer: poll /progress as fast as connections
    // allow until the query finishes, keeping every snapshot.
    let stop = Arc::new(AtomicBool::new(false));
    let observer = {
        let stop = Arc::clone(&stop);
        let addr = ops.addr();
        std::thread::spawn(move || {
            let mut snapshots = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                let (status, body) = http_get(addr, "/progress");
                assert!(status.contains("200"), "{status}");
                snapshots.push(body);
            }
            snapshots
        })
    };

    let q = Query::scan("state0", schema)
        .iterate(1_000, Some(1e-9), |state| {
            state.select(vec![("id", col("id")), ("x", col("x").mul(lit(0.5)))])
        })
        .unwrap();
    let (out, metrics) = fed.run_traced(q.plan(), &tracer).expect("iterative query");
    stop.store(true, Ordering::SeqCst);
    let snapshots = observer.join().expect("observer thread");

    assert!(
        metrics.client_driven_iterations > 10,
        "the loop must run at the app tier: {metrics}"
    );
    for r in out.rows().unwrap() {
        assert!(r.get(1).as_float().unwrap().abs() < 1e-6);
    }

    // The observer saw the query: iterations advance monotonically and
    // carry convergence deltas while running.
    let observed: Vec<String> = snapshots
        .iter()
        .filter_map(|doc| progress_of(doc, trace_id))
        .collect();
    assert!(
        !observed.is_empty(),
        "observer never saw the query in /progress ({} snapshots)",
        snapshots.len()
    );
    let iterations: Vec<u64> = observed.iter().map(|s| field_u64(s, "iteration")).collect();
    assert!(
        iterations.windows(2).all(|w| w[0] <= w[1]),
        "iterations regressed: {iterations:?}"
    );
    assert!(
        observed
            .iter()
            .any(|s| s.contains("\"state\":\"running\"") && s.contains("\"last_delta\":0")),
        "no running snapshot carried a convergence delta"
    );

    // The final /progress view shows the finished query.
    let (_, doc) = http_get(ops.addr(), "/progress");
    let done = progress_of(&doc, trace_id).expect("completed query stays listed");
    assert!(done.contains("\"state\":\"done\""), "{done}");
    assert!(field_u64(&done, "iteration") > 10, "{done}");
    assert_eq!(field_u64(&done, "max_iterations"), 1_000, "{done}");

    // The scrape is Prometheus text with the protocol server's request
    // histograms — every iteration crossed that server.
    let (status, metrics_text) = http_get(ops.addr(), "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(
        metrics_text.contains("# TYPE bda_net_request_duration_seconds histogram"),
        "{metrics_text}"
    );
    assert!(
        metrics_text.contains("bda_net_request_duration_seconds_bucket{le=\"+Inf\"}"),
        "{metrics_text}"
    );
    assert!(
        metrics_text.contains("bda_net_requests_total{kind=\"execute\"}"),
        "{metrics_text}"
    );

    // The finished trace is served as Chrome-trace JSON under its id.
    let (status, trace_json) = http_get(ops.addr(), &format!("/traces/{trace_id:#018x}"));
    assert!(status.contains("200"), "{status}: {trace_json}");
    assert!(
        trace_json.starts_with('[') && trace_json.trim_end().ends_with(']'),
        "not a Chrome trace-event array: {}",
        &trace_json[..trace_json.len().min(200)]
    );
    assert!(trace_json.contains("\"ph\":\"X\""), "no duration events");
    assert!(
        trace_json.contains("iteration:1"),
        "iteration spans missing from the served trace"
    );
    assert!(
        trace_json.contains("delta:"),
        "convergence deltas missing from the served trace"
    );

    // Unknown trace ids and paths 404 rather than hang or panic.
    let (status, _) = http_get(ops.addr(), "/traces/12345651");
    assert!(status.contains("404"), "{status}");
    let (status, _) = http_get(ops.addr(), "/definitely-not-a-route");
    assert!(status.contains("404"), "{status}");
}
