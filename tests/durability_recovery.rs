//! Acceptance tests for the durability subsystem inside the chaos
//! federation (ROADMAP: robustness): a durable provider is crashed and
//! reopened over its data directory, rejoins the federation with its
//! data, and the federated plan still matches the reference evaluator.
//! Disk faults (torn appends, ENOSPC, truncated snapshots) ride the
//! same `BDA_FAULT_SEED` convention as the transport and provider
//! chaos, and the acknowledged-writes contract is checked under every
//! seeded fault plan: recover everything acked, or refuse loudly —
//! never ack-then-lose.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bda::core::reference::evaluate;
use bda::core::{Plan, Provider, ReferenceProvider};
use bda::federation::{ExecOptions, Federation, RecoveryPolicy};
use bda::lang::Query;
use bda::linalg::LinAlgEngine;
use bda::relational::RelationalEngine;
use bda::storage::{Column, DataSet};
use bda::workloads::random_matrix;
use bda_durability::{is_durability_error, DiskFaults, DurableProvider};
use bda_net::{serve_durable_with_faults, DurabilityOptions, NetFaults, RemoteProvider};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bda-durability-recovery-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn lookup_table() -> DataSet {
    DataSet::from_columns(vec![
        ("row", Column::from((0i64..8).collect::<Vec<i64>>())),
        (
            "weight",
            Column::from((0..8).map(|i| 1.0 + i as f64).collect::<Vec<f64>>()),
        ),
    ])
    .unwrap()
}

fn dataset(i: i64) -> DataSet {
    DataSet::from_columns(vec![("k", Column::from(vec![i, i * 2, i * 3]))]).unwrap()
}

/// Short snapshot cadence so tests exercise compaction; the byte
/// threshold stays tiny so the background thread actually snapshots.
fn durable_options(dir: &std::path::Path) -> DurabilityOptions {
    DurabilityOptions {
        snapshot_every_bytes: u64::MAX, // only explicit snapshot_now()
        snapshot_interval: Duration::from_millis(50),
        ..DurabilityOptions::new(dir)
    }
}

#[test]
fn killed_durable_server_rejoins_the_federation_with_its_data() {
    let dir = tmp_dir();

    // Phase 1: the relational site is durable; ingest its lookup table
    // over the wire, then crash the server (the handle drops without
    // any explicit flush — acknowledged writes are already on disk).
    {
        let rel: Arc<dyn Provider> = Arc::new(RelationalEngine::new("rel"));
        let server = serve_durable_with_faults(
            rel,
            "127.0.0.1:0",
            NetFaults::new(0xBDA, 0.0),
            durable_options(&dir),
        )
        .unwrap();
        let remote = RemoteProvider::connect(server.addr().to_string()).unwrap();
        remote.store("lookup", lookup_table()).unwrap();
    }

    // Phase 2: a *fresh* engine behind the same data directory — the
    // recovered server rejoins the federation and the cross-server
    // join+matmul plan matches the reference evaluator exactly.
    let rel: Arc<dyn Provider> = Arc::new(RelationalEngine::new("rel"));
    let server = serve_durable_with_faults(
        rel,
        "127.0.0.1:0",
        NetFaults::new(0xBDA, 0.0),
        durable_options(&dir),
    )
    .unwrap();
    let report = server.recovery_report().expect("durable server");
    assert_eq!(
        report.datasets,
        vec!["lookup".to_string()],
        "recovery found the acked ingest"
    );

    let la = LinAlgEngine::new("la");
    la.store("a", random_matrix(8, 8, 1)).unwrap();
    la.store("b", random_matrix(8, 8, 2)).unwrap();
    let mut fed = Federation::new();
    fed.register(Arc::new(la));
    fed.register(Arc::new(
        RemoteProvider::connect(server.addr().to_string()).unwrap(),
    ));
    *fed.options_mut() = ExecOptions {
        recovery: RecoveryPolicy {
            enabled: true,
            max_attempts: 4,
            backoff: Duration::from_millis(1),
            failover: false,
        },
        ..Default::default()
    };

    let a = fed.registry().schema_of("a").unwrap();
    let b = fed.registry().schema_of("b").unwrap();
    let lookup = fed.registry().schema_of("lookup").unwrap();
    let plan = Query::scan("a", a)
        .matmul(Query::scan("b", b))
        .untag_dims()
        .join(Query::scan("lookup", lookup), vec![("row", "row")])
        .plan()
        .clone();
    let (out, _) = fed.run(&plan).expect("plan over the recovered site");

    let mut src = HashMap::new();
    src.insert("a".to_string(), random_matrix(8, 8, 1));
    src.insert("b".to_string(), random_matrix(8, 8, 2));
    src.insert("lookup".to_string(), lookup_table());
    let expected = evaluate(&plan, &src).expect("reference evaluation");
    assert!(
        out.same_bag(&expected).unwrap(),
        "recovered federation result disagrees with the reference evaluator"
    );

    // Staged-partition hygiene: the query shipped fragments to the
    // durable site; none may linger in its catalog, its staged map, or
    // (because staged names are never logged) its next incarnation.
    let durable = server.durable().expect("durable server");
    let leaked = durable.gc_staged_now();
    assert!(leaked.is_empty(), "staged {leaked:?} outlived their query");
    assert!(durable.staged_names().is_empty());
    for (name, _) in durable.inner().catalog() {
        assert!(
            !name.starts_with("__bda_frag_"),
            "staged `{name}` leaked into the durable catalog"
        );
    }
    durable.snapshot_now().expect("snapshot");
    drop(fed);
    drop(server);

    // Phase 3: one more reopen proves fragments never reach the disk —
    // and that recovery now reads the compacted snapshot.
    let rel: Arc<dyn Provider> = Arc::new(RelationalEngine::new("rel"));
    let reopened = DurableProvider::open(rel, durable_options(&dir)).unwrap();
    assert_eq!(reopened.report().datasets, vec!["lookup".to_string()]);
    assert!(
        reopened.report().snapshot_seq > 0,
        "recovery used the snapshot"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_seeded_disk_fault_plan_preserves_acknowledged_writes() {
    // Sweep seeds so all three fault modes (torn append, ENOSPC,
    // truncated snapshot) are exercised regardless of which one
    // `BDA_FAULT_SEED` would pick; each seed's plan is deterministic.
    for seed in 0..9u64 {
        let plan = DiskFaults::plan_from_seed(seed);
        let dir = tmp_dir();
        let mut acked: Vec<i64> = Vec::new();
        let snapshotted = {
            let inner: Arc<dyn Provider> = Arc::new(ReferenceProvider::new("ref"));
            let durable =
                DurableProvider::open(inner, durable_options(&dir).with_faults(plan)).unwrap();
            for i in 0..6i64 {
                if durable.store(&format!("d{i}"), dataset(i)).is_ok() {
                    acked.push(i);
                }
            }
            // The snapshot path is where the truncation fault bites.
            let snapshotted = durable.snapshot_now().is_ok();
            for i in 6..12i64 {
                if durable.store(&format!("d{i}"), dataset(i)).is_ok() {
                    acked.push(i);
                }
            }
            snapshotted
        };

        // Reopen with faults off: either every acknowledged store is
        // recovered intact, or (damaged snapshot) recovery refuses
        // loudly. Silent partial recovery is the one forbidden outcome.
        let inner: Arc<dyn Provider> = Arc::new(ReferenceProvider::new("ref"));
        match DurableProvider::open(inner, durable_options(&dir)) {
            Ok(recovered) => {
                for &i in &acked {
                    let name = format!("d{i}");
                    let schema = recovered
                        .catalog()
                        .into_iter()
                        .find(|(n, _)| *n == name)
                        .unwrap_or_else(|| {
                            panic!("seed {seed}: acked `{name}` lost after recovery")
                        })
                        .1;
                    let out = recovered.execute(&Plan::scan(&name, schema)).unwrap();
                    assert!(
                        out.same_bag(&dataset(i)).unwrap(),
                        "seed {seed}: acked `{name}` recovered with wrong content"
                    );
                }
                // A tear *after* the snapshot's rotation leaves its
                // half-record in the live segment; one before it was
                // legitimately compacted away with the rest of the log.
                if plan.torn_append_at.is_some_and(|t| t > 6) {
                    assert!(
                        recovered.report().torn_tail_truncated,
                        "seed {seed}: torn plan must leave a truncated tail"
                    );
                }
            }
            Err(e) => {
                // Only a damaged snapshot justifies refusing to start,
                // and the refusal must be loud and typed.
                assert!(
                    plan.truncate_snapshot && snapshotted,
                    "seed {seed}: unexpected recovery refusal: {e}"
                );
                assert!(is_durability_error(&e), "seed {seed}: {e}");
                assert!(e.to_string().contains("refusing"), "seed {seed}: {e}");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn change_stream_follows_remote_ingest_in_commit_order() {
    let dir = tmp_dir();
    let rel: Arc<dyn Provider> = Arc::new(ReferenceProvider::new("ref"));
    let server = serve_durable_with_faults(
        rel,
        "127.0.0.1:0",
        NetFaults::new(1, 0.0),
        durable_options(&dir),
    )
    .unwrap();
    let stream = server.durable().unwrap().subscribe_all();
    let remote = RemoteProvider::connect(server.addr().to_string()).unwrap();
    for i in 0..4i64 {
        remote.store(&format!("d{i}"), dataset(i)).unwrap();
    }
    remote.remove("d1");

    let mut seqs = Vec::new();
    let mut names = Vec::new();
    for _ in 0..5 {
        let delta = stream
            .next_timeout(Duration::from_secs(5))
            .expect("committed delta arrives");
        seqs.push(delta.seq);
        names.push(delta.name.clone());
    }
    assert_eq!(names, ["d0", "d1", "d2", "d3", "d1"]);
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "commit order: {seqs:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
