//! Regression tests for measured-cost calibration (ISSUE 8): with
//! calibration off, plans are byte-identical to the static planner no
//! matter what the process-global cost book has learned; with it on,
//! the planner routes fragments away from a site the book measured
//! slow; and the EWMA fold is deterministic — two books fed the same
//! profiles dump byte-identically.

use std::sync::Arc;

use bda::core::Provider;
use bda::federation::Federation;
use bda::lang::parse_query;
use bda::relational::RelationalEngine;
use bda::storage::{Column, DataSet};
use bda_obs::profile::{CostBook, QueryProfile, SiteProfile};

fn table(n: i64) -> DataSet {
    DataSet::from_columns(vec![
        ("k", Column::from((0..n).collect::<Vec<i64>>())),
        (
            "v",
            Column::from((0..n).map(|i| i as f64).collect::<Vec<f64>>()),
        ),
    ])
    .unwrap()
}

/// Two replicas of `events`; `sluggish` registered first so the static
/// planner's row-count tie-break always picks it.
fn replicated_federation() -> Federation {
    let sluggish = RelationalEngine::new("sluggish");
    sluggish.store("events", table(512)).unwrap();
    let fast = RelationalEngine::new("fast");
    fast.store("events", table(512)).unwrap();
    let mut fed = Federation::new();
    fed.register(Arc::new(sluggish));
    fed.register(Arc::new(fast));
    fed
}

fn site_profile(site: &str, fragment_wall_ns: u64) -> QueryProfile {
    QueryProfile {
        trace_id: 1,
        tenant: String::new(),
        wall_ns: fragment_wall_ns,
        slow: false,
        ops: Vec::new(),
        sites: vec![SiteProfile {
            site: site.to_string(),
            fragments: 1,
            fragment_wall_ns,
            transfer_bytes: 0,
            transfer_wall_ns: 0,
            retries: 0,
            failovers: 0,
        }],
    }
}

#[test]
fn calibration_off_plans_are_byte_identical_whatever_the_book_learned() {
    let mut fed = replicated_federation();
    fed.options_mut().calibrate = false;
    let plan = parse_query("scan events | where v > 10.0", &|name: &str| {
        fed.registry().schema_of(name).ok()
    })
    .unwrap();

    let before = fed.explain(&plan).unwrap();
    assert!(
        before.contains("sluggish"),
        "static tie-break must pick the first-registered replica:\n{before}"
    );

    // Teach the *process-global* book that `sluggish` is slow. With
    // calibration off this knowledge must change nothing.
    for _ in 0..8 {
        bda_obs::profile::global_costs().observe(&site_profile("sluggish", 30_000_000));
    }
    let after = fed.explain(&plan).unwrap();
    assert_eq!(
        before, after,
        "calibration off must stay byte-identical to the static planner"
    );

    // Calibration on consults the same global book and routes away from
    // the measured-slow replica (the unmeasured one costs an optimistic
    // zero — exploration).
    fed.options_mut().calibrate = true;
    let calibrated = fed.explain(&plan).unwrap();
    assert!(
        calibrated.contains("fast"),
        "calibrated placement must prefer the unmeasured replica:\n{calibrated}"
    );
    assert_ne!(before, calibrated);
}

#[test]
fn ewma_fold_is_deterministic_across_books() {
    let profiles: Vec<QueryProfile> = (0..12)
        .map(|i| site_profile(if i % 2 == 0 { "a" } else { "b" }, 1_000_000 + i * 37_501))
        .collect();
    let one = CostBook::new(9);
    let two = CostBook::new(9);
    for p in &profiles {
        one.observe(p);
        two.observe(p);
    }
    assert_eq!(one.render_json(), two.render_json());
    assert_ne!(
        one.render_json(),
        CostBook::new(9).render_json(),
        "observations must actually land in the dump"
    );
}
