//! Acceptance test for tenant-aware metering and the fleet view
//! (ISSUE 9): a three-process federation — the app tier plus two
//! engines behind real loopback TCP servers — runs queries on behalf of
//! named tenants while an HTTP observer checks that:
//!
//! * `/tenants` and `/tenants/<id>` serve the usage book with each
//!   tenant's charges (deterministic counts under a fixed seed),
//! * requests tagged on the wire (`Request::Tenant`) are attributed to
//!   the tag, not the peer address, down in the serving tier,
//! * `/cluster/metrics` merges the app tier's exposition with every
//!   registered provider's own `/metrics`-equivalent, pulled over
//!   `Request::Metrics` at scrape time and labeled per instance.

use std::io::{Read, Write};
use std::sync::Arc;

use bda::core::{col, lit, Provider};
use bda::federation::Federation;
use bda::lang::Query;
use bda::relational::RelationalEngine;
use bda::storage::{Column, DataSet};
use bda_net::{serve_with, RemoteProvider, ServeOptions};

/// Minimal HTTP GET over loopback; returns (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut conn = std::net::TcpStream::connect(addr).expect("connect to ops endpoint");
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: bda\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    let status = raw.lines().next().unwrap_or_default().to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Parse `"field":<digits>` out of a JSON snippet.
fn field_u64(slice: &str, field: &str) -> u64 {
    let key = format!("\"{field}\":");
    let at = slice
        .find(&key)
        .unwrap_or_else(|| panic!("missing `{field}` in {slice}"));
    slice[at + key.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

fn sample() -> DataSet {
    DataSet::from_columns(vec![
        ("k", Column::from(vec![1i64, 2, 3, 4, 5, 6, 7, 8])),
        (
            "v",
            Column::from(vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]),
        ),
    ])
    .unwrap()
}

#[test]
fn tenants_are_charged_and_the_fleet_view_merges() {
    bda::obs::meter::set_enabled(true);

    // Two server "processes" on real sockets, both charging the same
    // (process-global) usage book a real deployment's `--meter` mounts.
    let usage = bda::obs::meter::global_usage().clone();
    let rel = RelationalEngine::new("rel");
    rel.store("t", sample()).unwrap();
    let aux = RelationalEngine::new("aux");
    aux.store("side", sample()).unwrap();
    let server_rel = serve_with(
        Arc::new(rel),
        "127.0.0.1:0",
        ServeOptions {
            usage: Some(usage.clone()),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let server_aux = serve_with(
        Arc::new(aux),
        "127.0.0.1:0",
        ServeOptions {
            usage: Some(usage.clone()),
            ..ServeOptions::default()
        },
    )
    .unwrap();

    let mut fed = Federation::new();
    fed.register(Arc::new(
        RemoteProvider::connect(server_rel.addr().to_string()).unwrap(),
    ));
    fed.register(Arc::new(
        RemoteProvider::connect(server_aux.addr().to_string()).unwrap(),
    ));
    let ops = fed
        .serve_ops("127.0.0.1:0", server_rel.metrics())
        .expect("ops endpoint binds");

    // Run queries on behalf of two tenants: two for acme, one for zeta.
    let q = Query::scan("t", fed.registry().schema_of("t").unwrap()).where_(col("k").gt(lit(2i64)));
    for (tenant, runs) in [("acme", 2u64), ("zeta", 1u64)] {
        for i in 0..runs {
            let tracer = bda::obs::Tracer::new(0xBDA0 + i);
            let (out, _) = fed
                .run_traced_as(q.plan(), &tracer, tenant)
                .expect("tenant query");
            assert_eq!(out.num_rows(), 6);
        }
    }

    // /tenants lists both tenants with deterministic query counts.
    let (status, body) = http_get(ops.addr(), "/tenants");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"tenant\":\"acme\""), "{body}");
    assert!(body.contains("\"tenant\":\"zeta\""), "{body}");

    // /tenants/<id> serves one tenant's charges: exactly the queries we
    // ran, with CPU time and rows attributed.
    let (status, acme) = http_get(ops.addr(), "/tenants/acme");
    assert!(status.contains("200"), "{status}");
    assert_eq!(field_u64(&acme, "queries"), 2, "{acme}");
    assert!(field_u64(&acme, "cpu_ns") > 0, "{acme}");
    let (_, zeta) = http_get(ops.addr(), "/tenants/zeta");
    assert_eq!(field_u64(&zeta, "queries"), 1, "{zeta}");

    // Unknown tenants 404 rather than inventing an empty record.
    let (status, _) = http_get(ops.addr(), "/tenants/nobody");
    assert!(status.contains("404"), "{status}");

    // A client tagging its requests on the wire is attributed by tag in
    // the *serving* tier: the server's own registry grows per-tenant
    // series and the shared usage book charges the tagged identity.
    let mut direct = RemoteProvider::connect(server_rel.addr().to_string()).unwrap();
    direct.set_tenant("wire-acme");
    let schema = direct.catalog()[0].1.clone();
    let out = direct.execute(&bda::core::Plan::scan("t", schema)).unwrap();
    assert_eq!(out.num_rows(), 8);
    let server_text = direct.metrics_text().unwrap();
    assert!(
        server_text.contains("bda_net_tenant_requests_total{tenant=\"wire-acme\"}"),
        "{server_text}"
    );
    let wire_acme = usage.usage_of("wire-acme").expect("wire tag charged");
    assert!(
        wire_acme.cpu_ns > 0 && wire_acme.wire_bytes > 0,
        "{wire_acme:?}"
    );

    // Untagged traffic keeps the pre-tenant attribution: the loopback
    // peer address has per-tenant series of its own.
    assert!(
        server_text.contains("bda_net_tenant_requests_total{tenant=\"127.0.0.1\"}"),
        "{server_text}"
    );

    // /cluster/metrics merges app + both providers, each sample labeled
    // with its instance, HELP/TYPE headers deduplicated fleet-wide.
    let (status, fleet) = http_get(ops.addr(), "/cluster/metrics");
    assert!(status.contains("200"), "{status}");
    for instance in ["app", "rel", "aux"] {
        assert!(
            fleet.contains(&format!("instance=\"{instance}\"")),
            "missing instance {instance}: {fleet}"
        );
    }
    assert!(
        fleet.contains("bda_net_requests_total{instance=\"rel\",kind=\"execute\"}"),
        "{fleet}"
    );
    assert_eq!(
        fleet
            .matches("# TYPE bda_net_requests_total counter")
            .count(),
        1,
        "HELP/TYPE must merge to one header per family: {fleet}"
    );

    // The query log narrows to one tenant with `?tenant=`.
    let (status, filtered) = http_get(ops.addr(), "/queries?tenant=acme");
    assert!(status.contains("200"), "{status}");
    assert!(filtered.contains("\"tenant\":\"acme\""), "{filtered}");
    assert!(!filtered.contains("\"tenant\":\"zeta\""), "{filtered}");
}
