//! Acceptance test for fault-tolerant federated execution (ROADMAP:
//! robustness): a cross-server join+matmul plan completes *correctly* —
//! verified against the reference evaluator — while one provider fails
//! transiently at p = 0.3 and another is crashed outright, exercising
//! per-fragment retry and failover onto a replica. The same plan with
//! recovery disabled fails.
//!
//! Fault injection is seeded: set `BDA_FAULT_SEED` (the chaos CI job
//! sweeps a seed matrix) to replay a specific fault stream; the default
//! seed is used otherwise.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bda::core::reference::evaluate;
use bda::core::{Plan, Provider};
use bda::federation::{
    fault_seed_from_env, BreakerState, ExecOptions, FaultConfig, FaultyProvider, Federation,
    RecoveryPolicy, TransferMode,
};
use bda::lang::Query;
use bda::linalg::LinAlgEngine;
use bda::relational::RelationalEngine;
use bda::storage::{Column, DataSet};
use bda::workloads::random_matrix;
use bda_net::{RemoteOptions, RemoteProvider, RetryPolicy};
use bda_reactor::{serve_reactor, ReactorHandle, ReactorOptions};

const DEFAULT_SEED: u64 = 0xBDA;

fn lookup_table() -> DataSet {
    DataSet::from_columns(vec![
        ("row", Column::from((0i64..8).collect::<Vec<i64>>())),
        (
            "weight",
            Column::from((0..8).map(|i| 1.0 + i as f64).collect::<Vec<f64>>()),
        ),
    ])
    .unwrap()
}

/// The chaos federation: `la1` (first registered, so the planner pins the
/// matmul there) is crashed from the start; `la2` is its healthy replica;
/// `rel` fails transiently at p = 0.3 (with one guaranteed failure so
/// every seed exercises a retry). `with_replica: false` drops `la2`,
/// leaving failover nowhere to go.
fn chaos_federation(with_replica: bool) -> Federation {
    let seed = fault_seed_from_env(DEFAULT_SEED);
    let la1 = LinAlgEngine::new("la1");
    la1.store("a", random_matrix(8, 8, 1)).unwrap();
    la1.store("b", random_matrix(8, 8, 2)).unwrap();
    let la2 = LinAlgEngine::new("la2");
    la2.store("a", random_matrix(8, 8, 1)).unwrap();
    la2.store("b", random_matrix(8, 8, 2)).unwrap();
    let rel = RelationalEngine::new("rel");
    rel.store("lookup", lookup_table()).unwrap();

    let mut fed = Federation::new();
    fed.register(Arc::new(FaultyProvider::new(
        Arc::new(la1),
        FaultConfig::crash_after(0),
    )));
    if with_replica {
        fed.register(Arc::new(la2));
    }
    fed.register(Arc::new(FaultyProvider::new(
        Arc::new(rel),
        FaultConfig {
            seed,
            execute_error_rate: 0.3,
            store_error_rate: 0.3,
            fail_first: 1,
            ..FaultConfig::default()
        },
    )));
    fed
}

/// Matmul on a linalg server, join on the relational server.
fn join_matmul_plan(fed: &Federation) -> Plan {
    let a = fed.registry().schema_of("a").unwrap();
    let b = fed.registry().schema_of("b").unwrap();
    let lookup = fed.registry().schema_of("lookup").unwrap();
    Query::scan("a", a)
        .matmul(Query::scan("b", b))
        .untag_dims()
        .join(Query::scan("lookup", lookup), vec![("row", "row")])
        .plan()
        .clone()
}

fn oracle() -> HashMap<String, DataSet> {
    let mut src = HashMap::new();
    src.insert("a".to_string(), random_matrix(8, 8, 1));
    src.insert("b".to_string(), random_matrix(8, 8, 2));
    src.insert("lookup".to_string(), lookup_table());
    src
}

/// Generous retry budget: at p = 0.3 per call, six attempts make an
/// unrecovered stage vanishingly unlikely for any seed in the CI matrix.
fn recovering_options() -> ExecOptions {
    ExecOptions {
        recovery: RecoveryPolicy {
            enabled: true,
            max_attempts: 6,
            backoff: Duration::from_millis(1),
            failover: true,
        },
        ..Default::default()
    }
}

/// Enabled when `BDA_TRACE` is set (the chaos CI job sets it): the same
/// run then records a full trace, letting the test assert that recovery
/// shows up as span events, not just counters. `FaultyProvider` draws
/// its fault stream from a shared counter, so tracing never perturbs
/// which calls fail.
fn chaos_tracer() -> bda::obs::Tracer {
    if std::env::var("BDA_TRACE").is_ok_and(|v| !v.is_empty() && v != "0") {
        bda::obs::Tracer::new(bda::obs::trace_seed_from_env(DEFAULT_SEED))
    } else {
        bda::obs::Tracer::disabled()
    }
}

#[test]
fn plan_completes_correctly_under_faults_via_retry_and_failover() {
    let mut fed = chaos_federation(true);
    *fed.options_mut() = recovering_options();
    let plan = join_matmul_plan(&fed);
    let tracer = chaos_tracer();
    let (out, metrics) = fed
        .run_traced(&plan, &tracer)
        .expect("recovery completes the plan despite a crash and p=0.3 transients");

    let expected = evaluate(&plan, &oracle()).expect("reference evaluation");
    assert!(
        out.same_bag(&expected).unwrap(),
        "recovered result disagrees with the reference evaluator"
    );
    assert!(
        metrics.retries > 0,
        "rel's transients force retries: {metrics}"
    );
    assert!(
        metrics.failovers > 0,
        "la1's crash forces failover: {metrics}"
    );

    // Nothing staged survives the run, on any provider.
    for p in fed.registry().providers() {
        for (name, _) in p.catalog() {
            assert!(
                !name.starts_with("__bda_frag_"),
                "staged intermediate `{name}` leaked on `{}`",
                p.name()
            );
        }
    }

    // Under BDA_TRACE, the recovery story is auditable from the trace
    // alone: every counted retry/failover left a span event behind.
    if tracer.is_enabled() {
        let trace = tracer.finish();
        let events: Vec<&str> = trace
            .spans
            .iter()
            .flat_map(|s| s.events.iter().map(|e| e.label.as_str()))
            .collect();
        assert!(
            events.iter().any(|l| l.starts_with("retry:")),
            "retries counted but no retry events recorded: {events:?}"
        );
        assert!(
            events.iter().any(|l| l.starts_with("failover:")),
            "failovers counted but no failover events recorded: {events:?}"
        );
        assert!(
            !trace.spans_named("fragment:").is_empty(),
            "traced chaos run recorded no fragment spans"
        );
    }
}

#[test]
fn chaos_under_parallel_workers_still_converges() {
    // The same crash + p = 0.3 chaos, but dispatched by the parallel
    // scheduler with 4 workers and partition-parallel kernels: recovery
    // semantics must hold per sub-fragment, and the answer must still be
    // the reference evaluator's.
    let mut fed = chaos_federation(true);
    *fed.options_mut() = ExecOptions {
        workers: 4,
        ..recovering_options()
    };
    let plan = join_matmul_plan(&fed);
    let (out, metrics) = fed
        .run(&plan)
        .expect("parallel recovery completes the plan despite a crash and p=0.3 transients");

    let expected = evaluate(&plan, &oracle()).expect("reference evaluation");
    assert!(
        out.same_bag(&expected).unwrap(),
        "parallel recovered result disagrees with the reference evaluator"
    );
    assert!(
        metrics.failovers > 0,
        "la1's crash forces failover under parallel dispatch: {metrics}"
    );

    // Staged intermediates are cleaned up on every provider here too.
    for p in fed.registry().providers() {
        for (name, _) in p.catalog() {
            assert!(
                !name.starts_with("__bda_frag_"),
                "staged intermediate `{name}` leaked on `{}`",
                p.name()
            );
        }
    }
}

#[test]
fn same_faults_without_recovery_fail() {
    let fed = chaos_federation(true);
    let plan = join_matmul_plan(&fed);
    let opts = ExecOptions {
        recovery: RecoveryPolicy::disabled(),
        ..Default::default()
    };
    let err = fed.run_with(&plan, &opts).unwrap_err();
    // The crash is deterministic and seed-independent, so the failure is
    // too; without retry/failover it aborts the plan.
    assert!(err.to_string().contains("injected"), "{err}");
}

#[test]
fn failover_needs_somewhere_to_go() {
    // Without the replica, retry still works but the crashed matmul site
    // has no stand-in: the plan fails even with recovery on.
    let fed = chaos_federation(false);
    let plan = join_matmul_plan(&fed);
    let err = fed.run_with(&plan, &recovering_options()).unwrap_err();
    assert!(err.to_string().contains("injected crash"), "{err}");
}

#[test]
fn permanent_failure_leaves_a_flight_recorder_dump() {
    // The crash flight recorder is always on: when a query fails
    // permanently, the executor dumps the recent-event ring to
    // `$BDA_FLIGHT_DIR` and the dump names the fragment and provider
    // that sank the query — a post-mortem without any tracing enabled.
    let dir = std::env::temp_dir().join(format!("bda-flight-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("BDA_FLIGHT_DIR", &dir);

    let fed = chaos_federation(false);
    let plan = join_matmul_plan(&fed);
    let err = fed.run_with(&plan, &recovering_options()).unwrap_err();
    assert!(err.to_string().contains("injected crash"), "{err}");

    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("bda-flight-"))
        .collect();
    assert!(!dumps.is_empty(), "no flight dump written to {dir:?}");
    let text = dumps
        .iter()
        .map(|d| std::fs::read_to_string(d.path()).unwrap())
        .collect::<String>();
    assert!(
        text.contains("fragment:") && text.contains("@la1"),
        "dump does not name the failing fragment and provider:\n{text}"
    );
    assert!(
        text.contains("failed permanently"),
        "dump does not record the permanent failure:\n{text}"
    );
    // The error itself points at the dump when its variant carries a
    // message; either way the file exists for the operator.
    if let Some(at) = err.to_string().find("flight:") {
        let rest = &err.to_string()[at + "flight:".len()..];
        let path = rest.split(']').next().unwrap().to_string();
        assert!(
            std::path::Path::new(&path).exists(),
            "error references a missing dump: {path}"
        );
    }

    std::env::remove_var("BDA_FLIGHT_DIR");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Chaos parity against the reactor serving core
//
// The same fault plan as `chaos_federation`, but every provider now lives
// behind a real loopback TCP socket served by `serve_reactor` — the sharded
// event-loop core — instead of running in-process. Retry, failover, and
// circuit-breaker semantics are the executor's contract with *providers*;
// changing the serving core underneath must not change any of it.
// ---------------------------------------------------------------------------

/// A `RemoteProvider` whose transport does NOT retry: every transient
/// error surfaces to the federation executor, so the executor's own
/// retry accounting stays comparable with the in-process chaos tests.
fn connect_no_transport_retry(addr: String) -> RemoteProvider {
    RemoteProvider::connect_with(
        addr,
        RemoteOptions {
            retry: RetryPolicy {
                attempts: 1,
                initial_backoff: Duration::from_millis(1),
            },
            ..RemoteOptions::default()
        },
    )
    .expect("connect to reactor server")
}

/// The chaos federation of [`chaos_federation`], rebuilt multi-process:
/// each (possibly faulty) engine sits behind its own reactor server and
/// registers through a `RemoteProvider`. The handles keep the servers
/// alive for the duration of the test.
fn reactor_chaos_federation(with_replica: bool) -> (Federation, Vec<ReactorHandle>) {
    let seed = fault_seed_from_env(DEFAULT_SEED);
    let la1 = LinAlgEngine::new("la1");
    la1.store("a", random_matrix(8, 8, 1)).unwrap();
    la1.store("b", random_matrix(8, 8, 2)).unwrap();
    let la2 = LinAlgEngine::new("la2");
    la2.store("a", random_matrix(8, 8, 1)).unwrap();
    la2.store("b", random_matrix(8, 8, 2)).unwrap();
    let rel = RelationalEngine::new("rel");
    rel.store("lookup", lookup_table()).unwrap();

    let mut servers = Vec::new();
    let mut fed = Federation::new();
    let crashed: Arc<dyn Provider> = Arc::new(FaultyProvider::new(
        Arc::new(la1),
        FaultConfig::crash_after(0),
    ));
    let s = serve_reactor(crashed, "127.0.0.1:0", ReactorOptions::default()).unwrap();
    fed.register(Arc::new(connect_no_transport_retry(s.addr().to_string())));
    servers.push(s);
    if with_replica {
        let s = serve_reactor(Arc::new(la2), "127.0.0.1:0", ReactorOptions::default()).unwrap();
        fed.register(Arc::new(connect_no_transport_retry(s.addr().to_string())));
        servers.push(s);
    }
    let flaky: Arc<dyn Provider> = Arc::new(FaultyProvider::new(
        Arc::new(rel),
        FaultConfig {
            seed,
            execute_error_rate: 0.3,
            store_error_rate: 0.3,
            fail_first: 1,
            ..FaultConfig::default()
        },
    ));
    let s = serve_reactor(flaky, "127.0.0.1:0", ReactorOptions::default()).unwrap();
    fed.register(Arc::new(connect_no_transport_retry(s.addr().to_string())));
    servers.push(s);
    (fed, servers)
}

#[test]
fn chaos_over_reactor_servers_recovers_via_retry_and_failover() {
    let (mut fed, _servers) = reactor_chaos_federation(true);
    *fed.options_mut() = ExecOptions {
        // Server-to-server pushes route intermediates through the reactor
        // cores directly, so shedding/transients on *that* path are
        // exercised too.
        transfer: TransferMode::RemoteTcp,
        ..recovering_options()
    };
    let plan = join_matmul_plan(&fed);
    let (out, metrics) = fed
        .run(&plan)
        .expect("recovery completes the plan over reactor-served providers");

    let expected = evaluate(&plan, &oracle()).expect("reference evaluation");
    assert!(
        out.same_bag(&expected).unwrap(),
        "recovered remote result disagrees with the reference evaluator"
    );
    assert!(
        metrics.retries > 0,
        "rel's transients must surface over the wire and force retries: {metrics}"
    );
    assert!(
        metrics.failovers > 0,
        "la1's crash must force failover onto la2 over the wire: {metrics}"
    );

    // Cleanup parity: nothing staged survives on any *server* either.
    for p in fed.registry().providers() {
        for (name, _) in p.catalog() {
            assert!(
                !name.starts_with("__bda_frag_"),
                "staged intermediate `{name}` leaked on reactor-served `{}`",
                p.name()
            );
        }
    }
}

#[test]
fn chaos_over_reactor_servers_without_replica_fails_the_same_way() {
    let (fed, _servers) = reactor_chaos_federation(false);
    let plan = join_matmul_plan(&fed);
    let err = fed.run_with(&plan, &recovering_options()).unwrap_err();
    // The crash message crosses the wire intact: same failure mode, same
    // diagnosis as the in-process run.
    assert!(err.to_string().contains("injected crash"), "{err}");
}

#[test]
fn breaker_trips_on_a_crashed_reactor_site_exactly_as_in_process() {
    // Only the crashed site holds the data: every run fails permanently,
    // feeding the same per-provider breaker the in-process executor uses.
    let (fed, _servers) = reactor_chaos_federation(false);
    let plan = join_matmul_plan(&fed);
    let threshold = fed.registry().health().config().failure_threshold;

    let mut runs = 0;
    while fed.registry().health().state("la1") != BreakerState::Open {
        runs += 1;
        assert!(
            runs <= threshold + 2,
            "breaker failed to trip after {runs} failing runs"
        );
        let err = fed.run_with(&plan, &recovering_options()).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
    }
    assert_eq!(fed.registry().health().state("la1"), BreakerState::Open);
    assert!(
        fed.registry().health().trips() >= 1,
        "trip counter must record the open"
    );
    // An open breaker rejects placement outright — the next run still
    // fails (no eligible site), without needing la1 to answer at all.
    assert!(fed.run_with(&plan, &recovering_options()).is_err());
}
