//! Acceptance test for `bda-net`: a federation whose providers live in
//! **separate server processes** (well, separate threads behind real
//! loopback TCP sockets — the wire path is identical to separate
//! processes, which is how the `bda-served` binary runs them).
//!
//! Two servers answer a single cross-server plan that joins relational
//! data against a matrix product, with `TransferMode::RemoteTcp` making
//! the intermediate hop a *direct server-to-server* transfer.

use std::collections::HashMap;
use std::sync::Arc;

use bda::core::reference::evaluate;
use bda::core::Provider;
use bda::federation::{ExecOptions, Federation, TransferMode};
use bda::lang::Query;
use bda::linalg::LinAlgEngine;
use bda::relational::RelationalEngine;
use bda::storage::{Column, DataSet};
use bda::workloads::random_matrix;
use bda_net::{serve, RemoteProvider, ServerHandle};

fn lookup_table() -> DataSet {
    DataSet::from_columns(vec![
        ("row", Column::from((0i64..8).collect::<Vec<i64>>())),
        (
            "weight",
            Column::from((0..8).map(|i| 1.0 + i as f64).collect::<Vec<f64>>()),
        ),
    ])
    .unwrap()
}

/// Two engines, each behind its own TCP server on 127.0.0.1.
fn remote_federation() -> (Federation, Vec<ServerHandle>) {
    let la = LinAlgEngine::new("la");
    la.store("a", random_matrix(8, 8, 1)).unwrap();
    la.store("b", random_matrix(8, 8, 2)).unwrap();

    let rel = RelationalEngine::new("rel");
    rel.store("lookup", lookup_table()).unwrap();

    let server_la = serve(Arc::new(la), "127.0.0.1:0").unwrap();
    let server_rel = serve(Arc::new(rel), "127.0.0.1:0").unwrap();

    let mut fed = Federation::new();
    fed.register(Arc::new(
        RemoteProvider::connect(server_la.addr().to_string()).unwrap(),
    ));
    fed.register(Arc::new(
        RemoteProvider::connect(server_rel.addr().to_string()).unwrap(),
    ));
    (fed, vec![server_la, server_rel])
}

/// The cross-server plan: matmul on the linalg server, join on the
/// relational server.
fn join_matmul_plan(fed: &Federation) -> bda::core::Plan {
    let a = fed.registry().schema_of("a").unwrap();
    let b = fed.registry().schema_of("b").unwrap();
    let lookup = fed.registry().schema_of("lookup").unwrap();
    Query::scan("a", a)
        .matmul(Query::scan("b", b))
        .untag_dims()
        .join(Query::scan("lookup", lookup), vec![("row", "row")])
        .plan()
        .clone()
}

/// The in-process oracle for the same data.
fn oracle() -> HashMap<String, DataSet> {
    let mut src = HashMap::new();
    src.insert("a".to_string(), random_matrix(8, 8, 1));
    src.insert("b".to_string(), random_matrix(8, 8, 2));
    src.insert("lookup".to_string(), lookup_table());
    src
}

#[test]
fn cross_server_join_matmul_over_tcp_matches_reference() {
    let (fed, _servers) = remote_federation();
    let plan = join_matmul_plan(&fed);

    let (out, metrics) = fed
        .run_with(
            &plan,
            &ExecOptions {
                transfer: TransferMode::RemoteTcp,
                ..Default::default()
            },
        )
        .expect("federated run over TCP");

    let expected = evaluate(&plan, &oracle()).expect("reference evaluation");
    assert!(
        out.same_bag(&expected).unwrap(),
        "remote result disagrees with the reference evaluator"
    );
    assert_eq!(out.num_rows(), 8 * 8, "full 8x8 product joined");

    assert!(
        metrics.fragments >= 2,
        "plan must span both servers: {metrics}"
    );
    // The matmul result travelled server-to-server on a real socket.
    assert!(
        metrics.real_wire_bytes > 0,
        "expected nonzero real wire bytes: {metrics}"
    );
}

#[test]
fn remote_tcp_matches_direct_mode_on_the_same_servers() {
    let (fed, _servers) = remote_federation();
    let plan = join_matmul_plan(&fed);

    let (tcp, m_tcp) = fed
        .run_with(
            &plan,
            &ExecOptions {
                transfer: TransferMode::RemoteTcp,
                ..Default::default()
            },
        )
        .unwrap();
    // Direct mode still works against remote providers: the intermediate
    // comes back to the app tier's client and is re-stored at the
    // destination (two hops on the wire instead of one).
    let (direct, m_direct) = fed
        .run_with(
            &plan,
            &ExecOptions {
                transfer: TransferMode::Direct,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(tcp.same_bag(&direct).unwrap());
    // Both modes move real bytes (the providers are remote either way),
    // and only RemoteTcp records a push.
    assert!(m_tcp.real_wire_bytes > 0, "{m_tcp}");
    assert!(m_direct.real_wire_bytes > 0, "{m_direct}");
}

#[test]
fn remote_capabilities_and_catalog_drive_placement() {
    let (fed, _servers) = remote_federation();
    // The registry learned each server's catalog over the wire.
    assert!(fed.registry().schema_of("a").is_ok());
    assert!(fed.registry().schema_of("lookup").is_ok());
    let la = fed.registry().provider("la").unwrap();
    let rel = fed.registry().provider("rel").unwrap();
    assert!(la.capabilities().supports(bda::core::OpKind::MatMul));
    assert!(rel.capabilities().supports(bda::core::OpKind::Join));
    // Remote providers expose their endpoint for direct transfers.
    assert!(la.endpoint().is_some());
    assert!(rel.endpoint().is_some());
}

#[test]
fn servers_shut_down_cleanly_after_queries() {
    let (fed, mut servers) = remote_federation();
    let plan = join_matmul_plan(&fed);
    fed.run_with(
        &plan,
        &ExecOptions {
            transfer: TransferMode::RemoteTcp,
            ..Default::default()
        },
    )
    .unwrap();
    for s in &mut servers {
        s.shutdown();
    }
    // After shutdown the federation's requests fail with errors, not hangs.
    assert!(fed
        .run_with(
            &plan,
            &ExecOptions {
                transfer: TransferMode::RemoteTcp,
                ..Default::default()
            },
        )
        .is_err());
}

#[test]
fn wire_bytes_are_charged_once_per_run() {
    // Regression guard for the `real_wire_bytes` invariant (see
    // `bda_federation::metrics`): the executor charges *deltas* of the
    // providers' cumulative transport counters, never the absolute
    // values. If that ever regressed to absolute counters, a second run
    // over the same connections would re-count the first run's bytes.
    let (fed, _servers) = remote_federation();
    let plan = join_matmul_plan(&fed);
    let opts = ExecOptions {
        transfer: TransferMode::Direct,
        ..Default::default()
    };

    let (_, m1) = fed.run_with(&plan, &opts).unwrap();

    let la = fed.registry().provider("la").unwrap();
    let rel = fed.registry().provider("rel").unwrap();
    let total = |p: &Arc<dyn Provider>| {
        let (sent, received) = p.wire_bytes();
        sent + received
    };
    let before = total(&la) + total(&rel);
    let (_, m2) = fed.run_with(&plan, &opts).unwrap();
    let delta = total(&la) + total(&rel) - before;

    assert!(m1.real_wire_bytes > 0, "{m1}");
    // Identical traffic both times: charging absolutes instead of
    // deltas would roughly double the second figure.
    assert_eq!(
        m1.real_wire_bytes, m2.real_wire_bytes,
        "second run must not re-count the first run's bytes"
    );
    // Every charged byte really crossed the app tier's sockets during
    // *this* run (the counters may additionally move for uncharged
    // planning traffic, hence <=).
    assert!(
        m2.real_wire_bytes <= delta,
        "charged {} wire bytes but the transports only moved {delta}",
        m2.real_wire_bytes
    );
}

#[test]
fn traced_tcp_run_reassembles_one_cross_process_trace() {
    // The acceptance bar for bda-obs: one federated query over real
    // sockets yields a *single* trace whose spans cover the app tier and
    // both server processes, stitched into one tree.
    let (mut fed, _servers) = remote_federation();
    fed.options_mut().transfer = TransferMode::RemoteTcp;
    let plan = join_matmul_plan(&fed);

    let tracer = bda::obs::Tracer::new(42);
    let (out, metrics) = fed.run_traced(&plan, &tracer).unwrap();
    assert_eq!(out.num_rows(), 8 * 8);
    assert!(metrics.real_wire_bytes > 0, "{metrics}");

    let trace = tracer.finish();
    assert_eq!(trace.dropped, 0);

    // All three processes appear in the one trace.
    let sites = trace.sites();
    for site in ["app", "la", "rel"] {
        assert!(sites.iter().any(|s| s == site), "missing {site}: {sites:?}");
    }

    // Exactly one root: the app-tier query span.
    let roots: Vec<_> = trace.spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "{roots:?}");
    assert_eq!(roots[0].name, "query");
    assert_eq!(roots[0].site, "app");

    // Server-side spans were absorbed: each remote fragment shows a
    // `serve:` span, and the operators ran where the planner placed them.
    assert!(
        !trace.spans_named("serve:").is_empty(),
        "no server-side spans absorbed: {:#?}",
        trace.spans
    );
    let matmuls = trace.spans_named("op:matmul");
    assert!(
        matmuls.iter().any(|s| s.site == "la"),
        "matmul should execute on la: {matmuls:?}"
    );
    let joins = trace.spans_named("op:join");
    assert!(
        joins.iter().any(|s| s.site == "rel"),
        "join should execute on rel: {joins:?}"
    );

    // Every non-root span's parent exists: the remote id spaces were
    // remapped into the client's without dangling references.
    for s in &trace.spans {
        if let Some(p) = s.parent {
            assert!(trace.span(p).is_some(), "dangling parent in {s:?}");
        }
    }
}

#[test]
fn explain_analyze_works_across_real_sockets() {
    let (mut fed, _servers) = remote_federation();
    fed.options_mut().transfer = TransferMode::RemoteTcp;
    let plan = join_matmul_plan(&fed);
    let report = fed.explain_analyze(&plan, 7).unwrap();
    assert!(report.contains("query @ app"), "{report}");
    assert!(report.contains("op:matmul @ la"), "{report}");
    assert!(report.contains("op:join @ rel"), "{report}");
    assert!(report.contains("serve:execute"), "{report}");
    assert!(report.contains("== metrics =="), "{report}");
}
