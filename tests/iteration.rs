//! Control-iteration scenarios: convergence behaviour, server-side vs
//! client-driven loops, and agreement between native, lowered and
//! app-driven PageRank/components at modest scale.

use std::sync::Arc;

use bda::core::{col, lit, GraphOp, OpKind, Plan, Provider};
use bda::federation::{run_plan, ExecOptions, Federation, MaskedProvider, Registry};
use bda::graph::GraphEngine;
use bda::lang::Query;
use bda::relational::RelationalEngine;
use bda::storage::{DataType, Field, Row, Schema, Value};
use bda::workloads::{random_graph, GraphSpec};

fn graph_setup(vertices: usize) -> (Federation, Plan) {
    let (_, edges) = random_graph(GraphSpec {
        vertices,
        edges: vertices * 4,
        seed: 5,
    });
    let graph = GraphEngine::new("graph");
    graph.store("edges", edges.clone()).unwrap();
    let rel = RelationalEngine::new("rel");
    rel.store("edges", edges).unwrap();
    let mut fed = Federation::new();
    fed.register(Arc::new(graph));
    fed.register(Arc::new(rel));
    let plan = Plan::Graph(GraphOp::PageRank {
        edges: Plan::scan("edges", fed.registry().schema_of("edges").unwrap()).boxed(),
        damping: 0.85,
        max_iters: 80,
        epsilon: 1e-10,
    });
    (fed, plan)
}

fn max_rank_diff(a: &bda::storage::DataSet, b: &bda::storage::DataSet) -> f64 {
    let x = a.sorted_rows().unwrap();
    let y = b.sorted_rows().unwrap();
    assert_eq!(x.len(), y.len());
    x.iter()
        .zip(&y)
        .map(|(rx, ry)| {
            assert_eq!(rx.get(0), ry.get(0), "vertex sets differ");
            (rx.get(1).as_float().unwrap() - ry.get(1).as_float().unwrap()).abs()
        })
        .fold(0.0, f64::max)
}

#[test]
fn pagerank_native_lowered_and_client_driven_agree() {
    let (fed, plan) = graph_setup(80);
    let opts = ExecOptions::default();

    // Native on the graph engine.
    let (native, m_native) = fed.run(&plan).unwrap();
    assert_eq!(m_native.client_driven_iterations, 0);
    assert_eq!(m_native.fragments, 1);

    // Lowered, loop on the relational server.
    let mut rel_only = Registry::new();
    rel_only.register(fed.registry().provider("rel").unwrap());
    let (lowered, m_lowered) = run_plan(&rel_only, &plan, &opts).unwrap();
    assert_eq!(m_lowered.client_driven_iterations, 0);

    // Client-driven: relational engine with Iterate masked off.
    let mut client = Registry::new();
    client.register(Arc::new(MaskedProvider::new(
        fed.registry().provider("rel").unwrap(),
        vec![OpKind::Iterate],
    )));
    let (driven, m_driven) = run_plan(&client, &plan, &opts).unwrap();
    assert!(m_driven.client_driven_iterations > 0);
    // Client-driven pays in messages and shipped plan bytes.
    assert!(m_driven.messages > m_lowered.messages * 5);
    assert!(m_driven.plan_bytes > m_lowered.plan_bytes * 5);

    assert!(max_rank_diff(&native, &lowered) < 1e-8);
    assert!(max_rank_diff(&native, &driven) < 1e-8);
    // Ranks form a probability distribution (generator avoids dangling).
    let total: f64 = native
        .rows()
        .unwrap()
        .iter()
        .map(|r| r.get(1).as_float().unwrap())
        .sum();
    assert!((total - 1.0).abs() < 1e-8, "{total}");
}

#[test]
fn connected_components_converge_identically() {
    let (_, edges) = random_graph(GraphSpec {
        vertices: 50,
        edges: 80,
        seed: 9,
    });
    let graph = GraphEngine::new("graph");
    graph.store("edges", edges.clone()).unwrap();
    let rel = RelationalEngine::new("rel");
    rel.store("edges", edges).unwrap();
    let plan = Plan::Graph(GraphOp::ConnectedComponents {
        edges: Plan::scan("edges", graph.schema_of("edges").unwrap()).boxed(),
        max_iters: 60,
    });
    let native = graph.execute(&plan).unwrap();
    let lowered = rel
        .execute(&bda::core::lower::lower_all(&plan).unwrap())
        .unwrap();
    assert!(native.same_bag(&lowered).unwrap());
    // Component labels are component minima: every label <= its vertex.
    for r in native.rows().unwrap() {
        assert!(r.get(1).as_int().unwrap() <= r.get(0).as_int().unwrap());
    }
}

#[test]
fn generic_iterate_converges_with_epsilon() {
    // Exponential decay toward zero under an epsilon stop.
    let rel = RelationalEngine::new("rel");
    let schema = Schema::new(vec![
        Field::value("id", DataType::Int64),
        Field::value("x", DataType::Float64),
    ])
    .unwrap();
    let init = bda::storage::DataSet::from_rows(
        schema.clone(),
        &[
            Row(vec![Value::Int(0), Value::Float(100.0)]),
            Row(vec![Value::Int(1), Value::Float(-50.0)]),
        ],
    )
    .unwrap();
    rel.store("state0", init).unwrap();
    let mut fed = Federation::new();
    fed.register(Arc::new(rel));

    let q = Query::scan("state0", schema)
        .iterate(1_000, Some(1e-9), |state| {
            state.select(vec![("id", col("id")), ("x", col("x").mul(lit(0.5)))])
        })
        .unwrap();
    let (out, metrics) = fed.run(q.plan()).unwrap();
    assert_eq!(metrics.client_driven_iterations, 0, "server-side loop");
    for r in out.rows().unwrap() {
        assert!(r.get(1).as_float().unwrap().abs() < 1e-7);
    }
}

#[test]
fn bounded_iteration_stops_at_the_bound() {
    let rel = RelationalEngine::new("rel");
    let schema = Schema::new(vec![Field::value("x", DataType::Int64)]).unwrap();
    rel.store(
        "s",
        bda::storage::DataSet::from_rows(schema.clone(), &[Row(vec![Value::Int(0)])]).unwrap(),
    )
    .unwrap();
    let mut fed = Federation::new();
    fed.register(Arc::new(rel));
    // x := x + 1 never converges; 7 iterations exactly.
    let q = Query::scan("s", schema)
        .iterate(7, None, |state| {
            state.select(vec![("x", col("x").add(lit(1i64)))])
        })
        .unwrap();
    let (out, _) = fed.run(q.plan()).unwrap();
    assert_eq!(out.rows().unwrap()[0], Row(vec![Value::Int(7)]));
}

#[test]
fn iterate_over_changing_cardinality() {
    // Frontier-style iteration: each step keeps even halves; the state
    // shrinks until it stabilizes at {0}.
    let rel = RelationalEngine::new("rel");
    let schema = Schema::new(vec![Field::value("x", DataType::Int64)]).unwrap();
    let rows: Vec<Row> = (0..32).map(|i| Row(vec![Value::Int(i)])).collect();
    rel.store(
        "s",
        bda::storage::DataSet::from_rows(schema.clone(), &rows).unwrap(),
    )
    .unwrap();
    let mut fed = Federation::new();
    fed.register(Arc::new(rel));
    let q = Query::scan("s", schema)
        .iterate(100, None, |state| {
            state
                .where_(col("x").modulo(lit(2i64)).eq(lit(0i64)))
                .select(vec![("x", col("x").div(lit(2i64)))])
                .distinct()
        })
        .unwrap();
    let (out, _) = fed.run(q.plan()).unwrap();
    // Fixpoint: {0} (0 is even, 0/2 = 0).
    assert_eq!(out.sorted_rows().unwrap(), vec![Row(vec![Value::Int(0)])]);
}
