//! The four desiderata of the paper, as executable assertions.
//!
//! 1. Coverage   — the algebra spans relational and array operations.
//! 2. Translatability — every operator reaches some back end.
//! 3. Intent preservation — matmul stays recognizable as matmul.
//! 4. Server interoperation — intermediates move server-to-server.

use std::sync::Arc;

use bda::core::lower::lower_all;
use bda::core::recognize::recognize_all;
use bda::core::{OpKind, Plan, Provider};
use bda::federation::{
    translatability, ExecOptions, Federation, Planner, Registry, TransferMode, Translation,
};
use bda::linalg::LinAlgEngine;
use bda::relational::RelationalEngine;
use bda::workloads::random_matrix;

fn standard() -> Federation {
    bda_bench_setup()
}

// Small local re-implementation of the standard federation (the bench
// crate is not a dependency of the facade's tests).
fn bda_bench_setup() -> Federation {
    use bda::array::ArrayEngine;
    use bda::graph::GraphEngine;
    use bda::workloads::{
        random_graph, sensor_array, star_schema, GraphSpec, SensorSpec, StarSpec,
    };

    let rel = RelationalEngine::new("rel");
    let (sales, customers, products, stores) = star_schema(StarSpec {
        sales: 300,
        customers: 30,
        products: 10,
        stores: 4,
        seed: 1,
    });
    rel.store("sales", sales).unwrap();
    rel.store("customers", customers).unwrap();
    rel.store("products", products).unwrap();
    rel.store("stores", stores).unwrap();

    let arr = ArrayEngine::new("arr");
    arr.store(
        "sensors",
        sensor_array(SensorSpec {
            sensors: 4,
            ticks: 16,
            missing: 0.0,
            seed: 1,
        }),
    )
    .unwrap();

    let la = LinAlgEngine::new("la");
    la.store("a", random_matrix(6, 6, 7)).unwrap();
    la.store("b", random_matrix(6, 6, 8)).unwrap();

    let graph = GraphEngine::new("graph");
    let (_, edges) = random_graph(GraphSpec {
        vertices: 20,
        edges: 60,
        seed: 1,
    });
    graph.store("edges", edges).unwrap();

    let mut fed = Federation::new();
    fed.register(Arc::new(rel));
    fed.register(Arc::new(arr));
    fed.register(Arc::new(la));
    fed.register(Arc::new(graph));
    fed
}

#[test]
fn d1_coverage_spans_relational_and_array_operations() {
    // The operator taxonomy includes the standard relational core...
    for op in [
        OpKind::Select,
        OpKind::Project,
        OpKind::Join,
        OpKind::Aggregate,
        OpKind::Union,
        OpKind::Distinct,
        OpKind::Sort,
    ] {
        assert!(OpKind::ALL.contains(&op));
    }
    // ...and the standard array operations with dimension awareness.
    for op in [
        OpKind::Dice,
        OpKind::SliceAt,
        OpKind::Permute,
        OpKind::Window,
        OpKind::Fill,
        OpKind::TagDims,
        OpKind::UntagDims,
        OpKind::MatMul,
        OpKind::ElemWise,
    ] {
        assert!(OpKind::ALL.contains(&op));
    }
    // And the combined federation executes all of them somewhere.
    let fed = standard();
    let caps = fed.registry().combined_capabilities();
    for op in OpKind::ALL {
        let reachable = caps.supports(op)
            || matches!(
                translatability(fed.registry())
                    .into_iter()
                    .find(|(o, _)| *o == op)
                    .unwrap()
                    .1,
                Translation::ViaLowering(_)
            );
        assert!(reachable, "{op:?} unreachable");
    }
}

#[test]
fn d2_every_operator_translates() {
    let fed = standard();
    for (op, t) in translatability(fed.registry()) {
        assert_ne!(t, Translation::No, "{op:?} untranslatable");
    }
    // Even a federation of ONLY the relational engine covers everything
    // via lowering — the paper's "or a combination of such systems".
    let mut rel_only = Registry::new();
    rel_only.register(fed.registry().provider("rel").unwrap());
    for (op, t) in translatability(&rel_only) {
        assert_ne!(t, Translation::No, "{op:?} untranslatable on rel alone");
    }
}

#[test]
fn d3_matmul_survives_lowering_roundtrip() {
    let fed = standard();
    let reg = fed.registry();
    let a = reg.provider("la").unwrap().schema_of("a").unwrap();
    let b = reg.provider("la").unwrap().schema_of("b").unwrap();
    let intent = Plan::scan("a", a).matmul(Plan::scan("b", b));

    // Lower (what a naive middle tier would hand the federation)...
    let lowered = lower_all(&intent).unwrap();
    assert!(!lowered.op_kinds().contains(&OpKind::MatMul));
    // ...recognition restores the intent...
    let recognized = recognize_all(&lowered);
    assert!(recognized.op_kinds().contains(&OpKind::MatMul));
    // ...and the planner consequently routes it to the linalg engine.
    let placement = Planner::new(reg).place(&recognized).unwrap();
    assert_eq!(placement.root().site, "la");
    // The recognized plan computes the same thing as the lowered one.
    let (out_lowered, _) = fed
        .run_with(
            &lowered,
            &ExecOptions {
                optimizer: bda::federation::OptimizerConfig {
                    recognize_intents: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
    let (out_intent, _) = fed.run(&intent).unwrap();
    let x = out_intent.sorted_rows().unwrap();
    let y = out_lowered.sorted_rows().unwrap();
    assert_eq!(x.len(), y.len());
    for (rx, ry) in x.iter().zip(&y) {
        for (vx, vy) in rx.0.iter().zip(&ry.0) {
            match (vx, vy) {
                (bda::storage::Value::Float(a), bda::storage::Value::Float(b)) => {
                    assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()))
                }
                _ => assert_eq!(vx, vy),
            }
        }
    }
}

#[test]
fn d4_direct_transfers_bypass_the_app_tier() {
    let n = 16;
    let rel = RelationalEngine::new("rel");
    rel.store("a_rows", random_matrix(n, n, 7).normalized_rows().unwrap())
        .unwrap();
    let la = LinAlgEngine::new("la");
    la.store("b", random_matrix(n, n, 8)).unwrap();
    let mut fed = Federation::new();
    fed.register(Arc::new(rel));
    fed.register(Arc::new(la));
    let plan =
        Plan::scan("a_rows", fed.registry().schema_of("a_rows").unwrap()).matmul(Plan::scan(
            "b",
            fed.registry()
                .provider("la")
                .unwrap()
                .schema_of("b")
                .unwrap(),
        ));
    let (_, direct) = fed.run(&plan).unwrap();
    let (_, routed) = fed
        .run_with(
            &plan,
            &ExecOptions {
                transfer: TransferMode::AppRouted,
                ..Default::default()
            },
        )
        .unwrap();
    // The plan genuinely spans servers...
    assert!(direct.fragments >= 2);
    assert!(direct.data_bytes() > 0);
    // ...direct mode never touches the app tier with intermediates...
    assert_eq!(direct.app_tier_bytes(), 0);
    // ...while the baseline pushes every intermediate byte through it.
    let intermediates: usize = routed
        .transfers
        .iter()
        .filter(|t| t.to != "app")
        .map(|t| t.bytes)
        .sum();
    assert_eq!(routed.app_tier_bytes(), intermediates);
    assert!(routed.sim_network_s > direct.sim_network_s);
}

#[test]
fn linq_properties_hold() {
    // Expression trees ship whole; results are plain collections.
    let fed = standard();
    let plan = Plan::scan("sales", fed.registry().schema_of("sales").unwrap())
        .select(bda::core::col("amount").gt(bda::core::lit(100.0)))
        .limit(5);
    let bytes = bda::core::codec::encode_plan(&plan);
    let decoded = bda::core::codec::decode_plan(&bytes).unwrap();
    assert_eq!(decoded, plan);
    let (out, metrics) = fed.run(&plan).unwrap();
    // Result is a materialized client-side collection (no cursor): simply
    // iterate it.
    assert!(out.rows().unwrap().len() <= 5);
    assert!(metrics.plan_bytes > 0, "plans ship as byte trees");
}
