//! End-to-end federation scenarios across all four engines, driven
//! through the BDL surface language and the fluent builder.

use std::sync::Arc;

use bda::array::ArrayEngine;
use bda::core::{col, AggExpr, AggFunc, OpKind, Provider};
use bda::federation::{ExecOptions, Federation, OptimizerConfig, TransferMode};
use bda::graph::GraphEngine;
use bda::lang::{parse_query, Query};
use bda::linalg::LinAlgEngine;
use bda::relational::RelationalEngine;
use bda::workloads::{
    random_graph, random_matrix, sensor_array, star_schema, GraphSpec, SensorSpec, StarSpec,
};

fn federation() -> Federation {
    let rel = RelationalEngine::new("rel");
    let (sales, customers, products, stores) = star_schema(StarSpec {
        sales: 1_000,
        customers: 100,
        products: 20,
        stores: 5,
        seed: 2,
    });
    rel.store("sales", sales).unwrap();
    rel.store("customers", customers).unwrap();
    rel.store("products", products).unwrap();
    rel.store("stores", stores).unwrap();

    let arr = ArrayEngine::new("arr");
    arr.store(
        "sensors",
        sensor_array(SensorSpec {
            sensors: 8,
            ticks: 64,
            missing: 0.1,
            seed: 2,
        }),
    )
    .unwrap();

    let la = LinAlgEngine::new("la");
    la.store("a", random_matrix(12, 12, 3)).unwrap();
    la.store("b", random_matrix(12, 12, 4)).unwrap();

    let graph = GraphEngine::new("graph");
    let (_, edges) = random_graph(GraphSpec {
        vertices: 60,
        edges: 240,
        seed: 2,
    });
    graph.store("edges", edges).unwrap();

    let mut fed = Federation::new();
    fed.register(Arc::new(rel));
    fed.register(Arc::new(arr));
    fed.register(Arc::new(la));
    fed.register(Arc::new(graph));
    fed
}

fn bdl(fed: &Federation, program: &str) -> bda::storage::DataSet {
    let lookup = |name: &str| fed.registry().schema_of(name).ok();
    let plan = parse_query(program, &lookup).unwrap_or_else(|e| panic!("{}", e.render(program)));
    fed.run(&plan).expect("federated run").0
}

#[test]
fn star_schema_rollup_via_bdl() {
    let fed = federation();
    let out = bdl(
        &fed,
        "scan sales \
         | join (scan customers) on customer_id = customer_id \
         | join (scan products) on product_id = product_id \
         | groupby region, category: sum(amount) as revenue, count(*) as n \
         | orderby revenue desc",
    );
    assert!(out.num_rows() > 0);
    assert_eq!(
        out.schema().names(),
        vec!["region", "category", "revenue", "n"]
    );
    // Revenue column is sorted descending.
    let revenues: Vec<f64> = out
        .rows()
        .unwrap()
        .iter()
        .map(|r| r.get(2).as_float().unwrap())
        .collect();
    assert!(revenues.windows(2).all(|w| w[0] >= w[1]));
}

#[test]
fn array_smoothing_on_the_array_engine() {
    let fed = federation();
    let out = bdl(
        &fed,
        "scan sensors \
         | dice t 0 32 \
         | window sensor 0, t 2: avg(reading) as smooth, count(*) as support \
         | groupby sensor: max(smooth) as peak",
    );
    assert_eq!(out.num_rows(), 8);
    // Peaks are plausible sensor readings.
    for r in out.rows().unwrap() {
        let peak = r.get(1).as_float().unwrap();
        assert!((0.0..40.0).contains(&peak), "{peak}");
    }
}

#[test]
fn cross_engine_pipeline_array_to_relational() {
    let fed = federation();
    // Array reduction feeding a relational join — the planner must cut.
    let q = Query::scan("sensors", fed.registry().schema_of("sensors").unwrap())
        .group_by(
            vec!["sensor"],
            vec![AggExpr::new(AggFunc::Avg, col("reading"), "mean")],
        )
        .untag_dims()
        .rename(vec![("sensor", "store_id")])
        .join(
            Query::scan("stores", fed.registry().schema_of("stores").unwrap()),
            vec![("store_id", "store_id")],
        );
    let (out, metrics) = fed.run(q.plan()).unwrap();
    assert!(out.num_rows() > 0);
    assert!(metrics.fragments >= 2, "must span engines: {metrics}");
    assert_eq!(metrics.app_tier_bytes(), 0, "direct transfers by default");
}

#[test]
fn graph_and_relational_combine() {
    let fed = federation();
    // Degrees from the graph engine, top-10 via relational sort/limit.
    let out = bdl(
        &fed,
        "scan edges | degrees | orderby degree desc, vertex | limit 10",
    );
    assert_eq!(out.num_rows(), 10);
    let degrees: Vec<i64> = out
        .rows()
        .unwrap()
        .iter()
        .map(|r| r.get(1).as_int().unwrap())
        .collect();
    assert!(degrees.windows(2).all(|w| w[0] >= w[1]));
}

#[test]
fn matmul_chain_stays_on_linalg() {
    let fed = federation();
    let a = fed
        .registry()
        .provider("la")
        .unwrap()
        .schema_of("a")
        .unwrap();
    let b = fed
        .registry()
        .provider("la")
        .unwrap()
        .schema_of("b")
        .unwrap();
    let q = Query::scan("a", a)
        .matmul(Query::scan("b", b.clone()))
        .matmul(Query::scan("b", b));
    let (out, metrics) = fed.run(q.plan()).unwrap();
    assert_eq!(out.num_rows(), 12 * 12);
    assert_eq!(metrics.fragments, 1, "whole chain on one engine");
}

#[test]
fn transfer_modes_agree_on_results() {
    let fed = federation();
    let q = Query::scan("sensors", fed.registry().schema_of("sensors").unwrap())
        .group_by(
            vec!["sensor"],
            vec![AggExpr::new(AggFunc::Sum, col("reading"), "total")],
        )
        .untag_dims()
        .rename(vec![("sensor", "store_id")])
        .join(
            Query::scan("stores", fed.registry().schema_of("stores").unwrap()),
            vec![("store_id", "store_id")],
        );
    let (direct, m_direct) = fed.run(q.plan()).unwrap();
    let (routed, m_routed) = fed
        .run_with(
            q.plan(),
            &ExecOptions {
                transfer: TransferMode::AppRouted,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(direct.same_bag(&routed).unwrap());
    assert!(m_routed.app_tier_bytes() > m_direct.app_tier_bytes());
}

#[test]
fn optimizer_does_not_change_federated_results() {
    let fed = federation();
    let lookup = |name: &str| fed.registry().schema_of(name).ok();
    let programs = [
        "scan sales | where amount > 100.0 and quantity < 5 \
         | join (scan customers) on customer_id = customer_id \
         | groupby segment: avg(amount) as m",
        "scan sensors | untag | where t % 2 = 0 \
         | groupby sensor: count(*) as n",
        "scan edges | pagerank 0.85 40 1e-8 | orderby rank desc | limit 5",
    ];
    for program in programs {
        let plan = parse_query(program, &lookup).unwrap();
        let (a, _) = fed.run(&plan).unwrap();
        let (b, _) = fed
            .run_with(
                &plan,
                &ExecOptions {
                    optimizer: OptimizerConfig::disabled(),
                    ..Default::default()
                },
            )
            .unwrap();
        // Limit-bearing plans: compare counts only.
        if plan.op_kinds().contains(&OpKind::Limit) {
            assert_eq!(a.num_rows(), b.num_rows(), "{program}");
        } else {
            assert!(a.same_bag(&b).unwrap(), "{program}");
        }
    }
}

#[test]
fn three_server_pipeline() {
    // Array reduction (arr) ⋈ graph analytics (graph), joined on the
    // relational engine: three providers cooperate on one plan.
    let fed = federation();
    let q = Query::scan("sensors", fed.registry().schema_of("sensors").unwrap())
        .group_by(
            vec!["sensor"],
            vec![AggExpr::new(AggFunc::Avg, col("reading"), "mean")],
        )
        .untag_dims()
        .rename(vec![("sensor", "vertex")])
        .join(
            Query::scan("edges", fed.registry().schema_of("edges").unwrap())
                .page_rank(0.85, 30, 1e-6),
            vec![("vertex", "vertex")],
        )
        .order_by_desc("rank")
        .take(5);
    let (out, metrics) = fed.run(q.plan()).unwrap();
    assert_eq!(out.num_rows(), 5);
    assert!(metrics.fragments >= 3, "three sites expected: {metrics}");
    assert_eq!(metrics.app_tier_bytes(), 0, "all hops direct");
    // Fragment sites must include all three engines.
    let placement = bda::federation::Planner::new(fed.registry())
        .place(&bda::federation::optimize(
            q.plan(),
            bda::federation::OptimizerConfig::default(),
        ))
        .unwrap();
    let sites = placement.sites();
    for s in ["arr", "graph", "rel"] {
        assert!(sites.contains(&s.to_string()), "missing {s} in {sites:?}");
    }
}

#[test]
fn bfs_federated_with_relational_postprocessing() {
    let fed = federation();
    let lookup = |name: &str| fed.registry().schema_of(name).ok();
    let plan = parse_query(
        "scan edges | bfs 0 | groupby level: count(*) as frontier | orderby level",
        &lookup,
    )
    .unwrap();
    let (out, metrics) = fed.run(&plan).unwrap();
    assert!(metrics.fragments >= 2);
    // Level 0 has exactly the source.
    let rows = out.rows().unwrap();
    assert_eq!(rows[0].get(0).as_int().unwrap(), 0);
    assert_eq!(rows[0].get(1).as_int().unwrap(), 1);
    // Frontier sizes sum to the reachable-set size.
    let total: i64 = rows.iter().map(|r| r.get(1).as_int().unwrap()).sum();
    assert!(total > 1);
}

#[test]
fn errors_surface_cleanly() {
    let fed = federation();
    let lookup = |name: &str| fed.registry().schema_of(name).ok();
    // Unknown dataset at parse time.
    assert!(parse_query("scan missing", &lookup).is_err());
    // Type error at parse/bind time.
    assert!(parse_query("scan customers | where region > 3", &lookup).is_err());
    // Planner error for a plan over data that exists nowhere.
    let bogus = bda::core::Plan::scan(
        "ghost",
        bda::storage::Schema::new(vec![bda::storage::Field::value(
            "x",
            bda::storage::DataType::Int64,
        )])
        .unwrap(),
    );
    assert!(fed.run(&bogus).is_err());
}
