//! Differential and determinism properties for partition-parallel
//! execution: every seeded random plan must produce the same bag of rows
//! whether the federation runs it sequentially or with 2, 4, or 7
//! workers (and with explicit `exchange`/`merge` markers at arbitrary
//! partition counts), always agreeing with the reference evaluator. A
//! maximally parallel run repeated with the same seed must be
//! byte-identical after canonical ordering, with identical metrics.

use std::collections::HashMap;

use proptest::prelude::*;

use bda::core::reference::evaluate;
use bda::core::{col, lit, AggExpr, AggFunc, Expr, JoinType, Plan, Provider};
use bda::federation::{ExecOptions, Federation, Metrics};
use bda::relational::RelationalEngine;
use bda::storage::wire::encode_dataset;
use bda::storage::{DataSet, DataType, Field, Row, Schema, Value};

/// Every worker count the differential property sweeps: sequential, the
/// even splits, and a prime that never divides the partition count.
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 7];

// ---------------------------------------------------------------------------
// generators (same shape as tests/property_equivalence.rs)
// ---------------------------------------------------------------------------

fn t_schema() -> Schema {
    Schema::new(vec![
        Field::value("k", DataType::Int64),
        Field::value("v", DataType::Float64),
        Field::value("s", DataType::Utf8),
    ])
    .unwrap()
}

prop_compose! {
    fn arb_row()(
        k in prop_oneof![2 => (-5i64..5).prop_map(Value::Int), 1 => Just(Value::Null)],
        v in prop_oneof![2 => (-10i32..10).prop_map(|x| Value::Float(x as f64 / 2.0)), 1 => Just(Value::Null)],
        s in prop_oneof![2 => "[a-c]{1,2}".prop_map(Value::from), 1 => Just(Value::Null)],
    ) -> Row {
        Row(vec![k, v, s])
    }
}

prop_compose! {
    fn arb_table()(rows in prop::collection::vec(arb_row(), 0..25)) -> DataSet {
        DataSet::from_rows(t_schema(), &rows).unwrap()
    }
}

/// Random boolean predicates over the `t` schema.
fn arb_pred() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-5i64..5).prop_map(|c| col("k").gt(lit(c))),
        (-5i64..5).prop_map(|c| col("k").le(lit(c))),
        (-10i32..10).prop_map(|c| col("v").lt(lit(c as f64 / 2.0))),
        "[a-c]".prop_map(|c| col("s").eq(lit(c.as_str()))),
        Just(col("k").is_null()),
        Just(col("v").is_null().not()),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

/// Random schema-preserving pipelines, weighted toward the operators the
/// parallel planner rewrites (joins) so most cases exercise the
/// partitioned kernels, not just the identity path. `Limit` is excluded:
/// it picks an arbitrary subset, which is exactly the nondeterminism this
/// suite exists to rule out everywhere else.
fn arb_pipeline() -> impl Strategy<Value = Plan> {
    let scan = Just(Plan::scan("t", t_schema()));
    scan.prop_recursive(4, 16, 2, |inner| {
        prop_oneof![
            2 => (inner.clone(), arb_pred()).prop_map(|(p, e)| p.select(e)),
            1 => inner.clone().prop_map(|p| p.distinct()),
            1 => inner.clone().prop_map(|p| p.sort_by(vec!["k", "s"])),
            2 => (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            3 => (inner.clone(), inner.clone()).prop_map(|(a, b)| a.join_as(
                b,
                vec![("k", "k")],
                JoinType::Semi
            )),
            2 => (inner.clone(), inner.clone()).prop_map(|(a, b)| a.join_as(
                b,
                vec![("k", "k")],
                JoinType::Anti
            )),
            1 => inner.clone().prop_map(|p| p.project(vec![
                ("k", col("k")),
                ("v", col("v")),
                ("s", col("s"))
            ])),
        ]
    })
}

// ---------------------------------------------------------------------------
// harness
// ---------------------------------------------------------------------------

fn federation_with(ds: &DataSet) -> Federation {
    let rel = RelationalEngine::new("rel");
    rel.store("t", ds.clone()).unwrap();
    let mut fed = Federation::new();
    fed.register(std::sync::Arc::new(rel));
    fed
}

fn oracle_src(ds: &DataSet) -> HashMap<String, DataSet> {
    let mut m = HashMap::new();
    m.insert("t".to_string(), ds.clone());
    m
}

/// Run `plan` through the federation with an explicit worker count —
/// never via `BDA_WORKERS`, so tests stay isolated under a parallel test
/// runner.
fn run_with_workers(fed: &Federation, plan: &Plan, workers: usize) -> (DataSet, Metrics) {
    let opts = ExecOptions {
        workers,
        ..Default::default()
    };
    fed.run_with(plan, &opts)
        .unwrap_or_else(|e| panic!("workers={workers} failed on plan:\n{plan}\n{e}"))
}

/// Canonical bytes: sort rows into a total order, then encode. Two runs
/// that produce the same bag yield identical bytes.
fn canonical_bytes(ds: &DataSet) -> Vec<u8> {
    let rows = ds.sorted_rows().unwrap();
    encode_dataset(&DataSet::from_rows(ds.schema().clone(), &rows).unwrap())
}

/// The deterministic slice of [`Metrics`]: fragments, messages, plan
/// bytes, real wire bytes, total transfer bytes, and the per-transfer
/// `(from, to, bytes)` list — everything except wall-clock style
/// measurements. Two identical runs must agree on all of it.
type MetricsFingerprint = (
    usize,
    usize,
    usize,
    u64,
    usize,
    Vec<(String, String, usize)>,
);

fn metrics_fingerprint(m: &Metrics) -> MetricsFingerprint {
    (
        m.fragments,
        m.messages,
        m.plan_bytes,
        m.real_wire_bytes,
        m.transfers.iter().map(|t| t.bytes).sum(),
        m.transfers
            .iter()
            .map(|t| (t.from.clone(), t.to.clone(), t.bytes))
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The core differential property: for every random plan and table,
    /// the result bag is invariant across the whole worker sweep and
    /// matches the sequential reference evaluator.
    #[test]
    fn parallel_execution_matches_reference(ds in arb_table(), plan in arb_pipeline()) {
        let fed = federation_with(&ds);
        let expected = evaluate(&plan, &oracle_src(&ds)).unwrap();
        for workers in WORKER_SWEEP {
            let (out, _) = run_with_workers(&fed, &plan, workers);
            prop_assert_eq!(out.schema(), expected.schema());
            prop_assert!(
                out.same_bag(&expected).unwrap(),
                "workers={} disagrees with reference on plan:\n{}", workers, plan
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Explicit `exchange`/`merge` markers at arbitrary partition counts
    /// are bag-identity regardless of how many workers run them — even
    /// when `parts` exceeds, divides, or is coprime to the worker count.
    #[test]
    fn explicit_partition_markers_are_bag_identity(
        ds in arb_table(),
        plan in arb_pipeline(),
        parts in 1usize..9,
        keyed in any::<bool>(),
    ) {
        let key = if keyed { Some("k") } else { None };
        let marked = plan.clone().exchange(parts, key).merge();
        let fed = federation_with(&ds);
        let expected = evaluate(&plan, &oracle_src(&ds)).unwrap();
        for workers in [1, 4] {
            let (out, _) = run_with_workers(&fed, &marked, workers);
            prop_assert!(
                out.same_bag(&expected).unwrap(),
                "parts={} workers={} broke identity on plan:\n{}", parts, workers, marked
            );
        }
    }

    /// Grouped aggregation — the other partitioned relational kernel —
    /// agrees with the reference across the worker sweep.
    #[test]
    fn parallel_grouped_aggregation_matches_reference(ds in arb_table()) {
        let plan = Plan::scan("t", t_schema()).aggregate(
            vec!["s"],
            vec![
                AggExpr::new(AggFunc::Sum, col("v"), "sv"),
                AggExpr::count_star("n"),
            ],
        );
        let fed = federation_with(&ds);
        let expected = evaluate(&plan, &oracle_src(&ds)).unwrap();
        for workers in WORKER_SWEEP {
            let (out, _) = run_with_workers(&fed, &plan, workers);
            prop_assert!(
                out.same_bag(&expected).unwrap(),
                "workers={} disagrees on grouped aggregation", workers
            );
        }
    }

    /// Determinism under maximum parallelism: the same plan run twice at
    /// 7 workers yields byte-identical canonical encodings and identical
    /// deterministic metrics — scheduling order must never leak into
    /// results or accounting.
    #[test]
    fn maximum_parallelism_is_deterministic(ds in arb_table(), plan in arb_pipeline()) {
        let fed = federation_with(&ds);
        let (out_a, m_a) = run_with_workers(&fed, &plan, 7);
        let (out_b, m_b) = run_with_workers(&fed, &plan, 7);
        prop_assert_eq!(
            canonical_bytes(&out_a),
            canonical_bytes(&out_b),
            "two identical runs differ on plan:\n{}", plan
        );
        prop_assert_eq!(out_a.num_rows(), out_b.num_rows());
        prop_assert_eq!(
            metrics_fingerprint(&m_a),
            metrics_fingerprint(&m_b),
            "metrics diverged between identical runs on plan:\n{}", plan
        );
        // And the parallel run's canonical bytes match the sequential
        // ones. (Metrics legitimately differ from sequential: the marked
        // plan ships more nodes and chunked transfers — only the *rows*
        // must agree across modes; metrics must agree across reruns.)
        let (seq, _) = run_with_workers(&fed, &plan, 1);
        prop_assert_eq!(canonical_bytes(&seq), canonical_bytes(&out_a));
    }
}

/// Degenerate partition shapes that property shrinking rarely lands on
/// exactly: empty inputs, a single row, and total key skew (every row in
/// one hash partition, the rest empty).
#[test]
fn degenerate_partition_shapes_survive_the_sweep() {
    let empty = DataSet::from_rows(t_schema(), &[]).unwrap();
    let single = DataSet::from_rows(
        t_schema(),
        &[Row(vec![
            Value::Int(3),
            Value::Float(1.5),
            Value::from("a"),
        ])],
    )
    .unwrap();
    let skewed = DataSet::from_rows(
        t_schema(),
        &(0..64)
            .map(|i| {
                Row(vec![
                    Value::Int(7),
                    Value::Float(i as f64),
                    Value::from("z"),
                ])
            })
            .collect::<Vec<_>>(),
    )
    .unwrap();
    for (label, ds) in [("empty", empty), ("single", single), ("skewed", skewed)] {
        let fed = federation_with(&ds);
        let scan = Plan::scan("t", t_schema());
        let plans = [
            scan.clone().join(scan.clone(), vec![("k", "k")]),
            scan.clone()
                .aggregate(vec!["k"], vec![AggExpr::new(AggFunc::Sum, col("v"), "sv")]),
            scan.clone().exchange(5, Some("k")).merge(),
            scan.exchange(3, None).merge(),
        ];
        for plan in &plans {
            let expected = evaluate(plan, &oracle_src(&ds)).unwrap();
            for workers in WORKER_SWEEP {
                let (out, _) = run_with_workers(&fed, plan, workers);
                assert!(
                    out.same_bag(&expected).unwrap(),
                    "{label} table, workers={workers} disagrees on plan:\n{plan}"
                );
            }
        }
    }
}
