//! Property-based tests on the array algebra: lowering equivalence,
//! algebraic identities, and engine-vs-oracle agreement on random sparse
//! arrays.

use std::collections::HashMap;

use proptest::prelude::*;

use bda::array::ArrayEngine;
use bda::core::lower::lower_all;
use bda::core::reference::evaluate;
use bda::core::{col, AggExpr, AggFunc, BinOp, Plan, Provider};
use bda::storage::{DataSet, DataType, Field, Row, Schema, Value};

const N: i64 = 4;

fn array_schema() -> Schema {
    Schema::new(vec![
        Field::dimension_bounded("i", 0, N),
        Field::dimension_bounded("j", 0, N),
        Field::value("v", DataType::Float64),
    ])
    .unwrap()
}

prop_compose! {
    /// A sparse 2-D array with unique coordinates (the array invariant).
    fn arb_array()(cells in prop::collection::btree_map(
        (0..N, 0..N),
        prop_oneof![4 => (-8i32..8).prop_map(|x| Some(x as f64 / 2.0)), 1 => Just(None)],
        0..(N * N) as usize,
    )) -> DataSet {
        let rows: Vec<Row> = cells
            .into_iter()
            .map(|((i, j), v)| Row(vec![
                Value::Int(i),
                Value::Int(j),
                v.map(Value::Float).unwrap_or(Value::Null),
            ]))
            .collect();
        DataSet::from_rows(array_schema(), &rows).unwrap()
    }
}

fn src(pairs: &[(&str, &DataSet)]) -> HashMap<String, DataSet> {
    pairs
        .iter()
        .map(|(n, d)| (n.to_string(), (*d).clone()))
        .collect()
}

fn approx_same(a: &DataSet, b: &DataSet) -> bool {
    let x = a.sorted_rows().unwrap();
    let y = b.sorted_rows().unwrap();
    x.len() == y.len()
        && x.iter().zip(&y).all(|(rx, ry)| {
            rx.0.iter().zip(&ry.0).all(|(vx, vy)| match (vx, vy) {
                (Value::Float(fx), Value::Float(fy)) => (fx - fy).abs() < 1e-9,
                _ => vx == vy,
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_lowering_equivalent_on_random_arrays(a in arb_array(), b in arb_array()) {
        let plan = Plan::scan("a", array_schema())
            .matmul(Plan::scan("b", array_schema()));
        let data = src(&[("a", &a), ("b", &b)]);
        let native = evaluate(&plan, &data).unwrap();
        let lowered = evaluate(&lower_all(&plan).unwrap(), &data).unwrap();
        prop_assert!(approx_same(&native, &lowered));
    }

    #[test]
    fn elemwise_lowering_equivalent(a in arb_array(), b in arb_array()) {
        for op in [BinOp::Add, BinOp::Mul] {
            let plan = Plan::scan("a", array_schema())
                .elemwise(op, Plan::scan("b", array_schema()));
            let data = src(&[("a", &a), ("b", &b)]);
            let native = evaluate(&plan, &data).unwrap();
            let lowered = evaluate(&lower_all(&plan).unwrap(), &data).unwrap();
            prop_assert!(approx_same(&native, &lowered), "op {:?}", op);
        }
    }

    #[test]
    fn window_lowering_equivalent(a in arb_array(), r in 0i64..2) {
        let plan = Plan::Window {
            input: Plan::scan("a", array_schema()).boxed(),
            radii: vec![("i".into(), r), ("j".into(), 1)],
            aggs: vec![
                AggExpr::new(AggFunc::Sum, col("v"), "s"),
                AggExpr::count_star("n"),
            ],
        };
        let data = src(&[("a", &a)]);
        let native = evaluate(&plan, &data).unwrap();
        let lowered = evaluate(&lower_all(&plan).unwrap(), &data).unwrap();
        prop_assert!(approx_same(&native, &lowered));
    }

    #[test]
    fn array_engine_matches_oracle(a in arb_array(), r in 0i64..2) {
        let engine = ArrayEngine::new("arr");
        engine.store("a", a.clone()).unwrap();
        let schema = engine.schema_of("a").unwrap();
        let plans = vec![
            Plan::Dice {
                input: Plan::scan("a", schema.clone()).boxed(),
                ranges: vec![("i".into(), 0, 2)],
            },
            Plan::SliceAt {
                input: Plan::scan("a", schema.clone()).boxed(),
                dim: "i".into(),
                index: 1,
            },
            Plan::Permute {
                input: Plan::scan("a", schema.clone()).boxed(),
                order: vec!["j".into(), "i".into()],
            },
            Plan::Window {
                input: Plan::scan("a", schema.clone()).boxed(),
                radii: vec![("i".into(), r), ("j".into(), 0)],
                aggs: vec![AggExpr::new(AggFunc::Max, col("v"), "m")],
            },
            Plan::Fill {
                input: Plan::scan("a", schema.clone()).boxed(),
                fill: Value::Float(0.0),
            },
        ];
        let data = src(&[("a", &a)]);
        for plan in plans {
            let ours = engine.execute(&plan).unwrap();
            let oracle = evaluate(&plan, &data).unwrap();
            prop_assert!(
                approx_same(&ours.normalized_rows().unwrap(), &oracle.normalized_rows().unwrap()),
                "plan:\n{}", plan
            );
        }
    }

    #[test]
    fn permute_is_an_involution(a in arb_array()) {
        let once = Plan::Permute {
            input: Plan::scan("a", array_schema()).boxed(),
            order: vec!["j".into(), "i".into()],
        };
        let twice = Plan::Permute {
            input: once.clone().boxed(),
            order: vec!["i".into(), "j".into()],
        };
        let data = src(&[("a", &a)]);
        let back = evaluate(&twice, &data).unwrap();
        prop_assert!(back.same_bag(&a).unwrap());
    }

    #[test]
    fn dice_then_fill_has_exact_volume(a in arb_array(), lo in 0i64..3) {
        let hi = (lo + 2).min(N);
        let plan = Plan::Fill {
            input: Plan::Dice {
                input: Plan::scan("a", array_schema()).boxed(),
                ranges: vec![("i".into(), lo, hi)],
            }
            .boxed(),
            fill: Value::Float(0.0),
        };
        let data = src(&[("a", &a)]);
        let out = evaluate(&plan, &data).unwrap();
        prop_assert_eq!(out.num_rows() as i64, (hi - lo) * N);
    }

    #[test]
    fn tag_untag_roundtrip(a in arb_array()) {
        let plan = Plan::TagDims {
            input: Plan::UntagDims {
                input: Plan::scan("a", array_schema()).boxed(),
            }
            .boxed(),
            dims: vec![("i".into(), Some((0, N))), ("j".into(), Some((0, N)))],
        };
        let data = src(&[("a", &a)]);
        let out = evaluate(&plan, &data).unwrap();
        prop_assert!(out.same_bag(&a).unwrap());
        prop_assert_eq!(out.schema(), a.schema());
    }

    #[test]
    fn matmul_identity_law(a in arb_array()) {
        // A × I = Fill₀(A) on the dense view (absent cells read as 0).
        let identity_rows: Vec<Row> = (0..N)
            .map(|i| Row(vec![Value::Int(i), Value::Int(i), Value::Float(1.0)]))
            .collect();
        let identity = DataSet::from_rows(array_schema(), &identity_rows).unwrap();
        let plan = Plan::scan("a", array_schema())
            .matmul(Plan::scan("id", array_schema()));
        let data = src(&[("a", &a), ("id", &identity)]);
        let out = evaluate(&plan, &data).unwrap();
        // Every present, non-null cell of `a` must appear unchanged.
        for row in a.rows().unwrap() {
            if row.get(2).is_null() {
                continue;
            }
            let expect = row.get(2).as_float().unwrap();
            let found = out.rows().unwrap().iter().any(|r| {
                r.get(0) == row.get(0)
                    && r.get(1) == row.get(1)
                    && (r.get(2).as_float().unwrap() - expect).abs() < 1e-12
            });
            prop_assert!(found || expect == 0.0, "cell {} lost", row);
        }
    }
}
