//! Acceptance test for the query profiler (ISSUE 8): a traced federated
//! query leaves a profile in the process-global query log, the log and
//! the calibration cost book are served over plain HTTP (`/queries`,
//! `/queries/slow`, `/calibration`), and a query the log flags slow gets
//! its trace pinned past ring churn plus a stamp in the flight recorder.
//!
//! One test function: the profiler's state is process-global, so the
//! phases run sequentially instead of racing each other from parallel
//! `#[test]`s.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use bda::core::{CoreError, Plan, Provider};
use bda::federation::Federation;
use bda::lang::Query;
use bda::relational::RelationalEngine;
use bda::storage::{Column, DataSet, Schema};
use bda_obs::profile::{OpProfile, QueryProfile};

/// Minimal HTTP GET over loopback; returns (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut conn = std::net::TcpStream::connect(addr).expect("connect to ops endpoint");
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: bda\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    let status = raw.lines().next().unwrap_or_default().to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// A correct-but-late provider: guarantees a wall time far beyond any
/// plausible p99 of the fast synthetic history, so the slow flag fires
/// deterministically.
struct LaggyProvider {
    inner: RelationalEngine,
    delay: Duration,
}

impl Provider for LaggyProvider {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capabilities(&self) -> bda::core::CapabilitySet {
        self.inner.capabilities()
    }

    fn catalog(&self) -> Vec<(String, Schema)> {
        self.inner.catalog()
    }

    fn execute(&self, plan: &Plan) -> Result<DataSet, CoreError> {
        std::thread::sleep(self.delay);
        self.inner.execute(plan)
    }

    fn store(&self, name: &str, data: DataSet) -> Result<(), CoreError> {
        self.inner.store(name, data)
    }

    fn remove(&self, name: &str) {
        self.inner.remove(name)
    }

    fn row_count_of(&self, name: &str) -> Option<usize> {
        self.inner.row_count_of(name)
    }

    fn execute_traced(
        &self,
        plan: &Plan,
        ctx: &bda_obs::TraceContext,
    ) -> Result<(DataSet, Vec<bda_obs::Span>), CoreError> {
        std::thread::sleep(self.delay);
        self.inner.execute_traced(plan, ctx)
    }
}

fn table(n: i64) -> DataSet {
    DataSet::from_columns(vec![
        ("k", Column::from((0..n).collect::<Vec<i64>>())),
        (
            "v",
            Column::from((0..n).map(|i| i as f64).collect::<Vec<f64>>()),
        ),
    ])
    .unwrap()
}

#[test]
fn profiles_are_served_over_http_and_slow_queries_are_retained() {
    let rel = RelationalEngine::new("rel");
    rel.store("t", table(64)).unwrap();
    let laggy = LaggyProvider {
        inner: RelationalEngine::new("laggy"),
        delay: Duration::from_millis(25),
    };
    laggy.store("big", table(64)).unwrap();
    let mut fed = Federation::new();
    fed.register(Arc::new(rel));
    fed.register(Arc::new(laggy));
    let ops = fed
        .serve_ops("127.0.0.1:0", bda_obs::MetricsHub::new())
        .expect("ops endpoint binds");

    // Phase 1: a traced query shows up in /queries and recalibrates the
    // cost book behind /calibration.
    let schema = fed.registry().schema_of("t").unwrap();
    let q = Query::scan("t", schema);
    let tracer = bda::obs::Tracer::new(0x0B5);
    let trace_id = tracer.trace_id();
    fed.run_traced(q.plan(), &tracer).expect("traced query");

    let (status, body) = http_get(ops.addr(), "/queries");
    assert!(status.contains("200"), "{status}");
    let id_key = format!("\"trace_id\":\"{trace_id:#018x}\"");
    assert!(body.contains(&id_key), "profile not served: {body}");
    assert!(body.contains("\"ops\""), "{body}");
    assert!(body.contains("\"class\":\"scan\""), "{body}");

    let (status, book) = http_get(ops.addr(), "/calibration");
    assert!(status.contains("200"), "{status}");
    assert!(book.contains("\"ns_per_row\""), "{book}");
    assert!(
        !book.contains("\"samples\":0"),
        "the traced query must have recalibrated the book: {book}"
    );

    // Phase 2: seed the wall-time history with a burst of fast
    // synthetic profiles (50 us each), so p99 settles far below the
    // laggy provider's 25 ms and the next heavy query is flagged.
    for i in 0..300u64 {
        bda_obs::profile::global_log().push(QueryProfile {
            trace_id: 0x1000 + i,
            tenant: String::new(),
            wall_ns: 50_000,
            slow: false,
            ops: vec![OpProfile {
                class: "select".into(),
                count: 1,
                rows: 64,
                bytes: 0,
                wall_ns: 50_000,
            }],
            sites: Vec::new(),
        });
    }

    let schema = fed.registry().schema_of("big").unwrap();
    let heavy = Query::scan("big", schema);
    let heavy_tracer = bda::obs::Tracer::new(0x510);
    let heavy_id = heavy_tracer.trace_id();
    fed.run_traced(heavy.plan(), &heavy_tracer)
        .expect("heavy query");

    let (status, slow_doc) = http_get(ops.addr(), "/queries/slow");
    assert!(status.contains("200"), "{status}");
    let heavy_key = format!("\"trace_id\":\"{heavy_id:#018x}\"");
    assert!(
        slow_doc.contains(&heavy_key),
        "heavy query missing from /queries/slow: {slow_doc}"
    );
    assert!(slow_doc.contains("\"slow\":true"), "{slow_doc}");
    assert!(
        !slow_doc.contains(&id_key),
        "the fast query must not be flagged slow: {slow_doc}"
    );

    // The slow query's trace was pinned: still served after enough
    // traced queries to churn the whole trace ring.
    let fast_schema = fed.registry().schema_of("t").unwrap();
    for i in 0..20u64 {
        let churn = Query::scan("t", fast_schema.clone());
        fed.run_traced(churn.plan(), &bda::obs::Tracer::new(0x2000 + i))
            .expect("churn query");
    }
    let (status, trace_json) = http_get(ops.addr(), &format!("/traces/{heavy_id:#018x}"));
    assert!(
        status.contains("200"),
        "pinned slow trace evicted: {status} {trace_json}"
    );
    assert!(trace_json.contains("\"ph\":\"X\""), "{trace_json}");

    // And the flight recorder carries the slow-query stamp.
    let (status, flight) = http_get(ops.addr(), "/flight");
    assert!(status.contains("200"), "{status}");
    let stamp = format!("slow-query trace={heavy_id:#018x}");
    assert!(flight.contains(&stamp), "no flight stamp: {flight}");
}
