//! Property-based equivalence: random data and random plans must agree
//! across (a) the reference oracle, (b) the relational engine, (c) the
//! optimizer, and (d) the wire codec.

use std::collections::HashMap;

use proptest::prelude::*;

use bda::core::codec::{decode_plan, encode_plan};
use bda::core::reference::evaluate;
use bda::core::{col, lit, AggExpr, AggFunc, Expr, JoinType, Plan, Provider};
use bda::federation::{optimize, OptimizerConfig};
use bda::relational::RelationalEngine;
use bda::storage::wire::{decode_dataset, encode_dataset};
use bda::storage::{DataSet, DataType, Field, Row, Schema, Value};

// ---------------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------------

fn t_schema() -> Schema {
    Schema::new(vec![
        Field::value("k", DataType::Int64),
        Field::value("v", DataType::Float64),
        Field::value("s", DataType::Utf8),
    ])
    .unwrap()
}

prop_compose! {
    fn arb_row()(
        k in prop_oneof![2 => (-5i64..5).prop_map(Value::Int), 1 => Just(Value::Null)],
        v in prop_oneof![2 => (-10i32..10).prop_map(|x| Value::Float(x as f64 / 2.0)), 1 => Just(Value::Null)],
        s in prop_oneof![2 => "[a-c]{1,2}".prop_map(Value::from), 1 => Just(Value::Null)],
    ) -> Row {
        Row(vec![k, v, s])
    }
}

prop_compose! {
    fn arb_table()(rows in prop::collection::vec(arb_row(), 0..25)) -> DataSet {
        DataSet::from_rows(t_schema(), &rows).unwrap()
    }
}

/// Random boolean predicates over the `t` schema.
fn arb_pred() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-5i64..5).prop_map(|c| col("k").gt(lit(c))),
        (-5i64..5).prop_map(|c| col("k").le(lit(c))),
        (-10i32..10).prop_map(|c| col("v").lt(lit(c as f64 / 2.0))),
        "[a-c]".prop_map(|c| col("s").eq(lit(c.as_str()))),
        // Every comparison shape on the null-bearing columns: SQL
        // three-valued logic makes null-vs-literal the easiest place
        // for an engine and the reference to quietly disagree.
        (-5i64..5).prop_map(|c| col("k").eq(lit(c))),
        (-5i64..5).prop_map(|c| col("k").ge(lit(c))),
        (-10i32..10).prop_map(|c| col("v").ge(lit(c as f64 / 2.0))),
        "[a-c]".prop_map(|c| col("s").le(lit(c.as_str()))),
        Just(col("k").is_null()),
        Just(col("v").is_null().not()),
        Just(col("s").is_null()),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

/// Random single-input relational pipelines over the `t` schema.
///
/// Every generated plan preserves the schema (so stages compose freely).
fn arb_pipeline() -> impl Strategy<Value = Plan> {
    let scan = Just(Plan::scan("t", t_schema()));
    scan.prop_recursive(4, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), arb_pred()).prop_map(|(p, e)| p.select(e)),
            inner.clone().prop_map(|p| p.distinct()),
            inner.clone().prop_map(|p| p.sort_by(vec!["k", "s"])),
            (inner.clone(), 0usize..10).prop_map(|(p, n)| p.limit(n)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.join_as(
                b,
                vec![("k", "k")],
                JoinType::Semi
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.join_as(
                b,
                vec![("k", "k")],
                JoinType::Anti
            )),
            inner.clone().prop_map(|p| p.project(vec![
                ("k", col("k")),
                ("v", col("v")),
                ("s", col("s"))
            ])),
        ]
    })
}

fn engine_with(ds: &DataSet) -> RelationalEngine {
    let e = RelationalEngine::new("rel");
    e.store("t", ds.clone()).unwrap();
    e
}

fn oracle_src(ds: &DataSet) -> HashMap<String, DataSet> {
    let mut m = HashMap::new();
    m.insert("t".to_string(), ds.clone());
    m
}

/// Bag comparison that tolerates Limit's nondeterminism: when the plan
/// contains a Limit, only row *counts* are compared.
fn compatible(plan: &Plan, a: &DataSet, b: &DataSet) -> bool {
    let has_limit = plan.op_kinds().contains(&bda::core::OpKind::Limit);
    if has_limit {
        a.num_rows() == b.num_rows()
    } else {
        a.same_bag(b).unwrap()
    }
}

// ---------------------------------------------------------------------------
// properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn relational_engine_matches_reference(ds in arb_table(), plan in arb_pipeline()) {
        let engine = engine_with(&ds);
        let ours = engine.execute(&plan).unwrap();
        let oracle = evaluate(&plan, &oracle_src(&ds)).unwrap();
        prop_assert_eq!(ours.schema(), oracle.schema());
        prop_assert!(compatible(&plan, &ours, &oracle), "plan:\n{}", plan);
    }

    #[test]
    fn optimizer_preserves_semantics(ds in arb_table(), plan in arb_pipeline()) {
        let optimized = optimize(&plan, OptimizerConfig::default());
        let a = evaluate(&plan, &oracle_src(&ds)).unwrap();
        let b = evaluate(&optimized, &oracle_src(&ds)).unwrap();
        prop_assert!(
            compatible(&plan, &a, &b),
            "plan:\n{}\noptimized:\n{}", plan, optimized
        );
    }

    #[test]
    fn plans_roundtrip_the_wire(plan in arb_pipeline()) {
        let bytes = encode_plan(&plan);
        let back = decode_plan(&bytes).unwrap();
        prop_assert_eq!(back, plan);
    }

    #[test]
    fn datasets_roundtrip_the_wire(ds in arb_table()) {
        let bytes = encode_dataset(&ds);
        let back = decode_dataset(&bytes).unwrap();
        prop_assert!(back.same_bag(&ds).unwrap());
        prop_assert_eq!(back.schema(), ds.schema());
    }

    #[test]
    fn predicate_filter_is_subset(ds in arb_table(), pred in arb_pred()) {
        let plan = Plan::scan("t", t_schema()).select(pred);
        let out = evaluate(&plan, &oracle_src(&ds)).unwrap();
        prop_assert!(out.num_rows() <= ds.num_rows());
        // Filtering twice with the same predicate is idempotent.
        let twice = evaluate(
            &out_plan_again(&plan),
            &oracle_src(&ds),
        ).unwrap();
        prop_assert!(out.same_bag(&twice).unwrap());
    }

    #[test]
    fn aggregate_count_matches_row_count(ds in arb_table()) {
        let plan = Plan::scan("t", t_schema())
            .aggregate(vec![], vec![AggExpr::count_star("n")]);
        let out = evaluate(&plan, &oracle_src(&ds)).unwrap();
        let n = out.rows().unwrap()[0].get(0).as_int().unwrap();
        prop_assert_eq!(n as usize, ds.num_rows());
    }

    #[test]
    fn grouped_sums_total_to_global_sum(ds in arb_table()) {
        let grouped = Plan::scan("t", t_schema())
            .aggregate(vec!["s"], vec![AggExpr::new(AggFunc::Sum, col("v"), "sv")])
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, col("sv"), "total")]);
        let global = Plan::scan("t", t_schema())
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, col("v"), "total")]);
        let a = evaluate(&grouped, &oracle_src(&ds)).unwrap();
        let b = evaluate(&global, &oracle_src(&ds)).unwrap();
        let va = a.rows().unwrap()[0].get(0).clone();
        let vb = b.rows().unwrap()[0].get(0).clone();
        match (va, vb) {
            (Value::Float(x), Value::Float(y)) => prop_assert!((x - y).abs() < 1e-9),
            (x, y) => prop_assert_eq!(x, y),
        }
    }

    #[test]
    fn union_distinct_is_set_union(a in arb_table(), b in arb_table()) {
        let plan = Plan::scan("a", t_schema())
            .union(Plan::scan("b", t_schema()))
            .distinct();
        let mut src = HashMap::new();
        src.insert("a".to_string(), a.clone());
        src.insert("b".to_string(), b.clone());
        let out = evaluate(&plan, &src).unwrap();
        // |A ∪ B| <= |distinct A| + |distinct B|
        let da = evaluate(&Plan::scan("a", t_schema()).distinct(), &src).unwrap();
        let db = evaluate(&Plan::scan("b", t_schema()).distinct(), &src).unwrap();
        prop_assert!(out.num_rows() <= da.num_rows() + db.num_rows());
        prop_assert!(out.num_rows() >= da.num_rows().max(db.num_rows()));
    }
}

fn out_plan_again(plan: &Plan) -> Plan {
    if let Plan::Select { input, predicate } = plan {
        Plan::Select {
            input: Plan::Select {
                input: input.clone(),
                predicate: predicate.clone(),
            }
            .boxed(),
            predicate: predicate.clone(),
        }
    } else {
        plan.clone()
    }
}
