//! Decoder robustness: the wire codecs must never panic, whatever bytes
//! arrive — corrupt input from a misbehaving peer yields `Err`, not UB or
//! aborts. (Encoding round-trips are covered in `property_equivalence`;
//! this file is pure failure injection.)

use proptest::prelude::*;

use bda::core::codec::{decode_plan, encode_plan};
use bda::core::{col, lit, Plan};
use bda::storage::wire::{decode_dataset, decode_value, encode_dataset, Reader};
use bda::storage::{Column, DataSet, DataType, Field, Schema};

fn sample_plan() -> Plan {
    Plan::scan(
        "t",
        Schema::new(vec![
            Field::dimension_bounded("i", 0, 8),
            Field::value("v", DataType::Float64),
        ])
        .unwrap(),
    )
    .select(col("v").gt(lit(0.0)))
    .limit(3)
}

fn sample_dataset() -> DataSet {
    DataSet::from_columns(vec![
        ("k", Column::from(vec![1i64, 2, 3])),
        ("s", Column::from(vec!["a", "b", "c"])),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decode_dataset_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Whatever happens, it must be an Err or a valid dataset.
        if let Ok(ds) = decode_dataset(&bytes) {
            let _ = ds.rows();
        }
    }

    #[test]
    fn decode_plan_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(p) = decode_plan(&bytes) {
            // A structurally valid decode may still fail type checking.
            let _ = bda::core::infer_schema(&p);
        }
    }

    #[test]
    fn decode_value_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut r = Reader::new(&bytes);
        let _ = decode_value(&mut r);
    }

    #[test]
    fn bitflips_in_valid_plans_never_panic(
        flip_at in 0usize..512,
        flip_bit in 0u8..8,
    ) {
        let mut bytes = encode_plan(&sample_plan());
        if flip_at < bytes.len() {
            bytes[flip_at] ^= 1 << flip_bit;
        }
        if let Ok(p) = decode_plan(&bytes) {
            let _ = bda::core::infer_schema(&p);
        }
    }

    #[test]
    fn bitflips_in_valid_datasets_never_panic(
        flip_at in 0usize..512,
        flip_bit in 0u8..8,
    ) {
        let mut bytes = encode_dataset(&sample_dataset());
        if flip_at < bytes.len() {
            bytes[flip_at] ^= 1 << flip_bit;
        }
        if let Ok(ds) = decode_dataset(&bytes) {
            let _ = ds.rows();
        }
    }

    /// Plans whose selects compare *null-bearing* columns against
    /// literals — the shapes the statistics layer lowers onto zone maps
    /// and indexes — survive arbitrary bitflips without panicking, and
    /// a clean round trip is exact.
    #[test]
    fn bitflips_in_comparison_predicate_plans_never_panic(
        threshold in -5i64..5,
        flip_at in 0usize..512,
        flip_bit in 0u8..8,
        op in 0u8..5,
    ) {
        let schema = Schema::new(vec![
            Field::value("k", DataType::Int64),
            Field::value("v", DataType::Float64),
        ])
        .unwrap();
        let pred = match op {
            0 => col("k").eq(lit(threshold)),
            1 => col("k").lt(lit(threshold)),
            2 => col("k").ge(lit(threshold)),
            3 => col("v").gt(lit(threshold as f64 / 2.0)).and(col("k").is_null().not()),
            _ => col("k").le(lit(threshold)).and(col("v").is_null()),
        };
        let plan = Plan::scan("t", schema).select(pred);
        let clean = encode_plan(&plan);
        prop_assert_eq!(&decode_plan(&clean).unwrap(), &plan);
        let mut bytes = clean;
        if flip_at < bytes.len() {
            bytes[flip_at] ^= 1 << flip_bit;
        }
        if let Ok(p) = decode_plan(&bytes) {
            let _ = bda::core::infer_schema(&p);
        }
    }

    /// Datasets with null slots round-trip exactly and survive bitflips:
    /// a corrupted validity bitmap must decode to `Err` or a readable
    /// dataset, never UB.
    #[test]
    fn bitflips_in_null_bearing_datasets_never_panic(
        flip_at in 0usize..512,
        flip_bit in 0u8..8,
    ) {
        use bda::storage::Value;
        let ds = DataSet::from_columns(vec![
            (
                "k",
                Column::from_values(
                    DataType::Int64,
                    &[Value::Int(1), Value::Null, Value::Int(3)],
                )
                .unwrap(),
            ),
            (
                "v",
                Column::from_values(
                    DataType::Float64,
                    &[Value::Null, Value::Float(f64::NAN), Value::Float(0.5)],
                )
                .unwrap(),
            ),
        ])
        .unwrap();
        let clean = encode_dataset(&ds);
        let back = decode_dataset(&clean).unwrap();
        prop_assert!(back.same_bag(&ds).unwrap());
        let mut bytes = clean;
        if flip_at < bytes.len() {
            bytes[flip_at] ^= 1 << flip_bit;
        }
        if let Ok(ds) = decode_dataset(&bytes) {
            let _ = ds.rows();
        }
    }

    #[test]
    fn truncations_of_valid_messages_fail_cleanly(cut in 0usize..400) {
        let plan_bytes = encode_plan(&sample_plan());
        if cut < plan_bytes.len() {
            prop_assert!(decode_plan(&plan_bytes[..cut]).is_err());
        }
        let data_bytes = encode_dataset(&sample_dataset());
        if cut < data_bytes.len() {
            prop_assert!(decode_dataset(&data_bytes[..cut]).is_err());
        }
    }
}
