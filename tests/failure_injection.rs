//! Failure injection: when a provider fails mid-plan, the federation must
//! surface the error and leave no staged intermediates behind.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bda::core::{CapabilitySet, CoreError, Plan, Provider};
use bda::federation::Federation;
use bda::linalg::LinAlgEngine;
use bda::relational::RelationalEngine;
use bda::storage::{DataSet, Schema};
use bda::workloads::random_matrix;

/// Wraps a provider and fails the `fail_on`-th execute call.
struct FlakyProvider {
    inner: Arc<dyn Provider>,
    calls: AtomicUsize,
    fail_on: usize,
}

impl FlakyProvider {
    fn new(inner: Arc<dyn Provider>, fail_on: usize) -> FlakyProvider {
        FlakyProvider {
            inner,
            calls: AtomicUsize::new(0),
            fail_on,
        }
    }
}

impl Provider for FlakyProvider {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capabilities(&self) -> CapabilitySet {
        self.inner.capabilities()
    }

    fn catalog(&self) -> Vec<(String, Schema)> {
        self.inner.catalog()
    }

    fn execute(&self, plan: &Plan) -> Result<DataSet, CoreError> {
        let n = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
        if n == self.fail_on {
            return Err(CoreError::Plan(format!(
                "injected failure on call {n} at `{}`",
                self.name()
            )));
        }
        self.inner.execute(plan)
    }

    fn store(&self, name: &str, data: DataSet) -> Result<(), CoreError> {
        self.inner.store(name, data)
    }

    fn remove(&self, name: &str) {
        self.inner.remove(name)
    }

    fn row_count_of(&self, name: &str) -> Option<usize> {
        self.inner.row_count_of(name)
    }
}

fn cross_engine_setup(fail_site: &str, fail_on: usize) -> (Federation, Plan) {
    let n = 8;
    let rel = RelationalEngine::new("rel");
    rel.store("a_rows", random_matrix(n, n, 7).normalized_rows().unwrap())
        .unwrap();
    let la = LinAlgEngine::new("la");
    la.store("b", random_matrix(n, n, 8)).unwrap();
    let rel: Arc<dyn Provider> = Arc::new(rel);
    let la: Arc<dyn Provider> = Arc::new(la);
    let mut fed = Federation::new();
    for p in [rel, la] {
        if p.name() == fail_site {
            fed.register(Arc::new(FlakyProvider::new(p, fail_on)));
        } else {
            fed.register(p);
        }
    }
    let plan =
        Plan::scan("a_rows", fed.registry().schema_of("a_rows").unwrap()).matmul(Plan::scan(
            "b",
            fed.registry()
                .provider("la")
                .unwrap()
                .schema_of("b")
                .unwrap(),
        ));
    (fed, plan)
}

fn no_staged_leftovers(fed: &Federation) {
    for p in fed.registry().providers() {
        for (name, _) in p.catalog() {
            assert!(
                !name.starts_with("__bda_frag_"),
                "staged intermediate `{name}` leaked on `{}`",
                p.name()
            );
        }
    }
}

#[test]
fn producer_failure_surfaces_and_cleans_up() {
    // The first fragment (on rel) fails immediately.
    let (fed, plan) = cross_engine_setup("rel", 1);
    let err = fed.run(&plan).unwrap_err();
    assert!(err.to_string().contains("injected failure"), "{err}");
    no_staged_leftovers(&fed);
}

#[test]
fn consumer_failure_surfaces_and_cleans_up() {
    // The producer fragment succeeds (and stages its output at la);
    // the consuming matmul fragment then fails.
    let (fed, plan) = cross_engine_setup("la", 1);
    let err = fed.run(&plan).unwrap_err();
    assert!(err.to_string().contains("injected failure"), "{err}");
    // The staged input shipped to `la` must have been removed.
    no_staged_leftovers(&fed);
}

#[test]
fn recovery_after_transient_failure() {
    // Fail once, then the same federation object succeeds on retry.
    let (fed, plan) = cross_engine_setup("la", 1);
    assert!(fed.run(&plan).is_err());
    let (out, _) = fed.run(&plan).expect("second attempt succeeds");
    assert_eq!(out.num_rows(), 64);
    no_staged_leftovers(&fed);
}

#[test]
fn app_driven_loop_failure_propagates() {
    // Client-driven iteration where the body's provider fails part-way:
    // the loop must abort with the provider's error, not hang or corrupt.
    let la = LinAlgEngine::new("la");
    la.store("m", random_matrix(4, 4, 3)).unwrap();
    la.store("x", random_matrix(4, 4, 4)).unwrap();
    let la: Arc<dyn Provider> = Arc::new(la);
    let mut fed = Federation::new();
    // Fail on the 3rd execute: init (1), body iter 1 (2), body iter 2 (3).
    fed.register(Arc::new(FlakyProvider::new(la, 3)));
    let m_schema = fed
        .registry()
        .provider("la")
        .unwrap()
        .schema_of("m")
        .unwrap();
    let x_schema = fed
        .registry()
        .provider("la")
        .unwrap()
        .schema_of("x")
        .unwrap();
    let plan = Plan::Iterate {
        init: Plan::scan("x", x_schema.clone()).boxed(),
        body: Plan::scan("m", m_schema)
            .matmul(Plan::IterState { schema: x_schema })
            .boxed(),
        max_iters: 10,
        epsilon: None,
    };
    let err = fed.run(&plan).unwrap_err();
    assert!(err.to_string().contains("injected failure"), "{err}");
    no_staged_leftovers(&fed);
}
