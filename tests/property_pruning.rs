//! Differential pruning-correctness: statistics-driven skipping must be
//! invisible in results. For every seeded random chunked table (nulls,
//! NaN, empty chunks included) and random predicate, a select executes
//! three ways — statistics off, zone maps on, zone maps plus secondary
//! indexes — and every mode must produce the same bag of rows as the
//! sequential reference evaluator. A second suite pins the load-time
//! statistics themselves: after any sequence of store/remove/re-store,
//! each column's zone map reports min/max/null-count *exactly*.

use std::collections::HashMap;

use proptest::prelude::*;

use bda::core::reference::evaluate;
use bda::core::{col, lit, Expr, Plan, Provider};
use bda::relational::RelationalEngine;
use bda::storage::stats::ZoneMap;
use bda::storage::{Column, DataSet, DataType, Field, IndexKind, Row, Schema, Value};

fn t_schema() -> Schema {
    Schema::new(vec![
        Field::value("k", DataType::Int64),
        Field::value("v", DataType::Float64),
        Field::value("s", DataType::Utf8),
    ])
    .unwrap()
}

// ---------------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------------

prop_compose! {
    /// Rows with nulls in every column and NaN in the float column — the
    /// values where a pruning order and an evaluation order most easily
    /// disagree.
    fn arb_row()(
        k in prop_oneof![3 => (-6i64..6).prop_map(Value::Int), 1 => Just(Value::Null)],
        v in prop_oneof![
            3 => (-8i32..8).prop_map(|x| Value::Float(x as f64 / 2.0)),
            1 => Just(Value::Float(f64::NAN)),
            1 => Just(Value::Null),
        ],
        s in prop_oneof![3 => "[a-c]{1,2}".prop_map(Value::from), 1 => Just(Value::Null)],
    ) -> Row {
        Row(vec![k, v, s])
    }
}

/// A table assembled from several independently generated chunks (some
/// possibly empty), so zone maps summarize genuinely different ranges
/// and the skipping decision has real choices to make.
fn arb_chunked_table() -> impl Strategy<Value = DataSet> {
    prop::collection::vec(prop::collection::vec(arb_row(), 0..12), 1..5).prop_map(|chunks| {
        let mut it = chunks.into_iter();
        let mut ds = DataSet::from_rows(t_schema(), &it.next().unwrap()).unwrap();
        for rows in it {
            let extra = DataSet::from_rows(t_schema(), &rows).unwrap();
            ds.push_chunk(extra.chunks()[0].clone());
        }
        ds
    })
}

/// Random predicates: mostly shapes the pruning analyzer recognizes
/// (comparisons against literals, null tests, conjunctions), mixed with
/// disjunctions and negations it must *refuse* — the bypass path is as
/// much under test as the skipping path.
fn arb_pred() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-6i64..6).prop_map(|c| col("k").eq(lit(c))),
        (-6i64..6).prop_map(|c| col("k").gt(lit(c))),
        (-6i64..6).prop_map(|c| col("k").le(lit(c))),
        (-8i32..8).prop_map(|c| col("v").lt(lit(c as f64 / 2.0))),
        (-8i32..8).prop_map(|c| col("v").ge(lit(c as f64 / 2.0))),
        "[a-c]".prop_map(|c| col("s").eq(lit(c.as_str()))),
        Just(col("k").is_null()),
        Just(col("v").is_null().not()),
        Just(col("s").is_null()),
    ];
    leaf.prop_recursive(3, 10, 2, |inner| {
        prop_oneof![
            3 => (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            1 => (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            1 => inner.prop_map(|a| a.not()),
        ]
    })
}

// ---------------------------------------------------------------------------
// harness
// ---------------------------------------------------------------------------

/// Execute `plan` on a fresh engine holding `ds`, with statistics on or
/// off and optionally with both secondary indexes built.
fn run_mode(ds: &DataSet, plan: &Plan, stats: bool, indexes: bool) -> DataSet {
    let e = RelationalEngine::new("rel");
    e.store("t", ds.clone()).unwrap();
    e.set_stats_enabled(stats);
    if indexes {
        e.build_index("t", "k", IndexKind::Hash).unwrap();
        e.build_index("t", "v", IndexKind::Sorted).unwrap();
    }
    e.execute(plan)
        .unwrap_or_else(|err| panic!("stats={stats} indexes={indexes} failed:\n{plan}\n{err}"))
}

fn oracle_src(ds: &DataSet) -> HashMap<String, DataSet> {
    let mut m = HashMap::new();
    m.insert("t".to_string(), ds.clone());
    m
}

/// `Option<Value>` equality under the stats total order (plain `==`
/// would call NaN unequal to itself).
fn value_eq(a: &Option<Value>, b: &Option<Value>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => a.total_cmp(b) == std::cmp::Ordering::Equal,
        _ => false,
    }
}

/// Assert the engine's published zone map for every column of `name`
/// matches an exact recomputation from the live table.
fn assert_stats_exact(e: &RelationalEngine, name: &str) {
    let Some(ds) = e.table(name) else {
        assert!(e.table_stats(name).is_none(), "stats outlived table `{name}`");
        return;
    };
    let stats = e.table_stats(name).expect("stored table has stats");
    assert_eq!(stats.row_count, ds.num_rows(), "row count drifted");
    let rows = ds.to_rows_chunk().unwrap();
    for (i, field) in ds.schema().fields().iter().enumerate() {
        let zone = stats
            .column(field.name.as_str())
            .unwrap_or_else(|| panic!("no zone map for `{}`", field.name.as_str()));
        let want = ZoneMap::of(rows.column(i));
        assert!(
            value_eq(&zone.min, &want.min),
            "min drifted on `{}`: {:?} vs {:?}",
            field.name.as_str(),
            zone.min,
            want.min
        );
        assert!(
            value_eq(&zone.max, &want.max),
            "max drifted on `{}`: {:?} vs {:?}",
            field.name.as_str(),
            zone.max,
            want.max
        );
        assert_eq!(zone.null_count, want.null_count, "null count drifted");
        assert_eq!(zone.len, want.len, "length drifted");
    }
}

// ---------------------------------------------------------------------------
// the differential suite
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The core property: stats off, zone maps on, and zone maps plus
    /// indexes all produce the reference evaluator's bag, for every
    /// random chunked table and predicate.
    #[test]
    fn pruning_modes_agree_with_reference(ds in arb_chunked_table(), pred in arb_pred()) {
        let plan = Plan::scan("t", t_schema()).select(pred);
        let expected = evaluate(&plan, &oracle_src(&ds)).unwrap();
        for (stats, indexes) in [(false, false), (true, false), (true, true)] {
            let out = run_mode(&ds, &plan, stats, indexes);
            prop_assert_eq!(out.schema(), expected.schema());
            prop_assert!(
                out.same_bag(&expected).unwrap(),
                "stats={} indexes={} disagrees with reference on plan:\n{}",
                stats, indexes, plan
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Zone-map maintenance: a random sequence of stores, re-stores, and
    /// removes keeps min/max/null-count exact after every step.
    #[test]
    fn load_time_statistics_stay_exact(
        tables in prop::collection::vec(arb_chunked_table(), 1..4),
        removes in prop::collection::vec(any::<bool>(), 1..4),
    ) {
        let e = RelationalEngine::new("rel");
        for (i, ds) in tables.iter().enumerate() {
            let name = format!("t{}", i % 2); // re-store t0/t1 repeatedly
            e.store(&name, ds.clone()).unwrap();
            assert_stats_exact(&e, &name);
            if removes.get(i).copied().unwrap_or(false) {
                e.remove(&name);
                assert_stats_exact(&e, &name);
            }
        }
    }

    /// Ordered output too: with a deterministic sort appended, pruned
    /// and unpruned execution are row-for-row identical, not just
    /// bag-equal.
    #[test]
    fn pruned_sorted_output_is_row_identical(ds in arb_chunked_table(), pred in arb_pred()) {
        let plan = Plan::scan("t", t_schema()).select(pred).sort_by(vec!["k", "v", "s"]);
        let plain = run_mode(&ds, &plan, false, false);
        let pruned = run_mode(&ds, &plan, true, true);
        // Compare row sequences under the total order: plain `==` would
        // call NaN unequal to itself, and byte encodings can differ in
        // empty-column representation without the rows differing.
        let rows_of =
            |out: &DataSet| out.to_rows_chunk().unwrap().rows().collect::<Vec<_>>();
        let (a, b) = (rows_of(&plain), rows_of(&pruned));
        prop_assert_eq!(a.len(), b.len(), "row counts diverged on plan:\n{}", plan);
        for (ra, rb) in a.iter().zip(&b) {
            let same = ra.0.len() == rb.0.len()
                && ra.0.iter().zip(&rb.0).all(|(x, y)| {
                    x.total_cmp(y) == std::cmp::Ordering::Equal
                });
            prop_assert!(same, "row order diverged on plan:\n{}\n{:?} vs {:?}", plan, ra, rb);
        }
    }
}

// ---------------------------------------------------------------------------
// pinned edge cases shrinking rarely lands on exactly
// ---------------------------------------------------------------------------

#[test]
fn nan_empty_chunk_and_all_null_zone_maps_are_exact() {
    let e = RelationalEngine::new("rel");

    // All-NaN float column: NaN is a *value* (not null) under the total
    // order, so min = max = NaN and null_count = 0.
    let nan = DataSet::from_columns(vec![(
        "v",
        Column::from_values(
            DataType::Float64,
            &[Value::Float(f64::NAN), Value::Float(f64::NAN)],
        )
        .unwrap(),
    )])
    .unwrap();
    e.store("nan", nan).unwrap();
    assert_stats_exact(&e, "nan");
    let z = e.table_stats("nan").unwrap();
    let z = z.column("v").unwrap();
    assert_eq!(z.null_count, 0);
    assert!(matches!(z.min, Some(Value::Float(f)) if f.is_nan()));

    // Empty chunks around a populated one: stats must not count them.
    let mut ds = DataSet::from_rows(t_schema(), &[]).unwrap();
    let mid = DataSet::from_rows(
        t_schema(),
        &[Row(vec![Value::Int(7), Value::Null, Value::from("b")])],
    )
    .unwrap();
    ds.push_chunk(mid.chunks()[0].clone());
    ds.push_chunk(DataSet::from_rows(t_schema(), &[]).unwrap().chunks()[0].clone());
    e.store("gappy", ds).unwrap();
    assert_stats_exact(&e, "gappy");
    let stats = e.table_stats("gappy").unwrap();
    assert_eq!(stats.row_count, 1);

    // All-null column: no min/max, full null count — and a comparison
    // against it prunes everything without changing the (empty) answer.
    let nulls = DataSet::from_rows(
        t_schema(),
        &(0..5).map(|_| Row(vec![Value::Null; 3])).collect::<Vec<_>>(),
    )
    .unwrap();
    e.store("nulls", nulls.clone()).unwrap();
    assert_stats_exact(&e, "nulls");
    let stats = e.table_stats("nulls").unwrap();
    let z = stats.column("k").unwrap();
    assert!(z.min.is_none() && z.max.is_none());
    assert_eq!(z.null_count, 5);
    let plan = Plan::scan("nulls", t_schema()).select(col("k").gt(lit(0i64)));
    e.set_stats_enabled(true);
    assert_eq!(e.execute(&plan).unwrap().num_rows(), 0);
    e.set_stats_enabled(false);
    assert_eq!(e.execute(&plan).unwrap().num_rows(), 0);
}

#[test]
fn nan_comparisons_agree_between_pruned_and_plain_paths() {
    // A table whose only float values are NaN and one finite value, in
    // separate chunks: if the zone order and the evaluator disagreed on
    // where NaN sorts, a range predicate would skip the wrong chunk.
    let mut ds = DataSet::from_rows(
        t_schema(),
        &[Row(vec![
            Value::Int(1),
            Value::Float(f64::NAN),
            Value::from("a"),
        ])],
    )
    .unwrap();
    let lo = DataSet::from_rows(
        t_schema(),
        &[Row(vec![Value::Int(2), Value::Float(-1.0), Value::from("b")])],
    )
    .unwrap();
    ds.push_chunk(lo.chunks()[0].clone());
    for pred in [
        col("v").gt(lit(0.0f64)),
        col("v").le(lit(0.0f64)),
        col("v").ge(lit(f64::NAN)),
        col("v").lt(lit(f64::NAN)),
    ] {
        let plan = Plan::scan("t", t_schema()).select(pred);
        let plain = run_mode(&ds, &plan, false, false);
        let zoned = run_mode(&ds, &plan, true, false);
        let indexed = run_mode(&ds, &plan, true, true);
        assert!(
            plain.same_bag(&zoned).unwrap() && plain.same_bag(&indexed).unwrap(),
            "NaN predicate diverged between modes on plan:\n{plan}"
        );
    }
}
