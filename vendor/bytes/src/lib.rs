//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of external dependencies are vendored as minimal local
//! implementations with API-compatible signatures. This crate covers the
//! subset of `bytes` the wire codecs use: [`BytesMut`] as a growable byte
//! buffer and the [`BufMut`] write methods (little-endian put calls and
//! slice appends). Semantics match the real crate for this subset.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer, API-compatible with `bytes::BytesMut` for the
/// operations this workspace performs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// View the contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.inner
    }

    /// Drop all contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.inner.clear()
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional)
    }

    /// Consume the buffer, yielding the underlying vector (stands in for
    /// `freeze()` + `Bytes`; callers here only ever need the raw bytes).
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { inner: v }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Write-side buffer operations (the subset of `bytes::BufMut` in use).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i32.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i64.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian f64 (IEEE-754 bits).
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_puts_match_std() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u32_le(0x0102_0304);
        b.put_i64_le(-2);
        b.put_slice(b"xy");
        let mut expect = vec![0xAB];
        expect.extend_from_slice(&0x0102_0304u32.to_le_bytes());
        expect.extend_from_slice(&(-2i64).to_le_bytes());
        expect.extend_from_slice(b"xy");
        assert_eq!(b.to_vec(), expect);
        assert_eq!(&b[..], &expect[..]);
        assert_eq!(b.len(), expect.len());
    }
}
