//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` locks behind `parking_lot`'s non-poisoning API:
//! `read()` / `write()` / `lock()` return guards directly instead of
//! `Result`s. A poisoned std lock means a panic already unwound while the
//! lock was held; continuing is what the real `parking_lot` does (it has
//! no poisoning), so the wrappers recover the guard via `into_inner`.

use std::sync;

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, yielding the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, yielding the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_and_mutex_basics() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 2);
        let m = Mutex::new("a".to_string());
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}
