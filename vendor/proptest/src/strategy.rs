//! Value-generation strategies: the [`Strategy`] trait and the
//! combinators the workspace's property tests use.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object safe: [`BoxedStrategy`] wraps `Rc<dyn Strategy<Value = T>>`, so
/// heterogeneous strategies (e.g. `prop_oneof!` arms) unify by boxing.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value from the RNG stream.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map::new(self, f)
    }

    /// Build recursive structures: `self` generates leaves, `recurse`
    /// wraps an inner strategy into one more layer. `depth` bounds
    /// nesting; the size/branch hints are accepted for API compatibility
    /// but the stand-in bounds growth purely by depth and by weighting
    /// leaves 2:1 over recursion at every layer.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let layered = recurse(current).boxed();
            current = Union::new(vec![(2, base.clone()), (1, layered)]).boxed();
        }
        current
    }

    /// Type-erase into a clonable, shareable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, type-erased strategy (clonable regardless of the
/// underlying combinator).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Applies a function to another strategy's output.
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F> Map<S, F> {
    /// Pair a source strategy with a mapping function.
    pub fn new(source: S, f: F) -> Map<S, F> {
        Map { source, f }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Weighted choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; total weight must be > 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "Union needs at least one arm with weight > 0");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weight accounting is exhaustive")
    }
}

/// A strategy defined by a generation closure (backs `prop_compose!`).
pub struct FnStrategy<T> {
    f: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> FnStrategy<T> {
    /// Wrap a generator closure.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> FnStrategy<T> {
        FnStrategy { f: Rc::new(f) }
    }
}

impl<T> Clone for FnStrategy<T> {
    fn clone(&self) -> Self {
        FnStrategy {
            f: Rc::clone(&self.f),
        }
    }
}

impl<T> Strategy for FnStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Full-range generator for a primitive integer (backs `any::<T>()`).
pub struct IntAny<T>(PhantomData<T>);

impl<T> IntAny<T> {
    /// The full-range strategy.
    pub fn new() -> IntAny<T> {
        IntAny(PhantomData)
    }
}

impl<T> Default for IntAny<T> {
    fn default() -> Self {
        IntAny::new()
    }
}

impl<T> Clone for IntAny<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for IntAny<T> {}

macro_rules! impl_int_any {
    ($($t:ty),*) => {$(
        impl Strategy for IntAny<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_any!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String generation from a regex-subset pattern: literals, `.`, `\d`,
/// escaped metacharacters, `[a-z0-9_]`-style classes, and the
/// quantifiers `{n}`, `{n,m}`, `?`, `*` and `+` (`*`/`+` capped at 8).
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// One pattern atom: the characters it may produce.
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse_pattern(pattern) {
        let count = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
        for _ in 0..count {
            let i = rng.below(atom.choices.len() as u64) as usize;
            out.push(atom.choices[i]);
        }
    }
    out
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                let set = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                set
            }
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            '\\' => {
                let esc = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("trailing backslash in pattern {pattern:?}"));
                i += 2;
                match esc {
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z')
                        .chain('A'..='Z')
                        .chain('0'..='9')
                        .chain(std::iter::once('_'))
                        .collect(),
                    other => vec![other],
                }
            }
            c if "(){}?*+|^$".contains(c) => {
                panic!("unsupported regex feature {c:?} in pattern {pattern:?}")
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(
        body.first() != Some(&'^'),
        "negated classes unsupported in pattern {pattern:?}"
    );
    let mut set = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            assert!(
                body[j] <= body[j + 2],
                "inverted class range in pattern {pattern:?}"
            );
            for c in body[j]..=body[j + 2] {
                set.push(c);
            }
            j += 3;
        } else {
            set.push(body[j]);
            j += 1;
        }
    }
    assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
    set
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| *i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            let parse = |s: &str| {
                s.parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad quantifier {body:?} in pattern {pattern:?}"))
            };
            match body.split_once(',') {
                Some((lo, hi)) => (parse(lo), parse(hi)),
                None => {
                    let n = parse(&body);
                    (n, n)
                }
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        _ => (1, 1),
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A 0);
impl_tuple_strategy!(A 0, B 1);
impl_tuple_strategy!(A 0, B 1, C 2);
impl_tuple_strategy!(A 0, B 1, C 2, D 3);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);

pub mod collection {
    //! Collection strategies (`prop::collection::{vec, btree_map}`).

    use std::collections::BTreeMap;
    use std::ops::Range;

    use super::Strategy;
    use crate::test_runner::TestRng;

    /// A `Vec` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.new_value(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A `BTreeMap` with up to `size` entries; duplicate generated keys
    /// collapse, so small key spaces yield fewer entries than drawn.
    pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { keys, values, size }
    }

    /// Strategy produced by [`btree_map`].
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.new_value(rng);
            let mut map = BTreeMap::new();
            // Bounded retries: duplicate keys collapse, so cap the
            // attempts rather than spin on a saturated key space.
            let mut attempts = 4 * target + 8;
            while map.len() < target && attempts > 0 {
                map.insert(self.keys.new_value(rng), self.values.new_value(rng));
                attempts -= 1;
            }
            map
        }
    }
}
