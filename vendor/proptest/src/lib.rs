//! Offline stand-in for the `proptest` crate.
//!
//! A deterministic mini property-testing framework exposing the subset of
//! the real API this workspace's tests use: the `proptest!`,
//! `prop_compose!`, `prop_oneof!`, `prop_assert!` and `prop_assert_eq!`
//! macros, the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_recursive` / `boxed`, range and regex-literal strategies,
//! tuples, `Just`, `any::<T>()`, and `prop::collection::{vec, btree_map}`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` representation instead of a minimized counterexample.
//! * **Deterministic streams.** Each test derives its RNG seed from the
//!   test's module path, name and case index, so failures reproduce
//!   across runs without a persistence file.
//! * The regex-string strategy supports the literal/class/quantifier
//!   subset actually used in patterns like `"[a-c]{1,2}"`.

pub mod strategy;
pub mod test_runner;

/// `prop::…` paths as the real crate exposes them.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::collection::{btree_map, vec};
    }
    pub mod num {
        //! Placeholder module for path compatibility.
    }
}

/// The strategy for a type's "any value" generator.
pub trait Arbitrary: Sized {
    /// Strategy type returned by [`any`].
    type Strategy: strategy::Strategy<Value = Self>;
    /// The full-range strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::IntAny<$t>;
            fn arbitrary() -> Self::Strategy {
                strategy::IntAny::new()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

impl Arbitrary for bool {
    type Strategy = strategy::Map<std::ops::Range<u8>, fn(u8) -> bool>;
    fn arbitrary() -> Self::Strategy {
        strategy::Map::new(0u8..2, (|b| b == 1) as fn(u8) -> bool)
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Assert inside a property; panics (no shrinking) with the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Build a named strategy function from component strategies.
///
/// Supports the `fn name()(x in strat, ..) -> Out { body }` form (empty
/// outer parameter list), which is the only form this workspace uses.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident()($($pat:pat in $strat:expr),+ $(,)?) -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $out> + Clone {
            $crate::strategy::FnStrategy::new(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Run property tests: each `fn name(arg in strategy, ..) { body }` is
/// expanded into a `#[test]` that samples every strategy `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0i64..10, b in 0i64..10) -> (i64, i64) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i64..5, u in 0usize..3, byte in any::<u8>()) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(u < 3);
            let _ = byte;
        }

        #[test]
        fn composed_pairs(p in arb_pair()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![2 => (0i64..3).prop_map(|x| x * 2), 1 => Just(-1i64)]) {
            prop_assert!(v == -1 || (v % 2 == 0 && v < 6));
        }

        #[test]
        fn collections(bytes in prop::collection::vec(any::<u8>(), 0..16),
                       m in prop::collection::btree_map(0i64..4, 0i64..4, 0..8usize)) {
            prop_assert!(bytes.len() < 16);
            prop_assert!(m.len() <= 4);
        }

        #[test]
        fn regex_subset(s in "[a-c]{1,2}") {
            prop_assert!(!s.is_empty() && s.len() <= 2);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => usize::from(*v >= 0),
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 12, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::test_runner::TestRng::deterministic("recursive", 0);
        for _ in 0..200 {
            let t = strat.new_value(&mut rng);
            assert!(depth(&t) <= 8, "depth runaway: {t:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = prop::collection::vec(any::<u8>(), 0..32);
        let mut r1 = crate::test_runner::TestRng::deterministic("det", 7);
        let mut r2 = crate::test_runner::TestRng::deterministic("det", 7);
        assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
    }
}
