//! Deterministic case runner: configuration plus the per-test RNG.

/// How many cases `proptest!` runs per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator (splitmix64 core) seeded from the test
/// identity and case index, so every run reproduces the same stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash) and case index.
    pub fn deterministic(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero. The modulo bias is
    /// negligible for the small spans test strategies use.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = TestRng::deterministic("x", 0);
        let mut b = TestRng::deterministic("x", 0);
        let mut c = TestRng::deterministic("x", 1);
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = TestRng::deterministic("below", 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
