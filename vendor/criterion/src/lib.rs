//! Offline stand-in for the `criterion` crate.
//!
//! Benchmarks keep compiling and running (`cargo bench`) without network
//! access: each `b.iter(..)` body is timed with `std::time::Instant` over
//! a fixed number of iterations and the median per-iteration time is
//! printed. No statistics, plots, or baselines — just enough to keep the
//! bench targets honest and runnable offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export point used by some codebases (`criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark case within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; `iter` runs and times the body.
pub struct Bencher {
    sample_size: usize,
    last_median: Duration,
}

impl Bencher {
    /// Time `f`, recording the median per-call duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then `sample_size` timed calls.
        black_box(f());
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed());
        }
        samples.sort();
        self.last_median = samples[samples.len() / 2];
    }
}

/// A group of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per case.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in has a fixed warm-up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; time is bounded by `sample_size`.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one case with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            last_median: Duration::ZERO,
        };
        f(&mut b, input);
        println!(
            "bench {}/{}: median {:?} over {} iters",
            self.name, id, b.last_median, self.sample_size
        );
        self
    }

    /// Run one case without an input value.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "bench {}/{}: median {:?} over {} iters",
            self.name, id, b.last_median, self.sample_size
        );
        self
    }

    /// End the group (prints nothing extra in the stand-in).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: 10,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {name}: median {:?} over 10 iters", b.last_median);
        self
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("case", 4), &4u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>())
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
