//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! The workspace uses channels for one-producer request queues and
//! one-shot reply channels, so the mpsc semantics (FIFO, blocking `recv`,
//! `Err` when the other side hangs up) match what the real crate gives.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    enum SenderFlavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for SenderFlavor<T> {
        fn clone(&self) -> Self {
            match self {
                SenderFlavor::Unbounded(tx) => SenderFlavor::Unbounded(tx.clone()),
                SenderFlavor::Bounded(tx) => SenderFlavor::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(SenderFlavor<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a value, blocking on a full bounded channel.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderFlavor::Unbounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
                }
                SenderFlavor::Bounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
                }
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `Err` on empty or disconnected.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderFlavor::Unbounded(tx)), Receiver(rx))
    }

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderFlavor::Bounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn round_trip_both_flavors() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        let (tx, rx) = channel::bounded(1);
        tx.send("x").unwrap();
        assert_eq!(rx.recv(), Ok("x"));
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(channel::SendError(7)));
    }
}
