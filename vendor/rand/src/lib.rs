//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic seedable generator ([`rngs::StdRng`], a
//! splitmix64 core) and the [`Rng`] / [`SeedableRng`] trait surface the
//! workloads use: `gen_range` over integer and float ranges and
//! `gen_bool`. The streams differ from the real `rand`, but every caller
//! in this workspace seeds explicitly and only relies on determinism, not
//! on a particular stream.

use std::ops::Range;

/// Types that can be drawn uniformly from a `Range<T>`.
pub trait SampleUniform: Sized {
    /// Draw a value in `[lo, hi)` using `next` as the entropy source.
    fn sample_range(lo: Self, hi: Self, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, next: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((next() as u128) % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range(lo: Self, hi: Self, next: &mut dyn FnMut() -> u64) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        // 53 bits of mantissa → uniform in [0, 1).
        let unit = (next() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range(lo: Self, hi: Self, next: &mut dyn FnMut() -> u64) -> Self {
        f64::sample_range(lo as f64, hi as f64, next) as f32
    }
}

/// The random-generator interface.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        let mut next = || self.next_u64();
        T::sample_range(range.start, range.end, &mut next)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(-5i64..7);
            assert_eq!(x, b.gen_range(-5i64..7));
            assert!((-5..7).contains(&x));
            let f: f64 = a.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            assert_eq!(f.to_bits(), b.gen_range::<f64>(-1.0..1.0).to_bits());
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..64).any(|_| r.gen_bool(0.0)));
        assert!((0..64).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn usize_range_covers_span() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
